#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vcl::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // %.12g keeps sim-time microsecond resolution while dropping float noise.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

void JsonWriter::comma() {
  if (key_pending_) return;  // key() already placed the separator
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) os_ << ',';
    wrote_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  key_pending_ = false;
  os_ << '{';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!wrote_element_.empty());
  wrote_element_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  key_pending_ = false;
  os_ << '[';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!wrote_element_.empty());
  wrote_element_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  assert(!wrote_element_.empty());
  if (wrote_element_.back()) os_ << ',';
  wrote_element_.back() = true;
  os_ << '"' << json_escape(k) << "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  key_pending_ = false;
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  key_pending_ = false;
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  key_pending_ = false;
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  key_pending_ = false;
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  key_pending_ = false;
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::value_auto(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double num = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(num)) {
      return value(num);
    }
  }
  return value(cell);
}

JsonWriter& JsonWriter::value_raw(const std::string& token) {
  comma();
  key_pending_ = false;
  os_ << token;
  return *this;
}

}  // namespace vcl::obs
