#include "obs/incident.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/json.h"

namespace vcl::obs {

namespace {

// Sim times and payloads must survive write → parse bit-exactly (the
// bundle-determinism tests compare serialized bytes), so they bypass
// json_number's lossy %.12g — same contract as fault-plan repro files.
std::string exact_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ---- flat single-line scanner ----------------------------------------------
// Keys map to either a string or a raw (unparsed) number token; keeping
// the token lets integer ids re-parse through strtoull without a double
// round-trip.

struct FlatValue {
  bool is_string = false;
  std::string text;
};

using FlatObject = std::vector<std::pair<std::string, FlatValue>>;

bool scan_flat_object(const std::string& line, FlatObject& out,
                      std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  };
  const auto eat = [&](char c) {
    skip_ws();
    if (pos < line.size() && line[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };
  const auto read_string = [&](std::string& s) {
    if (!eat('"')) return false;
    s.clear();
    while (pos < line.size()) {
      const char c = line[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < line.size()) {
        const char esc = line[pos++];
        switch (esc) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          default: s += esc; break;
        }
      } else {
        s += c;
      }
    }
    return false;
  };
  if (!eat('{')) return fail("line does not start with '{'");
  bool first = true;
  while (true) {
    if (eat('}')) return true;
    if (!first && !eat(',')) return fail("expected ',' between members");
    first = false;
    std::string key;
    if (!read_string(key) || !eat(':')) return fail("malformed key");
    skip_ws();
    FlatValue value;
    if (pos < line.size() && line[pos] == '"') {
      value.is_string = true;
      if (!read_string(value.text)) return fail("unterminated string value");
    } else {
      const std::size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}' &&
             !std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      if (pos == start) return fail("malformed value");
      value.text = line.substr(start, pos - start);
    }
    out.emplace_back(std::move(key), std::move(value));
  }
}

const FlatValue* find(const FlatObject& obj, const char* key) {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string get_str(const FlatObject& obj, const char* key) {
  const FlatValue* v = find(obj, key);
  return v != nullptr && v->is_string ? v->text : std::string();
}

double get_num(const FlatObject& obj, const char* key) {
  const FlatValue* v = find(obj, key);
  return v != nullptr && !v->is_string ? std::strtod(v->text.c_str(), nullptr)
                                       : 0.0;
}

std::uint64_t get_u64(const FlatObject& obj, const char* key) {
  const FlatValue* v = find(obj, key);
  return v != nullptr && !v->is_string
             ? std::strtoull(v->text.c_str(), nullptr, 10)
             : 0;
}

bool get_flag(const FlatObject& obj, const char* key) {
  return get_u64(obj, key) != 0;
}

}  // namespace

void append_flight_tail(IncidentBundle& bundle,
                        const std::vector<FlightEvent>& tail) {
  bundle.flight.reserve(bundle.flight.size() + tail.size());
  for (const FlightEvent& e : tail) {
    IncidentFlightEvent out;
    out.t = e.t;
    out.seq = e.seq;
    out.cat = to_string(e.cat);
    out.name = e.name;
    out.a = e.a;
    out.b = e.b;
    out.x = e.x;
    bundle.flight.push_back(std::move(out));
  }
}

void write_incident_bundle(const IncidentBundle& b, std::ostream& os) {
  {
    JsonWriter w(os);
    w.begin_object()
        .key("meta").value("vcl-incident-v1")
        .key("seed").value(b.seed)
        .key("captured_at").value_raw(exact_number(b.captured_at))
        .key("trigger").value(b.trigger)
        .key("flight_recorded").value(b.flight_recorded)
        .key("flight_overwritten").value(b.flight_overwritten)
        .key("broker").value(b.broker)
        .key("pending").value(b.pending)
        .end_object();
  }
  os << '\n';
  for (const IncidentViolation& v : b.violations) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("violation")
        .key("t").value_raw(exact_number(v.t))
        .key("invariant").value(v.invariant)
        .key("detail").value(v.detail)
        .key("task").value(v.task)
        .end_object();
    os << '\n';
  }
  for (const IncidentFlightEvent& e : b.flight) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("flight")
        .key("t").value_raw(exact_number(e.t))
        .key("seq").value(e.seq)
        .key("cat").value(e.cat)
        .key("name").value(e.name)
        .key("a").value(e.a)
        .key("b").value(e.b)
        .key("x").value_raw(exact_number(e.x))
        .end_object();
    os << '\n';
  }
  for (const IncidentWindow& win : b.windows) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("window")
        .key("start").value_raw(exact_number(win.start))
        .key("end").value_raw(exact_number(win.end))
        .key("x").value_raw(exact_number(win.x))
        .key("y").value_raw(exact_number(win.y))
        .key("radius").value_raw(exact_number(win.radius))
        .key("active").value(static_cast<std::uint64_t>(win.active ? 1 : 0))
        .end_object();
    os << '\n';
  }
  for (const IncidentOpenSpan& s : b.open_spans) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("span")
        .key("begin").value_raw(exact_number(s.begin))
        .key("cat").value(s.cat)
        .key("name").value(s.name)
        .key("trace").value(s.trace_id)
        .key("span").value(s.span_id)
        .end_object();
    os << '\n';
  }
  for (const IncidentWorker& wkr : b.workers) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("worker")
        .key("id").value(wkr.id)
        .key("crashed").value(static_cast<std::uint64_t>(wkr.crashed ? 1 : 0))
        .key("tracked").value(static_cast<std::uint64_t>(wkr.tracked ? 1 : 0))
        .end_object();
    os << '\n';
  }
  for (const IncidentTask& t : b.tasks) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("task")
        .key("id").value(t.id)
        .key("state").value(t.state)
        .key("progress").value_raw(exact_number(t.progress))
        .key("work").value_raw(exact_number(t.work))
        .key("checkpoint").value_raw(exact_number(t.checkpoint))
        .key("worker").value(t.worker)
        .key("trace").value(t.trace_id)
        .end_object();
    os << '\n';
  }
  for (const IncidentObject& o : b.objects) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("object")
        .key("id").value(o.id)
        .key("acked_version").value(o.acked_version)
        .end_object();
    os << '\n';
  }
  for (const IncidentReplica& r : b.replicas) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("replica")
        .key("object").value(r.object)
        .key("holder").value(r.holder)
        .key("version").value(r.version)
        .key("alive").value(static_cast<std::uint64_t>(r.alive ? 1 : 0))
        .key("lease").value(static_cast<std::uint64_t>(r.lease_held ? 1 : 0))
        .end_object();
    os << '\n';
  }
  for (const IncidentDagGraph& g : b.graphs) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("graph")
        .key("id").value(g.id)
        .key("terminal").value(static_cast<std::uint64_t>(g.terminal ? 1 : 0))
        .key("completed").value(
            static_cast<std::uint64_t>(g.completed ? 1 : 0))
        .key("intermediates").value(g.intermediates_held)
        .end_object();
    os << '\n';
  }
  for (const IncidentDagNode& n : b.dag_nodes) {
    JsonWriter w(os);
    w.begin_object()
        .key("rec").value("dagnode")
        .key("graph").value(n.graph)
        .key("node").value(n.node)
        .key("submitted").value(
            static_cast<std::uint64_t>(n.submitted ? 1 : 0))
        .key("succeeded").value(
            static_cast<std::uint64_t>(n.succeeded ? 1 : 0))
        .key("live").value(n.live_attempts)
        .end_object();
    os << '\n';
  }
}

bool parse_incident_bundle(std::istream& is, IncidentBundle& b,
                           std::string* error) {
  b = IncidentBundle{};
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string line;
  std::size_t lineno = 0;
  bool have_meta = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    FlatObject obj;
    std::string why;
    if (!scan_flat_object(line, obj, &why)) {
      return fail("line " + std::to_string(lineno) + ": " + why);
    }
    if (!have_meta) {
      if (get_str(obj, "meta") != "vcl-incident-v1") {
        return fail("line 1: not a vcl-incident-v1 meta record");
      }
      b.seed = get_u64(obj, "seed");
      b.captured_at = get_num(obj, "captured_at");
      b.trigger = get_str(obj, "trigger");
      b.flight_recorded = get_u64(obj, "flight_recorded");
      b.flight_overwritten = get_u64(obj, "flight_overwritten");
      b.broker = get_u64(obj, "broker");
      b.pending = get_u64(obj, "pending");
      have_meta = true;
      continue;
    }
    const std::string rec = get_str(obj, "rec");
    if (rec == "violation") {
      IncidentViolation v;
      v.t = get_num(obj, "t");
      v.invariant = get_str(obj, "invariant");
      v.detail = get_str(obj, "detail");
      v.task = get_u64(obj, "task");
      b.violations.push_back(std::move(v));
    } else if (rec == "flight") {
      IncidentFlightEvent e;
      e.t = get_num(obj, "t");
      e.seq = get_u64(obj, "seq");
      e.cat = get_str(obj, "cat");
      e.name = get_str(obj, "name");
      e.a = get_u64(obj, "a");
      e.b = get_u64(obj, "b");
      e.x = get_num(obj, "x");
      b.flight.push_back(std::move(e));
    } else if (rec == "window") {
      IncidentWindow w;
      w.start = get_num(obj, "start");
      w.end = get_num(obj, "end");
      w.x = get_num(obj, "x");
      w.y = get_num(obj, "y");
      w.radius = get_num(obj, "radius");
      w.active = get_flag(obj, "active");
      b.windows.push_back(w);
    } else if (rec == "span") {
      IncidentOpenSpan s;
      s.begin = get_num(obj, "begin");
      s.cat = get_str(obj, "cat");
      s.name = get_str(obj, "name");
      s.trace_id = get_u64(obj, "trace");
      s.span_id = get_u64(obj, "span");
      b.open_spans.push_back(std::move(s));
    } else if (rec == "worker") {
      IncidentWorker w;
      w.id = get_u64(obj, "id");
      w.crashed = get_flag(obj, "crashed");
      w.tracked = get_flag(obj, "tracked");
      b.workers.push_back(w);
    } else if (rec == "task") {
      IncidentTask t;
      t.id = get_u64(obj, "id");
      t.state = get_str(obj, "state");
      t.progress = get_num(obj, "progress");
      t.work = get_num(obj, "work");
      t.checkpoint = get_num(obj, "checkpoint");
      t.worker = get_u64(obj, "worker");
      t.trace_id = get_u64(obj, "trace");
      b.tasks.push_back(std::move(t));
    } else if (rec == "object") {
      IncidentObject o;
      o.id = get_u64(obj, "id");
      o.acked_version = get_u64(obj, "acked_version");
      b.objects.push_back(o);
    } else if (rec == "replica") {
      IncidentReplica r;
      r.object = get_u64(obj, "object");
      r.holder = get_u64(obj, "holder");
      r.version = get_u64(obj, "version");
      r.alive = get_flag(obj, "alive");
      r.lease_held = get_flag(obj, "lease");
      b.replicas.push_back(r);
    } else if (rec == "graph") {
      IncidentDagGraph g;
      g.id = get_u64(obj, "id");
      g.terminal = get_flag(obj, "terminal");
      g.completed = get_flag(obj, "completed");
      g.intermediates_held = get_u64(obj, "intermediates");
      b.graphs.push_back(g);
    } else if (rec == "dagnode") {
      IncidentDagNode n;
      n.graph = get_u64(obj, "graph");
      n.node = get_u64(obj, "node");
      n.submitted = get_flag(obj, "submitted");
      n.succeeded = get_flag(obj, "succeeded");
      n.live_attempts = get_u64(obj, "live");
      b.dag_nodes.push_back(n);
    } else {
      return fail("line " + std::to_string(lineno) + ": unknown record \"" +
                  rec + "\"");
    }
  }
  if (!have_meta) return fail("empty input (no meta record)");
  return true;
}

}  // namespace vcl::obs
