#include "obs/flight_recorder.h"

#include <algorithm>

namespace vcl::obs {

const char* to_string(FlightCategory c) {
  switch (c) {
    case FlightCategory::kTask: return "task";
    case FlightCategory::kDetector: return "detector";
    case FlightCategory::kLease: return "lease";
    case FlightCategory::kQuorum: return "quorum";
    case FlightCategory::kDag: return "dag";
    case FlightCategory::kFault: return "fault";
    case FlightCategory::kAuth: return "auth";
    case FlightCategory::kAttack: return "attack";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t per_category) {
  const std::size_t capacity = std::max<std::size_t>(1, per_category);
  for (Ring& r : rings_) r.slots.resize(capacity);
}

void FlightRecorder::record(SimTime t, FlightCategory cat, const char* name,
                            std::uint64_t a, std::uint64_t b, double x) {
  Ring& r = rings_[static_cast<std::size_t>(cat)];
  FlightEvent& e = r.slots[r.head];
  e.t = t;
  e.cat = cat;
  e.name = name;
  e.a = a;
  e.b = b;
  e.x = x;
  e.seq = seq_++;
  r.head = (r.head + 1) % r.slots.size();
  if (r.count < r.slots.size()) ++r.count;
  ++r.recorded;
  ++recorded_;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::uint64_t lost = 0;
  for (const Ring& r : rings_) lost += r.recorded - r.count;
  return lost;
}

void FlightRecorder::clear() {
  for (Ring& r : rings_) {
    r.head = 0;
    r.count = 0;
    r.recorded = 0;
  }
  recorded_ = 0;
  seq_ = 0;
}

std::vector<FlightEvent> FlightRecorder::tail() const {
  std::vector<FlightEvent> merged;
  std::size_t total = 0;
  for (const Ring& r : rings_) total += r.count;
  merged.reserve(total);
  for (const Ring& r : rings_) {
    const std::size_t capacity = r.slots.size();
    const std::size_t start = (r.head + capacity - r.count) % capacity;
    for (std::size_t i = 0; i < r.count; ++i) {
      merged.push_back(r.slots[(start + i) % capacity]);
    }
  }
  // The global sequence number is unique, so the merge is a strict total
  // order regardless of per-ring wrap state.
  std::sort(merged.begin(), merged.end(),
            [](const FlightEvent& l, const FlightEvent& r) {
              return l.seq < r.seq;
            });
  return merged;
}

}  // namespace vcl::obs
