#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace vcl::obs {

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn fn) {
  gauges_[name] = std::move(fn);
}

Accumulator& MetricsRegistry::histogram(const std::string& name) {
  return histograms_.try_emplace(name, /*keep_samples=*/true).first->second;
}

QuantileSketch& MetricsRegistry::sketch(const std::string& name) {
  return sketches_.try_emplace(name).first->second;
}

void MetricsRegistry::sketch_view(const std::string& name,
                                  const QuantileSketch& s) {
  sketch_views_[name] = &s;
}

const QuantileSketch* MetricsRegistry::find_sketch(
    const std::string& name) const {
  if (auto it = sketches_.find(name); it != sketches_.end()) {
    return &it->second;
  }
  if (auto it = sketch_views_.find(name); it != sketch_views_.end()) {
    return it->second;
  }
  return nullptr;
}

double MetricsRegistry::value(const std::string& name) const {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second.value();
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second ? it->second() : 0.0;
  }
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second.mean();
  }
  if (const QuantileSketch* s = find_sketch(name); s != nullptr) {
    return s->count() ? s->quantile(0.99) : 0.0;
  }
  return 0.0;
}

std::size_t MetricsRegistry::metric_count() const {
  return counters_.size() + gauges_.size() + histograms_.size() +
         sketches_.size() + sketch_views_.size();
}

void MetricsRegistry::capture_columns() {
  columns_.clear();
  for (const auto& [name, c] : counters_) columns_.push_back(name);
  for (const auto& [name, g] : gauges_) columns_.push_back(name);
  for (const auto& [name, h] : histograms_) {
    columns_.push_back(name + ".count");
    columns_.push_back(name + ".mean");
  }
  const auto sketch_columns = [this](const std::string& name) {
    columns_.push_back(name + ".count");
    columns_.push_back(name + ".p50");
    columns_.push_back(name + ".p99");
    columns_.push_back(name + ".p999");
  };
  for (const auto& [name, s] : sketches_) sketch_columns(name);
  for (const auto& [name, s] : sketch_views_) sketch_columns(name);
  // The maps are each sorted; a global sort makes the column order
  // independent of metric kind.
  std::sort(columns_.begin(), columns_.end());
}

std::vector<double> MetricsRegistry::snapshot_row() const {
  std::vector<double> row;
  row.reserve(columns_.size());
  for (const std::string& col : columns_) {
    if (auto it = counters_.find(col); it != counters_.end()) {
      row.push_back(it->second.value());
      continue;
    }
    if (auto it = gauges_.find(col); it != gauges_.end()) {
      row.push_back(it->second ? it->second() : 0.0);
      continue;
    }
    // Histogram/sketch-derived columns carry a ".count"/".mean"/".pXX"
    // suffix.
    const auto dot = col.rfind('.');
    const std::string base = col.substr(0, dot);
    const std::string kind = col.substr(dot + 1);
    if (auto it = histograms_.find(base); it != histograms_.end()) {
      row.push_back(kind == "count" ? static_cast<double>(it->second.count())
                                    : it->second.mean());
      continue;
    }
    if (const QuantileSketch* s = find_sketch(base); s != nullptr) {
      if (kind == "count") {
        row.push_back(static_cast<double>(s->count()));
      } else if (s->count() == 0) {
        row.push_back(0.0);  // quantile of nothing: keep the CSV numeric
      } else if (kind == "p50") {
        row.push_back(s->quantile(0.50));
      } else if (kind == "p99") {
        row.push_back(s->quantile(0.99));
      } else {
        row.push_back(s->quantile(0.999));
      }
      continue;
    }
    row.push_back(0.0);  // metric vanished (should not happen)
  }
  return row;
}

void MetricsRegistry::sample(SimTime now) {
  if (columns_.empty()) capture_columns();
  samples_.push_back(Sample{now, snapshot_row()});
}

void MetricsRegistry::start_sampling(sim::Simulator& sim, SimTime period) {
  sample(sim.now());  // t=0 baseline row
  sim.schedule_every(
      period, [this, &sim] { sample(sim.now()); }, -1.0, "obs.sample");
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "t";
  for (const std::string& col : columns_) os << ',' << col;
  os << '\n';
  for (const Sample& s : samples_) {
    os << json_number(s.t);
    for (const double v : s.values) os << ',' << json_number(v);
    os << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("columns").begin_array();
  w.value("t");
  for (const std::string& col : columns_) w.value(col);
  w.end_array();
  w.key("samples").begin_array();
  for (const Sample& s : samples_) {
    w.begin_array();
    w.value(s.t);
    for (const double v : s.values) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void MetricsRegistry::write_sketches_json(std::ostream& os) const {
  // Owned sketches and views export identically, in one sorted namespace.
  std::map<std::string, const QuantileSketch*> all;
  for (const auto& [name, s] : sketches_) all.emplace(name, &s);
  for (const auto& [name, s] : sketch_views_) all.emplace(name, s);
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("vcl-sketch-v1");
  w.key("sketches").begin_array();
  for (const auto& [name, s] : all) {
    w.begin_object();
    w.key("name").value(name);
    w.key("relative_error").value(s->relative_error());
    w.key("max_buckets").value(static_cast<std::uint64_t>(s->max_buckets()));
    w.key("count").value(s->count());
    w.key("sum").value(s->sum());
    w.key("min").value(s->min());
    w.key("max").value(s->max());
    w.key("zero_count").value(s->zero_count());
    w.key("buckets").begin_array();
    for (const QuantileSketch::Bucket& b : s->buckets()) {
      w.begin_array();
      w.value(static_cast<double>(b.index));  // exact: indices are small ints
      w.value(b.count);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
