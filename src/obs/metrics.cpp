#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace vcl::obs {

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn fn) {
  gauges_[name] = std::move(fn);
}

Accumulator& MetricsRegistry::histogram(const std::string& name) {
  return histograms_.try_emplace(name, /*keep_samples=*/true).first->second;
}

double MetricsRegistry::value(const std::string& name) const {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second.value();
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second ? it->second() : 0.0;
  }
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second.mean();
  }
  return 0.0;
}

std::size_t MetricsRegistry::metric_count() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::capture_columns() {
  columns_.clear();
  for (const auto& [name, c] : counters_) columns_.push_back(name);
  for (const auto& [name, g] : gauges_) columns_.push_back(name);
  for (const auto& [name, h] : histograms_) {
    columns_.push_back(name + ".count");
    columns_.push_back(name + ".mean");
  }
  // The three maps are each sorted; a global sort makes the column order
  // independent of metric kind.
  std::sort(columns_.begin(), columns_.end());
}

std::vector<double> MetricsRegistry::snapshot_row() const {
  std::vector<double> row;
  row.reserve(columns_.size());
  for (const std::string& col : columns_) {
    if (auto it = counters_.find(col); it != counters_.end()) {
      row.push_back(it->second.value());
      continue;
    }
    if (auto it = gauges_.find(col); it != gauges_.end()) {
      row.push_back(it->second ? it->second() : 0.0);
      continue;
    }
    // Histogram-derived columns carry a ".count"/".mean" suffix.
    const auto dot = col.rfind('.');
    const std::string base = col.substr(0, dot);
    const std::string kind = col.substr(dot + 1);
    if (auto it = histograms_.find(base); it != histograms_.end()) {
      row.push_back(kind == "count" ? static_cast<double>(it->second.count())
                                    : it->second.mean());
      continue;
    }
    row.push_back(0.0);  // metric vanished (should not happen)
  }
  return row;
}

void MetricsRegistry::sample(SimTime now) {
  if (columns_.empty()) capture_columns();
  samples_.push_back(Sample{now, snapshot_row()});
}

void MetricsRegistry::start_sampling(sim::Simulator& sim, SimTime period) {
  sample(sim.now());  // t=0 baseline row
  sim.schedule_every(
      period, [this, &sim] { sample(sim.now()); }, -1.0, "obs.sample");
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "t";
  for (const std::string& col : columns_) os << ',' << col;
  os << '\n';
  for (const Sample& s : samples_) {
    os << json_number(s.t);
    for (const double v : s.values) os << ',' << json_number(v);
    os << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("columns").begin_array();
  w.value("t");
  for (const std::string& col : columns_) w.value(col);
  w.end_array();
  w.key("samples").begin_array();
  for (const Sample& s : samples_) {
    w.begin_array();
    w.value(s.t);
    for (const double v : s.values) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace vcl::obs
