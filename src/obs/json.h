// Minimal streaming JSON writer shared by the telemetry exporters.
//
// Emits syntactically valid JSON with no external dependency: the trace
// recorder (JSONL + Chrome trace_event), the metrics sampler and the bench
// `--json` reporter all format through this one class so their output stays
// mutually consistent (escaping, number formatting, nesting).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace vcl::obs {

// Escapes a string for embedding inside JSON double quotes.
std::string json_escape(const std::string& s);

// Formats a double the way JSON expects: integral values print without a
// trailing ".0" garbage tail, non-finite values degrade to null.
std::string json_number(double v);

// Stack-based writer: begin/end calls must pair; commas and key/value
// ordering are handled internally. Misuse (value with no pending key inside
// an object) is a programming error and asserts in debug builds.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Keys apply to the next value/container inside an object.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Emits the cell as a number when it parses fully as one, else a string —
  // the bridge from Table's all-string rows to typed JSON.
  JsonWriter& value_auto(const std::string& cell);

  // Emits a preformatted token verbatim (no quoting, no reformatting).
  // For callers whose numbers must round-trip bit-exactly — json_number's
  // %.12g is lossy by design; fault-plan repro files format with %.17g.
  JsonWriter& value_raw(const std::string& token);

 private:
  void comma();

  std::ostream& os_;
  // One frame per open container: whether any element was emitted yet.
  std::vector<bool> wrote_element_;
  bool key_pending_ = false;
};

}  // namespace vcl::obs
