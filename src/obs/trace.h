// TraceRecorder: sim-time structured event tracing (DESIGN.md §6).
//
// Subsystems emit categorized instant events ("net.drop", "task.complete",
// "fault.blackout", ...) with up to four numeric fields. Events land in a
// fixed-capacity ring buffer so a long run overwrites its oldest history
// instead of growing without bound; `overwritten()` reports how much was
// lost. A per-category enable mask gates recording, and instrumented code
// holds a nullable `TraceRecorder*`, so a run with tracing off pays exactly
// one pointer test per would-be event.
//
// Exports:
//  * JSONL — one `{"t":..,"cat":..,"name":..,...fields}` object per line,
//    grep/jq-friendly.
//  * Chrome trace_event JSON — loads directly in chrome://tracing and
//    Perfetto; sim seconds map to trace microseconds, categories map to
//    tracks (tids).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "util/time.h"

namespace vcl::obs {

enum class TraceCategory : std::uint8_t {
  kSim = 0,    // kernel-level (run markers)
  kNet = 1,    // net.tx / net.rx / net.drop / net.broadcast
  kCloud = 2,  // cloud.form / cloud.member.* / cloud.broker.* / cloud.ckpt
  kTask = 3,   // task.submit / task.dispatch / task.complete / task.retry
  kFault = 4,  // fault.crash / fault.rsu.* / fault.blackout.*
};
inline constexpr std::size_t kTraceCategoryCount = 5;

[[nodiscard]] const char* to_string(TraceCategory c);

[[nodiscard]] constexpr std::uint32_t category_bit(TraceCategory c) {
  return 1u << static_cast<std::uint8_t>(c);
}
inline constexpr std::uint32_t kAllTraceCategories =
    (1u << kTraceCategoryCount) - 1;

class TraceRecorder {
 public:
  static constexpr std::size_t kMaxFields = 4;

  struct Field {
    const char* key;
    double value;
  };

  struct Event {
    SimTime t = 0.0;
    TraceCategory cat = TraceCategory::kSim;
    std::uint8_t n_fields = 0;
    const char* name = "";
    std::array<Field, kMaxFields> fields{};
  };

  explicit TraceRecorder(std::size_t capacity = 1 << 16,
                         std::uint32_t category_mask = kAllTraceCategories);

  [[nodiscard]] bool enabled(TraceCategory c) const {
    return (mask_ & category_bit(c)) != 0;
  }
  void set_mask(std::uint32_t mask) { mask_ = mask; }

  // Records an instant event; extra fields beyond kMaxFields are dropped.
  // Field keys and the event name must outlive the recorder (string
  // literals in practice — this keeps the hot path allocation-free).
  void record(SimTime t, TraceCategory cat, const char* name,
              std::initializer_list<Field> fields = {});

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  // Events lost to ring wrap-around (recorded - retained).
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ - count_;
  }
  void clear();

  // Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;

  // One JSON object per line: {"t":1.5,"cat":"task","name":"task.submit",...}
  void write_jsonl(std::ostream& os) const;
  // Chrome trace_event format (chrome://tracing, Perfetto, speedscope).
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::uint32_t mask_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;   // next write slot
  std::size_t count_ = 0;  // retained events (<= capacity)
  std::uint64_t recorded_ = 0;
};

}  // namespace vcl::obs
