// TraceRecorder: sim-time structured event + causal span tracing
// (DESIGN.md §6, §8).
//
// Subsystems emit categorized instant events ("net.drop", "task.complete",
// "fault.blackout", ...) with up to four numeric fields, and *duration
// spans* carrying causal ids `{trace_id, span_id, parent_span_id}` so one
// task's whole lifecycle — submission, dispatch over the lossy channel,
// execution, crash recovery, completion — survives as a single tree even
// across vehicle crashes and radio blackouts. Events land in a
// fixed-capacity ring buffer so a long run overwrites its oldest history
// instead of growing without bound; `overwritten()` reports how much was
// lost. A per-category enable mask gates recording, and instrumented code
// holds a nullable `TraceRecorder*`, so a run with tracing off pays exactly
// one pointer test per would-be event or span.
//
// Exports:
//  * JSONL — a leading metadata record (`recorded`/`overwritten`/
//    `dropped_fields`, so consumers can tell a wrapped ring from a complete
//    trace), then one `{"t":..,"cat":..,"name":..,...}` object per line;
//    span events add `"ph":"B"|"E"` and `"trace"/"span"/"parent"` ids.
//    grep/jq/`tools/vcl_traceview`-friendly.
//  * Chrome trace_event JSON — loads directly in chrome://tracing and
//    Perfetto; sim seconds map to trace microseconds. Instant events map to
//    per-category tracks; matched span pairs are emitted as complete "X"
//    slices on one track per trace_id, so each task renders as its own
//    nested flame row.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "util/time.h"

namespace vcl::obs {

enum class TraceCategory : std::uint8_t {
  kSim = 0,    // kernel-level (run markers)
  kNet = 1,    // net.tx / net.rx / net.drop / net.broadcast
  kCloud = 2,  // cloud.form / cloud.member.* / cloud.broker.* / cloud.ckpt
  kTask = 3,   // task.submit / task.dispatch / task.complete / leg.* spans
  kFault = 4,  // fault.crash / fault.rsu.* / fault.blackout.*
  kStorage = 5,  // storage.put / storage.get / storage.repair + leg spans
  kDag = 6,      // dag.run spans + dag.node / dag.edge instants
};
inline constexpr std::size_t kTraceCategoryCount = 7;

[[nodiscard]] const char* to_string(TraceCategory c);

[[nodiscard]] constexpr std::uint32_t category_bit(TraceCategory c) {
  return 1u << static_cast<std::uint8_t>(c);
}
inline constexpr std::uint32_t kAllTraceCategories =
    (1u << kTraceCategoryCount) - 1;

// Instant events vs the two halves of a duration span.
enum class TracePhase : std::uint8_t { kInstant = 0, kBegin = 1, kEnd = 2 };

// Causal context stamped on a traced entity (a task at submission) and
// propagated through everything done on its behalf: broker dispatch, the
// net::Message that carries it, worker execution, retries and recovery.
// `trace_id` names the causal tree; `span_id` the innermost live span (the
// parent for children begun under this context). Zero ids mean "untraced".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

// Outcome codes carried on a task root span's end event ("outcome" field);
// fields are numeric-only, so the terminal state is encoded, not spelled.
inline constexpr double kOutcomeCompleted = 0.0;
inline constexpr double kOutcomeExpired = 1.0;
inline constexpr double kOutcomeFailed = 2.0;

class TraceRecorder {
 public:
  static constexpr std::size_t kMaxFields = 4;

  struct Field {
    const char* key;
    double value;
  };

  struct Event {
    SimTime t = 0.0;
    TraceCategory cat = TraceCategory::kSim;
    TracePhase phase = TracePhase::kInstant;
    std::uint8_t n_fields = 0;
    const char* name = "";
    // Causal ids; all zero for plain (context-free) instant events.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    std::array<Field, kMaxFields> fields{};
  };

  explicit TraceRecorder(std::size_t capacity = 1 << 16,
                         std::uint32_t category_mask = kAllTraceCategories);

  [[nodiscard]] bool enabled(TraceCategory c) const {
    return (mask_ & category_bit(c)) != 0;
  }
  void set_mask(std::uint32_t mask) { mask_ = mask; }

  // Allocates a fresh trace id (the root of a new causal tree).
  [[nodiscard]] std::uint64_t new_trace_id() { return next_trace_id_++; }

  // Records an instant event; extra fields beyond kMaxFields are counted in
  // dropped_fields() (the event itself keeps the first kMaxFields).
  // Field keys and the event name must outlive the recorder (string
  // literals in practice — this keeps the hot path allocation-free).
  void record(SimTime t, TraceCategory cat, const char* name,
              std::initializer_list<Field> fields = {});
  // Instant event attached to a causal tree (e.g. net.tx for a dispatch).
  void record(SimTime t, TraceCategory cat, const char* name,
              TraceContext ctx, std::initializer_list<Field> fields = {});

  // Opens a duration span under `parent` (parent.span_id may be 0 for a
  // root span) and returns its span id — keep it to close the span later.
  // Returns 0 when the category is masked off (end_span of 0 is a no-op).
  std::uint64_t begin_span(SimTime t, TraceCategory cat, const char* name,
                           TraceContext parent,
                           std::initializer_list<Field> fields = {});
  // Closes the span `ctx.span_id` of tree `ctx.trace_id`; `name` should
  // match the begin (exports pair the two by span id, the name is for
  // humans reading the JSONL).
  void end_span(SimTime t, TraceCategory cat, const char* name,
                TraceContext ctx, std::initializer_list<Field> fields = {});

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  // Events lost to ring wrap-around (recorded - retained).
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ - count_;
  }
  // Fields passed beyond kMaxFields across all events (not silently lost).
  [[nodiscard]] std::uint64_t dropped_fields() const {
    return dropped_fields_;
  }
  void clear();

  // Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  // Begin events whose matching end has not been recorded yet, oldest
  // first — the work in flight at this instant. Best-effort on a wrapped
  // ring (an overwritten begin makes its end look unmatched, not open).
  // Incident bundles snapshot these (DESIGN.md §12).
  [[nodiscard]] std::vector<Event> open_spans() const;

  // Metadata record first ({"meta":"vcl-trace-v1","recorded":...}), then
  // one JSON object per line: {"t":1.5,"cat":"task","name":"task.submit",...}
  void write_jsonl(std::ostream& os) const;
  // Chrome trace_event format (chrome://tracing, Perfetto, speedscope).
  void write_chrome_trace(std::ostream& os) const;

 private:
  Event& push(SimTime t, TraceCategory cat, TracePhase phase,
              const char* name, std::initializer_list<Field> fields);

  std::uint32_t mask_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;   // next write slot
  std::size_t count_ = 0;  // retained events (<= capacity)
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_fields_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
};

}  // namespace vcl::obs
