// Work-stealing thread pool for the experiment engine (DESIGN.md §7).
//
// Replications are coarse tasks (whole simulator runs, seconds each), so the
// pool optimizes for correctness and clean shutdown rather than nanosecond
// dispatch: per-worker deques with LIFO pop / FIFO steal, a bounded total
// queue (submit blocks when `queue_capacity` tasks are already pending), and
// exception propagation through the returned future — a replication that
// throws surfaces at the caller's `get()`, never as a dead worker.
//
// Determinism note: the pool schedules work in a nondeterministic order by
// design. Callers that need reproducible aggregates (exp::replicate) must
// write results into per-task slots and reduce them in a fixed order after
// all futures resolve.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace vcl::exp {

class ThreadPool {
 public:
  struct Stats {
    std::size_t executed = 0;  // tasks run to completion (including throwers)
    std::size_t stolen = 0;    // tasks a worker took from another's deque
  };

  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit ThreadPool(std::size_t threads,
                      std::size_t queue_capacity = kDefaultCapacity);
  // Runs every queued task to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn`; blocks while the pool already holds `queue_capacity`
  // pending tasks. The future rethrows whatever the task threw.
  std::future<void> submit(std::function<void()> fn);

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }
  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop(std::size_t index);
  // Pops the worker's own newest task, else steals another's oldest.
  bool take_task(std::size_t index, std::packaged_task<void()>& out);

  // One mutex guards every deque: tasks are seconds-long simulator runs, so
  // queue contention is irrelevant next to shutdown/blocking correctness.
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   // workers wait here for tasks
  std::condition_variable cv_space_;  // submit waits here when full
  std::vector<std::deque<std::packaged_task<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t queue_capacity_;
  std::size_t pending_ = 0;      // queued, not yet started
  std::size_t next_queue_ = 0;   // round-robin submit target
  bool stop_ = false;
  Stats stats_;
};

}  // namespace vcl::exp
