// Cartesian parameter sweeps over experiment configurations (DESIGN.md §7).
//
// A Sweep names axes; each axis holds labelled mutators of a config object.
// `cells()` expands the cartesian grid in a fixed order (first axis slowest,
// matching nested for-loops), and a Cell applies its axis mutators in axis
// order to a base config:
//
//   exp::Sweep<core::SystemConfig> sweep;
//   sweep.axis("crash_rate")
//       .point("0.00", [](auto& c) { c.faults.vehicle_crash_rate = 0.0; })
//       .point("0.05", [](auto& c) { c.faults.vehicle_crash_rate = 0.05; });
//   sweep.axis("mode")
//       .point("none", [](auto& c) {})
//       .point("full", [](auto& c) { c.cloud.dependability = full(); });
//   for (const auto& cell : sweep.cells()) {
//     core::SystemConfig cfg = cell.make(base);
//     ...  // cell.labels = {"0.05", "full"}, cell.label() = "0.05/full"
//   }
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace vcl::exp {

template <typename Config>
class Sweep {
 public:
  using Mutator = std::function<void(Config&)>;

  class Axis {
   public:
    explicit Axis(std::string name) : name_(std::move(name)) {}

    Axis& point(std::string label, Mutator apply) {
      labels_.push_back(std::move(label));
      mutators_.push_back(std::move(apply));
      return *this;
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t size() const { return labels_.size(); }

   private:
    friend class Sweep;
    std::string name_;
    std::vector<std::string> labels_;
    std::vector<Mutator> mutators_;
  };

  struct Cell {
    std::vector<std::string> labels;  // one per axis, in axis order
    std::vector<Mutator> mutators;    // applied in axis order

    [[nodiscard]] Config make(Config base) const {
      for (const Mutator& m : mutators) m(base);
      return base;
    }

    // "label0/label1/..." — a stable cell key for lookups and logs.
    [[nodiscard]] std::string label() const {
      std::string out;
      for (const std::string& l : labels) {
        if (!out.empty()) out += '/';
        out += l;
      }
      return out;
    }
  };

  // Axes live in a deque so the returned reference stays valid while later
  // axes are added.
  Axis& axis(std::string name) {
    axes_.emplace_back(std::move(name));
    return axes_.back();
  }

  [[nodiscard]] const std::deque<Axis>& axes() const { return axes_; }

  // Cartesian product; the first axis varies slowest. Empty axes yield an
  // empty grid.
  [[nodiscard]] std::vector<Cell> cells() const {
    std::vector<Cell> out;
    if (axes_.empty()) return out;
    std::size_t total = 1;
    for (const Axis& a : axes_) total *= a.size();
    out.reserve(total);
    std::vector<std::size_t> idx(axes_.size(), 0);
    for (std::size_t c = 0; c < total; ++c) {
      Cell cell;
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        cell.labels.push_back(axes_[a].labels_[idx[a]]);
        cell.mutators.push_back(axes_[a].mutators_[idx[a]]);
      }
      out.push_back(std::move(cell));
      // Odometer increment, last axis fastest.
      for (std::size_t a = axes_.size(); a-- > 0;) {
        if (++idx[a] < axes_[a].size()) break;
        idx[a] = 0;
      }
    }
    return out;
  }

 private:
  std::deque<Axis> axes_;
};

}  // namespace vcl::exp
