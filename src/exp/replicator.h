// Replicated experiment runs with deterministic parallel reduction
// (DESIGN.md §7).
//
// A replication function is called once per replication with an independent
// seed (`Rng::fork(rep)`-derived; replication 0 keeps the base seed so a
// single-rep run reproduces the historical single-seed experiment exactly)
// and reports named metrics into a `RepReport`. `replicate()` runs the N
// replications — inline for jobs=1, across an `exp::ThreadPool` otherwise —
// then reduces per-metric with `Accumulator::merge` (Chan) in replication
// order, so the aggregate is bit-identical regardless of `jobs`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "exp/thread_pool.h"
#include "util/quantile_sketch.h"
#include "util/stats.h"

namespace vcl::exp {

// Identity of one replication inside a replicated run.
struct RepContext {
  std::size_t rep = 0;     // replication index in [0, reps)
  std::uint64_t seed = 0;  // independent per-rep seed (rep 0 == base seed)
  // Pre-created directory this replication should export its telemetry
  // into ("<out_dir>/rep<k>"); empty when per-rep export is off.
  std::string out_dir;
};

// What one replication reports: named metrics, each an Accumulator. Use
// `value()` for one observation per replication (the common case) and
// `dist()` when a replication produces a whole within-run distribution.
class RepReport {
 public:
  void value(const std::string& name, double v) { dist(name).add(v); }
  Accumulator& dist(const std::string& name);
  // Fixed-memory tail distribution (p50/p99/p999) for metrics with many
  // observations per replication. All tails use the sketch's default layout
  // so cross-replication merges are always layout-compatible. A tail may
  // share its name with a dist(); they reduce into the same Summary.
  QuantileSketch& tail(const std::string& name);

  [[nodiscard]] const std::map<std::string, Accumulator>& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const std::map<std::string, QuantileSketch>& tails() const {
    return tails_;
  }

 private:
  std::map<std::string, Accumulator> metrics_;
  std::map<std::string, QuantileSketch> tails_;
};

// Cross-replication reduction of one metric.
struct Summary {
  // One entry per reporting replication: that replication's mean.
  Accumulator across;
  // Every replication's samples merged in replication order; percentiles
  // here pool the within-run distributions.
  Accumulator pooled;
  // Per-replication tail sketches merged in replication order. Bucket
  // counts are integers, so the pooled quantiles are bit-identical for any
  // `jobs`; the fixed fold order additionally pins the floating-point sum.
  QuantileSketch tail;
  bool has_tail = false;

  [[nodiscard]] std::size_t n() const { return across.count(); }
  [[nodiscard]] double mean() const { return across.mean(); }
  [[nodiscard]] double stddev() const { return across.stddev(); }
  // Student-t 95% half-width over the per-replication means; 0 when n < 2.
  [[nodiscard]] double ci95() const { return ci95_half_width(across); }
};

struct ReplicateOptions {
  std::size_t reps = 1;
  std::size_t jobs = 1;
  std::uint64_t base_seed = 0;
  // When nonempty, "<out_dir>/rep<k>" is created (serially, before any
  // parallel dispatch) and handed to replication k as RepContext::out_dir.
  std::string out_dir;
};

using RepFn = std::function<RepReport(const RepContext&)>;

// Per-replication seed: rep 0 keeps `base_seed` unchanged (single-rep runs
// reproduce the historical experiments byte-for-byte); rep r > 0 derives an
// independent stream via Rng(base_seed).fork(r).
std::uint64_t rep_seed(std::uint64_t base_seed, std::size_t rep);

// Runs `fn` opts.reps times and reduces. A replication that throws aborts
// the run: the first exception (in replication order) is rethrown after all
// in-flight replications finish. Pass `pool` to reuse one pool across many
// calls (cells of a sweep); nullptr creates a private pool when jobs > 1.
std::map<std::string, Summary> replicate(const ReplicateOptions& opts,
                                         const RepFn& fn,
                                         ThreadPool* pool = nullptr);

}  // namespace vcl::exp
