#include "exp/thread_pool.h"

#include <algorithm>
#include <utility>

namespace vcl::exp {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queues_(std::max<std::size_t>(threads, 1)),
      queue_capacity_(std::max<std::size_t>(queue_capacity, 1)) {
  workers_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [this] { return pending_ < queue_capacity_; });
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  cv_work_.notify_one();
  return future;
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ThreadPool::take_task(std::size_t index,
                           std::packaged_task<void()>& out) {
  // Own deque first, newest task (LIFO keeps a worker on related work)...
  if (!queues_[index].empty()) {
    out = std::move(queues_[index].back());
    queues_[index].pop_back();
    return true;
  }
  // ...then steal the oldest task from the next busy neighbour (FIFO steal
  // takes the work its owner would reach last).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(index + k) % queues_.size()];
    if (!victim.empty()) {
      out = std::move(victim.front());
      victim.pop_front();
      ++stats_.stolen;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::packaged_task<void()> task;
    if (take_task(index, task)) {
      --pending_;
      ++stats_.executed;
      cv_space_.notify_one();
      lock.unlock();
      task();  // packaged_task captures exceptions into the future
      lock.lock();
      continue;
    }
    if (stop_) return;  // stop only once every queue is drained
    cv_work_.wait(lock);
  }
}

}  // namespace vcl::exp
