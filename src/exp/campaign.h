// Campaign: the bench-facing glue of the experiment engine (DESIGN.md §7).
//
// A bench binary owns one Campaign. It parses `--reps N --jobs J` (plus
// `--json <path>` through the embedded obs::BenchReporter), runs replicated
// cells through exp::replicate on one shared work-stealing pool, and emits
// tables whose cells carry cross-replication statistics:
//
//   exp::Campaign campaign("bench_fig1_resource_pool", argc, argv);
//   auto s = campaign.replicate(5, [&](const exp::RepContext& ctx) {
//     exp::RepReport rep;   // cfg.scenario.seed = ctx.seed; run; report
//     ...
//     return rep;
//   });
//   campaign.emit(title, columns, {{exp::Cell("label"),
//                                   exp::Cell(s.at("members"), 1)}});
//   return campaign.finish();
//
// Compatibility contract: at the default --reps 1 a stat cell prints
// exactly Table::num(mean, decimals) and the JSON document is identical to
// the pre-engine output — single-rep runs stay byte-for-byte reproducible
// against the historical benches. With --reps N > 1 stat cells print
// "mean ±ci95" and their JSON cells become {"mean", "ci95", "n"} objects;
// the aggregate is bit-identical for any --jobs (fixed-order reduction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/replicator.h"
#include "obs/bench_output.h"
#include "util/table.h"

namespace vcl::exp {

// One formatted table cell, optionally carrying its replication statistics.
struct Cell {
  std::string text;
  std::optional<obs::CellStat> stat;

  Cell(std::string text) : text(std::move(text)) {}          // NOLINT
  Cell(const char* text) : text(text) {}                     // NOLINT
  // Stat cell: "mean" at n==1 (exactly Table::num(mean, decimals)),
  // "mean ±ci95" at n>1; the JSON side gets {"mean","ci95","n"} when n>1.
  Cell(const Summary& s, int decimals);

  // Tail cell over a Summary's pooled sketch: prints "p50/p99/p999" and the
  // JSON side gets {"p50","p99","p999","n"} (always an object — the text is
  // not a number). Quantiles come from integer bucket counts, so the cell
  // is bit-identical for any --jobs. Empty sketches render "-".
  static Cell tail(const Summary& s, int decimals);
};

class Campaign {
 public:
  // Scans argv for --reps / --jobs (and --json via BenchReporter); unknown
  // flags are ignored so benches stay forgiving. --jobs 0 means one job per
  // hardware thread.
  Campaign(std::string bench_name, int argc, char** argv);
  ~Campaign();

  [[nodiscard]] std::size_t reps() const { return reps_; }
  [[nodiscard]] std::size_t jobs() const { return jobs_; }
  [[nodiscard]] obs::BenchReporter& reporter() { return reporter_; }
  // Root of the per-replication telemetry export (--telemetry-dir), empty
  // when export is off. Each replicate() call routes its replications to
  // "<dir>/cell<c>/rep<k>" (c counts replicate() calls, one per sweep
  // cell); the replication fn sees its directory as RepContext::out_dir
  // and is expected to enable SystemConfig::telemetry + obs::write_telemetry
  // when it is nonempty.
  [[nodiscard]] const std::string& telemetry_dir() const {
    return telemetry_dir_;
  }

  // Prints the replication protocol line ("replication: 16 reps ..."); prints
  // nothing at --reps 1 so historical stdout is preserved.
  void describe(std::ostream& os) const;

  // reps() replications of `fn`, seeds derived from `base_seed` (rep 0 keeps
  // it unchanged), parallel over jobs() on the campaign's shared pool.
  std::map<std::string, Summary> replicate(std::uint64_t base_seed,
                                           const RepFn& fn);

  // Prints the table to stdout and collects it (with per-cell stats) for the
  // --json document.
  void emit(const std::string& title, const std::vector<std::string>& columns,
            const std::vector<std::vector<Cell>>& rows);
  // Collects an already-built plain table (no stats), printing it first.
  void emit(const Table& table);

  // Writes the JSON document and returns the bench's exit code: 0, or 1 when
  // the --json path could not be written (with a message on stderr).
  int finish();

 private:
  obs::BenchReporter reporter_;
  std::size_t reps_ = 1;
  std::size_t jobs_ = 1;
  std::string telemetry_dir_;
  std::size_t cells_ = 0;  // replicate() calls so far (sweep cell index)
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first parallel run
};

}  // namespace vcl::exp
