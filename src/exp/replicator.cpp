#include "exp/replicator.h"

#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace vcl::exp {

Accumulator& RepReport::dist(const std::string& name) {
  return metrics_.try_emplace(name, /*keep_samples=*/true).first->second;
}

QuantileSketch& RepReport::tail(const std::string& name) {
  return tails_.try_emplace(name).first->second;
}

std::uint64_t rep_seed(std::uint64_t base_seed, std::size_t rep) {
  if (rep == 0) return base_seed;
  return Rng(base_seed).fork(rep).seed();
}

namespace {

// Fixed-order reduction: replication r's metrics are folded after r-1's, so
// the result is independent of which worker finished first.
std::map<std::string, Summary> reduce(const std::vector<RepReport>& reports) {
  std::map<std::string, Summary> out;
  for (const RepReport& report : reports) {
    for (const auto& [name, acc] : report.metrics()) {
      if (acc.count() == 0) continue;
      Summary& s = out[name];
      s.across.add(acc.mean());
      s.pooled.merge(acc);
    }
    for (const auto& [name, sketch] : report.tails()) {
      if (sketch.count() == 0) continue;
      Summary& s = out[name];
      s.tail.merge(sketch);
      s.has_tail = true;
    }
  }
  return out;
}

}  // namespace

std::map<std::string, Summary> replicate(const ReplicateOptions& opts,
                                         const RepFn& fn, ThreadPool* pool) {
  const std::size_t reps = std::max<std::size_t>(opts.reps, 1);
  std::vector<RepReport> reports(reps);

  // Per-rep export dirs are created serially up front: replications then
  // only ever write inside their own tree, so the parallel phase needs no
  // filesystem coordination. Creation is best-effort — the writer surfaces
  // the failure when the replication tries to export.
  std::vector<std::string> rep_dirs(reps);
  if (!opts.out_dir.empty()) {
    for (std::size_t r = 0; r < reps; ++r) {
      rep_dirs[r] = opts.out_dir + "/rep" + std::to_string(r);
      std::error_code ec;
      std::filesystem::create_directories(rep_dirs[r], ec);
    }
  }

  if (opts.jobs <= 1 || reps == 1) {
    for (std::size_t r = 0; r < reps; ++r) {
      reports[r] = fn(RepContext{r, rep_seed(opts.base_seed, r), rep_dirs[r]});
    }
    return reduce(reports);
  }

  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(std::min(opts.jobs, reps));
    pool = owned.get();
  }
  std::vector<std::future<void>> futures;
  futures.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    futures.push_back(pool->submit([&fn, &reports, &rep_dirs, r, &opts] {
      reports[r] = fn(RepContext{r, rep_seed(opts.base_seed, r), rep_dirs[r]});
    }));
  }
  // Drain every future before rethrowing so no task outlives `reports`.
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return reduce(reports);
}

}  // namespace vcl::exp
