#include "exp/campaign.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <utility>

namespace vcl::exp {

Cell::Cell(const Summary& s, int decimals) {
  text = Table::num(s.mean(), decimals);
  if (s.n() > 1) {
    text += " ±" + Table::num(s.ci95(), decimals);
    stat = obs::CellStat{s.mean(), s.ci95(), s.n()};
  }
}

Cell Cell::tail(const Summary& s, int decimals) {
  if (!s.has_tail || s.tail.count() == 0) return Cell("-");
  const double p50 = s.tail.quantile(0.50);
  const double p99 = s.tail.quantile(0.99);
  const double p999 = s.tail.quantile(0.999);
  Cell cell(Table::num(p50, decimals) + "/" + Table::num(p99, decimals) + "/" +
            Table::num(p999, decimals));
  obs::CellStat stat;
  stat.n = static_cast<std::size_t>(s.tail.count());
  stat.has_tail = true;
  stat.p50 = p50;
  stat.p99 = p99;
  stat.p999 = p999;
  cell.stat = stat;
  return cell;
}

namespace {

std::size_t parse_count_flag(int argc, char** argv, const std::string& flag,
                             std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      const long v = std::strtol(argv[i + 1], nullptr, 10);
      return v < 0 ? fallback : static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

std::string parse_string_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return {};
}

}  // namespace

Campaign::Campaign(std::string bench_name, int argc, char** argv)
    : reporter_(std::move(bench_name), argc, argv) {
  reps_ = std::max<std::size_t>(parse_count_flag(argc, argv, "--reps", 1), 1);
  jobs_ = parse_count_flag(argc, argv, "--jobs", 1);
  telemetry_dir_ = parse_string_flag(argc, argv, "--telemetry-dir");
  if (jobs_ == 0) {
    jobs_ = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  // `reps` enters the JSON only when replication is on: the default document
  // stays identical to the pre-engine output, and `jobs` never enters it at
  // all (aggregates are jobs-invariant; recording J would break that).
  if (reps_ > 1) {
    reporter_.add_scalar("reps", static_cast<double>(reps_));
  }
}

Campaign::~Campaign() = default;

void Campaign::describe(std::ostream& os) const {
  if (reps_ <= 1) return;
  os << "replication: " << reps_ << " reps x " << jobs_
     << " jobs (independent seeds; cells are mean ±95% CI, Student-t)\n\n";
}

std::map<std::string, Summary> Campaign::replicate(std::uint64_t base_seed,
                                                   const RepFn& fn) {
  if (pool_ == nullptr && jobs_ > 1 && reps_ > 1) {
    pool_ = std::make_unique<ThreadPool>(std::min(jobs_, reps_));
  }
  ReplicateOptions opts;
  opts.reps = reps_;
  opts.jobs = jobs_;
  opts.base_seed = base_seed;
  if (!telemetry_dir_.empty()) {
    opts.out_dir = telemetry_dir_ + "/cell" + std::to_string(cells_);
  }
  ++cells_;
  return exp::replicate(opts, fn, pool_.get());
}

void Campaign::emit(const std::string& title,
                    const std::vector<std::string>& columns,
                    const std::vector<std::vector<Cell>>& rows) {
  Table table(title, columns);
  obs::TableStats stats;
  bool any_stat = false;
  for (const std::vector<Cell>& row : rows) {
    std::vector<std::string> cells;
    std::vector<std::optional<obs::CellStat>> stat_row;
    cells.reserve(row.size());
    stat_row.reserve(row.size());
    for (const Cell& cell : row) {
      cells.push_back(cell.text);
      stat_row.push_back(cell.stat);
      any_stat |= cell.stat.has_value();
    }
    table.add_row(std::move(cells));
    stats.push_back(std::move(stat_row));
  }
  table.print(std::cout);
  if (any_stat) {
    reporter_.add(table, std::move(stats));
  } else {
    reporter_.add(table);
  }
}

void Campaign::emit(const Table& table) {
  table.print(std::cout);
  reporter_.add(table);
}

int Campaign::finish() {
  if (!reporter_.write()) {
    std::cerr << "error: could not write " << reporter_.path() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace vcl::exp
