#include "storage/service.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "vcloud/dwell.h"

namespace vcl::storage {

std::string validate(const StorageConfig& config) {
  if (config.replicas == 0) return "replicas (N) must be >= 1";
  if (config.write_quorum == 0) return "write_quorum (W) must be >= 1";
  if (config.read_quorum == 0) return "read_quorum (R) must be >= 1";
  if (config.write_quorum > config.replicas) {
    return "write_quorum (W) exceeds replicas (N)";
  }
  if (config.read_quorum > config.replicas) {
    return "read_quorum (R) exceeds replicas (N)";
  }
  if (config.write_quorum + config.read_quorum <= config.replicas) {
    return "W + R must exceed N (quorum intersection, else reads can miss "
           "every acked copy)";
  }
  if (config.lease_duration <= 0.0) return "lease_duration must be positive";
  if (config.op_deadline < 0.0) return "op_deadline is negative";
  if (config.repair_period < 0.0) return "repair_period is negative";
  if (config.repair_rate == 0) return "repair_rate must be >= 1";
  if (config.object_bytes == 0) return "object_bytes must be >= 1";
  return {};
}

StorageService::StorageService(net::Network& net,
                               vcloud::VehicularCloud& cloud,
                               StorageConfig config, Rng rng)
    : net_(net), cloud_(cloud), config_(std::move(config)), rng_(rng) {
  if (const std::string problem = validate(config_); !problem.empty()) {
    throw std::invalid_argument("StorageConfig: " + problem);
  }
}

void StorageService::attach() {
  cloud_.set_heartbeat_hook(
      [this](VehicleId v, SimTime now) { on_heartbeat(v, now); });
  cloud_.set_refresh_hook([this](SimTime now) { maintenance(now); });
}

bool StorageService::holder_alive(VehicleId v) const {
  return net_.traffic().find(v) != nullptr && !cloud_.worker_crashed(v);
}

bool StorageService::send_between(VehicleId src, VehicleId dst,
                                  net::MessageKind kind, std::size_t bytes) {
  if (src == dst) return true;  // local disk, no radio leg
  net::Message msg;
  msg.id = net_.next_message_id();
  msg.kind = kind;
  msg.src = net::Address::vehicle(src);
  msg.dst = net::Address::vehicle(dst);
  msg.size_bytes = bytes;
  return net_.send(msg);
}

bool StorageService::send_to(VehicleId v, net::MessageKind kind,
                             std::size_t bytes) {
  const VehicleId broker = cloud_.broker();
  if (!broker.valid()) return false;  // no coordinator, no op
  return send_between(broker, v, kind, bytes);
}

std::vector<VehicleId> StorageService::ranked_candidates(
    const std::vector<VehicleId>& exclude) const {
  const vcloud::CloudRegion region = cloud_.region();
  std::vector<std::pair<double, VehicleId>> ranked;
  for (const VehicleId v : cloud_.worker_ids()) {
    if (cloud_.worker_crashed(v)) continue;
    if (net_.traffic().find(v) == nullptr) continue;
    if (std::find(exclude.begin(), exclude.end(), v) != exclude.end()) {
      continue;
    }
    // Reliability-ranked placement: prefer the hosts expected to stay in
    // the cloud region longest (2210.07337's decomposition argument, with
    // dwell time as the per-component reliability proxy).
    ranked.emplace_back(vcloud::estimate_dwell(net_.traffic(), v,
                                               region.center, region.radius,
                                               vcloud::DwellMode::kKinematic),
                        v);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<VehicleId> out;
  out.reserve(ranked.size());
  for (const auto& [dwell, v] : ranked) out.push_back(v);
  return out;
}

void StorageService::grant_lease(ObjectState& obj, VehicleId v, SimTime now) {
  obj.leases.grant(v, now);
  ++stats_.leases_granted;
}

void StorageService::prune_holder(ObjectState& obj, VehicleId v) {
  obj.leases.revoke(v);
  obj.copy_version.erase(v.value());
  obj.placement.erase(
      std::remove(obj.placement.begin(), obj.placement.end(), v),
      obj.placement.end());
  ++stats_.pruned;
}

FileId StorageService::create(SimTime now) {
  const std::uint64_t id = next_object_id_++;
  ObjectState& obj = objects_[id];
  obj.leases = LeaseTable(config_.lease_duration);
  const std::vector<VehicleId> hosts = ranked_candidates({});
  for (const VehicleId v : hosts) {
    if (obj.placement.size() >= config_.replicas) break;
    obj.placement.push_back(v);
    grant_lease(obj, v, now);
  }
  ++stats_.objects;
  if (trace_ != nullptr) {
    trace_->record(now, obs::TraceCategory::kCloud, "storage.create",
                   {{"object", static_cast<double>(id)},
                    {"replicas", static_cast<double>(obj.placement.size())}});
  }
  return FileId{id};
}

WriteResult StorageService::put(std::uint64_t client, FileId object,
                                SimTime now) {
  WriteResult result;
  auto it = objects_.find(object.value());
  if (it == objects_.end()) return result;
  ObjectState& obj = it->second;
  const std::uint64_t version = obj.latest_version + 1;

  // Bounded quorum write: every attempt offers the version to each
  // placement member that has not taken it yet; attempts stop once W
  // replicas have it or the op's virtual retry budget (op_deadline worth of
  // retry_backoff) runs out. Replies and retries happen within one sim
  // instant — the channel's sampled losses (blackouts included) are what
  // the retries fight.
  // Storage op spans run over the op's VIRTUAL timeline: all retries happen
  // within one sim instant while `elapsed` accrues backoff, so the root
  // span covers [now, now + elapsed] and one storage.leg.attempt child per
  // attempt covers [its start, the next attempt's start) — the legs
  // partition the op end-to-end exactly (tested in obs_test). Each replica
  // that takes the version leaves a storage.replica.write instant in the
  // leg, so the span tree carries the full replica set. Tracing draws no
  // RNG, so an instrumented run stays bit-identical.
  const bool traced =
      trace_ != nullptr && trace_->enabled(obs::TraceCategory::kStorage);
  obs::TraceContext op_ctx;
  if (traced) {
    op_ctx.trace_id = trace_->new_trace_id();
    op_ctx.span_id = trace_->begin_span(
        now, obs::TraceCategory::kStorage, "storage.put", op_ctx,
        {{"object", static_cast<double>(object.value())},
         {"client", static_cast<double>(client)},
         {"version", static_cast<double>(version)},
         {"replicas", static_cast<double>(obj.placement.size())}});
  }

  std::vector<VehicleId> written;
  SimTime elapsed = 0.0;
  const int max_attempts =
      config_.retry.enabled ? std::max(1, config_.retry.max_attempts) : 1;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const SimTime leg_begin = elapsed;
    obs::TraceContext leg_ctx;
    if (traced) {
      leg_ctx.trace_id = op_ctx.trace_id;
      leg_ctx.span_id = trace_->begin_span(
          now + leg_begin, obs::TraceCategory::kStorage, "storage.leg.attempt",
          op_ctx, {{"attempt", static_cast<double>(attempt)}});
    }
    for (const VehicleId v : obj.placement) {
      if (std::find(written.begin(), written.end(), v) != written.end()) {
        continue;
      }
      if (!holder_alive(v)) continue;
      if (!send_to(v, net::MessageKind::kStorageWrite, config_.object_bytes)) {
        continue;
      }
      obj.copy_version[v.value()] = version;
      written.push_back(v);
      if (traced) {
        trace_->record(now + leg_begin, obs::TraceCategory::kStorage,
                       "storage.replica.write", leg_ctx,
                       {{"holder", static_cast<double>(v.value())},
                        {"version", static_cast<double>(version)}});
      }
    }
    if (written.size() >= config_.write_quorum || attempt == max_attempts) {
      if (traced) {
        trace_->end_span(now + elapsed, obs::TraceCategory::kStorage,
                         "storage.leg.attempt", leg_ctx);
      }
      break;
    }
    elapsed += vcloud::retry_backoff(config_.retry, attempt, rng_);
    if (traced) {
      trace_->end_span(now + elapsed, obs::TraceCategory::kStorage,
                       "storage.leg.attempt", leg_ctx,
                       {{"backoff", elapsed - leg_begin}});
    }
    if (elapsed > config_.op_deadline) break;
  }
  stats_.put_latency_tail.add(elapsed);

  if (!written.empty()) obj.latest_version = version;
  result.version = written.empty() ? 0 : version;
  result.replicas = written.size();
  if (written.size() >= config_.write_quorum) {
    obj.acked_version = version;
    obj.loss_logged = false;
    result.acked = true;
    ++stats_.writes_acked;
    if (oracle_ != nullptr) {
      oracle_->on_storage_ack(object, version, written, now);
    }
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "storage.write.ack",
                     {{"object", static_cast<double>(object.value())},
                      {"version", static_cast<double>(version)},
                      {"client", static_cast<double>(client)},
                      {"replicas", static_cast<double>(written.size())}});
    }
  } else {
    ++stats_.writes_failed;
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "storage.write.fail",
                     {{"object", static_cast<double>(object.value())},
                      {"client", static_cast<double>(client)},
                      {"replicas", static_cast<double>(written.size())}});
    }
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kQuorum,
                      "quorum.write.failed", object.value(), client,
                      static_cast<double>(written.size()));
    }
  }
  if (traced) {
    trace_->end_span(now + elapsed, obs::TraceCategory::kStorage,
                     "storage.put", op_ctx,
                     {{"acked", result.acked ? 1.0 : 0.0},
                      {"replicas", static_cast<double>(written.size())}});
  }
  return result;
}

ReadResult StorageService::get(std::uint64_t client, FileId object,
                               SimTime now) {
  ReadResult result;
  auto it = objects_.find(object.value());
  if (it == objects_.end()) return result;
  ObjectState& obj = it->second;

  // Same virtual-timeline span structure as put(): root storage.get over
  // [now, now + elapsed], attempt legs partitioning it, and one
  // storage.replica.read instant per responding holder (the replica set).
  const bool traced =
      trace_ != nullptr && trace_->enabled(obs::TraceCategory::kStorage);
  obs::TraceContext op_ctx;
  if (traced) {
    op_ctx.trace_id = trace_->new_trace_id();
    op_ctx.span_id = trace_->begin_span(
        now, obs::TraceCategory::kStorage, "storage.get", op_ctx,
        {{"object", static_cast<double>(object.value())},
         {"client", static_cast<double>(client)},
         {"replicas", static_cast<double>(obj.placement.size())}});
  }

  std::vector<VehicleId> answered;
  std::uint64_t max_seen = 0;
  SimTime elapsed = 0.0;
  const int max_attempts =
      config_.retry.enabled ? std::max(1, config_.retry.max_attempts) : 1;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const SimTime leg_begin = elapsed;
    obs::TraceContext leg_ctx;
    if (traced) {
      leg_ctx.trace_id = op_ctx.trace_id;
      leg_ctx.span_id = trace_->begin_span(
          now + leg_begin, obs::TraceCategory::kStorage, "storage.leg.attempt",
          op_ctx, {{"attempt", static_cast<double>(attempt)}});
    }
    for (const VehicleId v : obj.placement) {
      if (std::find(answered.begin(), answered.end(), v) != answered.end()) {
        continue;
      }
      if (!holder_alive(v)) continue;
      if (!send_to(v, net::MessageKind::kStorageRead, 256)) continue;
      answered.push_back(v);
      const auto cv = obj.copy_version.find(v.value());
      if (cv != obj.copy_version.end()) max_seen = std::max(max_seen, cv->second);
      if (traced) {
        trace_->record(now + leg_begin, obs::TraceCategory::kStorage,
                       "storage.replica.read", leg_ctx,
                       {{"holder", static_cast<double>(v.value())},
                        {"version",
                         static_cast<double>(cv != obj.copy_version.end()
                                                 ? cv->second
                                                 : 0)}});
      }
    }
    if (answered.size() >= config_.read_quorum || attempt == max_attempts) {
      if (traced) {
        trace_->end_span(now + elapsed, obs::TraceCategory::kStorage,
                         "storage.leg.attempt", leg_ctx);
      }
      break;
    }
    elapsed += vcloud::retry_backoff(config_.retry, attempt, rng_);
    if (traced) {
      trace_->end_span(now + elapsed, obs::TraceCategory::kStorage,
                       "storage.leg.attempt", leg_ctx,
                       {{"backoff", elapsed - leg_begin}});
    }
    if (elapsed > config_.op_deadline) break;
  }
  stats_.get_latency_tail.add(elapsed);
  const auto end_op_span = [&](double ok, double degraded) {
    if (!traced) return;
    trace_->end_span(now + elapsed, obs::TraceCategory::kStorage,
                     "storage.get", op_ctx,
                     {{"ok", ok},
                      {"degraded", degraded},
                      {"responses", static_cast<double>(answered.size())}});
  };

  result.responses = answered.size();
  if (answered.empty()) {
    ++stats_.reads_failed;
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kQuorum,
                      "quorum.read.failed", object.value(), client);
    }
    end_op_span(0.0, 0.0);
    return result;
  }
  result.ok = true;
  // Fresh quorum read: R responses whose best copy covers the acked
  // version. The coordinator serves exactly what it acked (R+W>N puts at
  // least one up-to-date holder in any R responses; an unacked newer
  // version on a minority replica stays invisible). Anything less is a
  // degraded read: best live copy, flagged stale-risk.
  if (answered.size() >= config_.read_quorum && max_seen >= obj.acked_version) {
    result.version = obj.acked_version;
    ++stats_.reads_quorum;
    if (oracle_ != nullptr) {
      oracle_->on_storage_read(client, object, result.version, false, now);
    }
  } else {
    result.degraded = true;
    result.version = max_seen;
    ++stats_.reads_degraded;
    if (oracle_ != nullptr) {
      oracle_->on_storage_read(client, object, result.version, true, now);
    }
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "storage.read.degraded",
                     {{"object", static_cast<double>(object.value())},
                      {"client", static_cast<double>(client)},
                      {"responses", static_cast<double>(answered.size())},
                      {"version", static_cast<double>(max_seen)}});
    }
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kQuorum,
                      "quorum.read.degraded", object.value(), client,
                      static_cast<double>(answered.size()));
    }
  }
  end_op_span(1.0, result.degraded ? 1.0 : 0.0);
  return result;
}

void StorageService::on_heartbeat(VehicleId v, SimTime now) {
  for (auto& [id, obj] : objects_) {
    if (std::find(obj.placement.begin(), obj.placement.end(), v) ==
        obj.placement.end()) {
      continue;
    }
    // Renewal rides the heartbeat; a renewal racing expiry at the same sim
    // time succeeds (LeaseTable's inclusive-expiry contract). An already
    // expired lease is NOT silently revived — the holder stays suspect
    // until the repair pipeline re-grants it.
    if (obj.leases.renew(v, now)) ++stats_.leases_renewed;
  }
}

void StorageService::maintenance(SimTime now) {
  // Lease bookkeeping first: natural expiries become suspects (revoked
  // lease, copy and placement slot retained), and holders that are dead or
  // no longer cloud members lose their leases so the oracle's
  // lease-membership invariant is quiesced before its end-of-round scan.
  for (auto& [id, obj] : objects_) {
    for (const VehicleId v : obj.leases.expired(now)) {
      obj.leases.revoke(v);
      ++stats_.leases_expired;
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kCloud, "storage.lease.expire",
                       {{"object", static_cast<double>(id)},
                        {"holder", static_cast<double>(v.value())}});
      }
      if (flight_ != nullptr) {
        flight_->record(now, obs::FlightCategory::kLease, "lease.expire", id,
                        v.value());
      }
    }
    for (const VehicleId v : obj.placement) {
      if (!obj.leases.known(v)) continue;
      if (!holder_alive(v) || !cloud_.is_worker(v)) obj.leases.revoke(v);
    }
  }

  if (now < last_repair_ + config_.repair_period) return;
  last_repair_ = now;
  std::size_t budget = config_.repair_rate;
  for (auto& [id, obj] : objects_) {
    repair_object(id, obj, now, budget);
  }
}

void StorageService::repair_object(std::uint64_t id, ObjectState& obj,
                                   SimTime now, std::size_t& budget) {
  if (config_.test_drop_repair_replace) {
    // DELIBERATE TEST-ONLY BUG: treat every suspect (expired/revoked lease)
    // as permanently gone — prune it AND delete its copy, placing no
    // replacement. A blackout long enough to expire leases then erases
    // every copy with zero holder deaths; the oracle's storage-durability
    // invariant must catch exactly this.
    std::vector<VehicleId> suspects;
    for (const VehicleId v : obj.placement) {
      if (!obj.leases.held(v, now)) suspects.push_back(v);
    }
    std::sort(suspects.begin(), suspects.end());
    for (const VehicleId v : suspects) prune_holder(obj, v);
    return;
  }

  // Snapshot repair counters so an activity-gated storage.repair span can
  // be emitted at the end: idle rounds (the common case) leave no trace, so
  // the ring is not flooded with objects x rounds no-op spans.
  const std::size_t copies0 = stats_.repair_copies;
  const std::size_t freshened0 = stats_.freshen_copies;
  const std::size_t regranted0 = stats_.leases_regranted;
  const std::size_t pruned0 = stats_.pruned;

  // Recovered suspects: the holder is alive and back in the membership —
  // re-grant its lease and keep the copy instead of re-replicating (the
  // cheap path after a blackout or a false-positive kill).
  for (const VehicleId v : obj.placement) {
    if (obj.leases.known(v)) continue;
    if (holder_alive(v) && cloud_.is_worker(v)) {
      grant_lease(obj, v, now);
      ++stats_.leases_regranted;
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kCloud,
                       "storage.lease.regrant",
                       {{"object", static_cast<double>(id)},
                        {"holder", static_cast<double>(v.value())}});
      }
    }
  }

  const auto live_leased = [&](VehicleId v) {
    return holder_alive(v) && obj.leases.held(v, now);
  };
  const auto version_of = [&](VehicleId v) -> std::uint64_t {
    const auto it = obj.copy_version.find(v.value());
    return it == obj.copy_version.end() ? 0 : it->second;
  };
  const auto best_source = [&]() {
    VehicleId src;
    std::uint64_t best = 0;
    for (const VehicleId v : obj.placement) {
      if (!live_leased(v)) continue;
      const std::uint64_t ver = version_of(v);
      if (ver > best || (ver == best && ver > 0 && !src.valid())) {
        best = ver;
        src = v;
      }
    }
    return std::pair<VehicleId, std::uint64_t>{src, best};
  };

  // Freshen: live leased replicas below the best live version catch up, so
  // quorum intersections keep covering the acked version after swaps.
  if (obj.latest_version > 0) {
    const auto [src, best] = best_source();
    if (src.valid()) {
      for (const VehicleId v : obj.placement) {
        if (budget == 0) break;
        if (!live_leased(v) || version_of(v) >= best) continue;
        --budget;  // attempts are charged, success or not (rate limit)
        if (!send_between(src, v, net::MessageKind::kStorageRepair,
                          config_.object_bytes)) {
          continue;
        }
        obj.copy_version[v.value()] = best;
        ++stats_.freshen_copies;
        stats_.mb_copied += static_cast<double>(config_.object_bytes) / 1e6;
      }
    }
  }

  // Re-replication: swap semantics. A replacement copy must LAND before
  // any suspect is pruned, and a holder is only ever pruned when it is
  // physically dead or demonstrably stale — never the last carrier of the
  // acked version (durability beats placement hygiene).
  const auto prunable = [&](VehicleId v) {
    if (!holder_alive(v)) return true;
    return obj.acked_version > 0 && version_of(v) < obj.acked_version;
  };
  while (budget > 0) {
    std::size_t healthy = 0;
    for (const VehicleId v : obj.placement) healthy += live_leased(v);
    if (healthy >= config_.replicas) break;
    bool has_prunable = false;
    for (const VehicleId v : obj.placement) has_prunable |= prunable(v);
    if (obj.placement.size() >= config_.replicas && !has_prunable) break;

    const std::vector<VehicleId> candidates = ranked_candidates(obj.placement);
    if (candidates.empty()) break;
    const VehicleId dst = candidates.front();

    if (obj.latest_version > 0) {
      const auto [src, best] = best_source();
      if (!src.valid()) break;  // no live leased source: never risk the rest
      --budget;
      if (!send_between(src, dst, net::MessageKind::kStorageRepair,
                        config_.object_bytes)) {
        break;  // channel down (blackout); retry next round
      }
      obj.placement.push_back(dst);
      obj.copy_version[dst.value()] = best;
      grant_lease(obj, dst, now);
      ++stats_.repair_copies;
      stats_.mb_copied += static_cast<double>(config_.object_bytes) / 1e6;
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kCloud, "storage.repair.copy",
                       {{"object", static_cast<double>(id)},
                        {"from", static_cast<double>(src.value())},
                        {"to", static_cast<double>(dst.value())},
                        {"version", static_cast<double>(best)}});
      }
    } else {
      // No data yet: membership grows by metadata alone.
      --budget;
      obj.placement.push_back(dst);
      grant_lease(obj, dst, now);
    }

    if (obj.placement.size() > config_.replicas) {
      // Swap complete: drop the worst suspect — dead first, stale second.
      std::vector<VehicleId> sorted = obj.placement;
      std::sort(sorted.begin(), sorted.end());
      VehicleId victim;
      for (const VehicleId v : sorted) {
        if (!holder_alive(v)) {
          victim = v;
          break;
        }
      }
      if (!victim.valid()) {
        for (const VehicleId v : sorted) {
          if (prunable(v)) {
            victim = v;
            break;
          }
        }
      }
      if (victim.valid()) {
        prune_holder(obj, victim);
        if (trace_ != nullptr) {
          trace_->record(now, obs::TraceCategory::kCloud,
                         "storage.repair.prune",
                         {{"object", static_cast<double>(id)},
                          {"holder", static_cast<double>(victim.value())}});
        }
      }
    }
  }

  // Repair happens within one sim instant, so an active cycle becomes a
  // zero-duration span: begin and end both stamped `now`, carrying the
  // object id, what the cycle did, and (as child instants) the replica set
  // it left behind. trace_analysis buckets these per object and attributes
  // them to fault windows.
  if (trace_ != nullptr && trace_->enabled(obs::TraceCategory::kStorage)) {
    const std::size_t copies = stats_.repair_copies - copies0;
    const std::size_t freshened = stats_.freshen_copies - freshened0;
    const std::size_t regranted = stats_.leases_regranted - regranted0;
    const std::size_t pruned = stats_.pruned - pruned0;
    if (copies + freshened + regranted + pruned > 0) {
      obs::TraceContext ctx;
      ctx.trace_id = trace_->new_trace_id();
      ctx.span_id = trace_->begin_span(
          now, obs::TraceCategory::kStorage, "storage.repair", ctx,
          {{"object", static_cast<double>(id)},
           {"replicas", static_cast<double>(obj.placement.size())}});
      for (const VehicleId v : obj.placement) {
        trace_->record(now, obs::TraceCategory::kStorage,
                       "storage.repair.replica", ctx,
                       {{"holder", static_cast<double>(v.value())},
                        {"version", static_cast<double>(version_of(v))}});
      }
      trace_->end_span(now, obs::TraceCategory::kStorage, "storage.repair",
                       ctx,
                       {{"copies", static_cast<double>(copies)},
                        {"freshened", static_cast<double>(freshened)},
                        {"regranted", static_cast<double>(regranted)},
                        {"pruned", static_cast<double>(pruned)}});
    }
  }
}

VehicleId StorageService::storm_victim(std::uint64_t tag) const {
  if (objects_.empty()) return VehicleId{};
  auto it = objects_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(tag % objects_.size()));
  std::vector<VehicleId> live;
  for (const VehicleId v : it->second.placement) {
    if (holder_alive(v)) live.push_back(v);
  }
  if (live.empty()) return VehicleId{};
  return *std::min_element(live.begin(), live.end());
}

std::vector<FileId> StorageService::object_ids() const {
  std::vector<FileId> out;
  out.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) out.push_back(FileId{id});
  return out;
}

std::size_t StorageService::live_replicas(FileId object) const {
  const auto it = objects_.find(object.value());
  if (it == objects_.end()) return 0;
  std::size_t live = 0;
  for (const VehicleId v : it->second.placement) {
    if (!holder_alive(v)) continue;
    const auto cv = it->second.copy_version.find(v.value());
    const std::uint64_t ver = cv == it->second.copy_version.end() ? 0 : cv->second;
    if (ver >= it->second.acked_version) ++live;
  }
  return live;
}

std::uint64_t StorageService::acked_version(FileId object) const {
  const auto it = objects_.find(object.value());
  return it == objects_.end() ? 0 : it->second.acked_version;
}

void StorageService::for_each_object(
    const std::function<void(const vcloud::StorageObjectView&)>& fn) const {
  const SimTime now = net_.simulator().now();
  for (const auto& [id, obj] : objects_) {
    vcloud::StorageObjectView view;
    view.object = FileId{id};
    view.acked_version = obj.acked_version;
    std::vector<VehicleId> sorted = obj.placement;
    std::sort(sorted.begin(), sorted.end());
    for (const VehicleId v : sorted) {
      vcloud::StorageReplicaView r;
      r.holder = v;
      const auto cv = obj.copy_version.find(v.value());
      r.version = cv == obj.copy_version.end() ? 0 : cv->second;
      r.alive = holder_alive(v);
      r.lease_held = obj.leases.held(v, now);
      view.replicas.push_back(r);
    }
    fn(view);
  }
}

void StorageService::register_metrics(obs::MetricsRegistry& metrics) const {
  metrics.gauge("storage.objects", [this] {
    return static_cast<double>(stats_.objects);
  });
  metrics.gauge("storage.writes.acked", [this] {
    return static_cast<double>(stats_.writes_acked);
  });
  metrics.gauge("storage.reads.degraded", [this] {
    return static_cast<double>(stats_.reads_degraded);
  });
  metrics.gauge("storage.repair.copies", [this] {
    return static_cast<double>(stats_.repair_copies);
  });
  metrics.gauge("storage.leases.expired", [this] {
    return static_cast<double>(stats_.leases_expired);
  });
  metrics.gauge("storage.mb_copied", [this] { return stats_.mb_copied; });
  // Tail distributions of per-op virtual latency; snapshot columns + the
  // sketches.json export both read through these views.
  metrics.sketch_view("storage.put.latency", stats_.put_latency_tail);
  metrics.sketch_view("storage.get.latency", stats_.get_latency_tail);
}

}  // namespace vcl::storage
