// Lease-based replica membership (paper §V; arXiv 1711.02014's storage
// framing of the vehicular dependability problem).
//
// A replica holder's right to serve a copy is a *lease*: a grant with an
// expiry instant, renewed every time the broker hears the holder's
// heartbeat. A lease that expires does NOT delete anything — the holder
// becomes *suspect* and the repair pipeline decides whether to re-grant
// (the holder came back) or re-replicate elsewhere (it did not). This is
// the storage-side analogue of the failure detector: expiry is a liveness
// hint, never an authority on data.
//
// Pure bookkeeping, no simulator dependency — the StorageService feeds in
// grant/renew/revoke observations and queries held()/expired().
//
// Timing contract (the chaos soak leans on these exact edges):
//  * a lease granted or renewed at time t is held through t + duration
//    INCLUSIVE: held(v, t + duration) is true;
//  * a renewal racing expiry at the same sim time therefore succeeds —
//    renew(v, expiry_instant) extends the lease (renewal wins the race);
//  * expired(now) lists holders whose expiry is strictly before `now`.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace vcl::storage {

class LeaseTable {
 public:
  explicit LeaseTable(SimTime duration = 3.0) : duration_(duration) {}

  // Grants (or re-grants) a lease expiring at now + duration.
  void grant(VehicleId v, SimTime now) {
    expiry_[v.value()] = now + duration_;
  }
  // Renews only a lease that is still held at `now` (inclusive of the
  // expiry instant); a renewal of an expired or unknown lease is ignored —
  // the repair pipeline must explicitly re-grant. Returns whether the
  // renewal took effect.
  bool renew(VehicleId v, SimTime now) {
    auto it = expiry_.find(v.value());
    if (it == expiry_.end() || now > it->second) return false;
    it->second = now + duration_;
    return true;
  }
  void revoke(VehicleId v) { expiry_.erase(v.value()); }

  // Held = granted and not yet expired (expiry instant inclusive).
  [[nodiscard]] bool held(VehicleId v, SimTime now) const {
    const auto it = expiry_.find(v.value());
    return it != expiry_.end() && now <= it->second;
  }
  // Known = granted at some point and not revoked (may be expired).
  [[nodiscard]] bool known(VehicleId v) const {
    return expiry_.find(v.value()) != expiry_.end();
  }
  [[nodiscard]] SimTime expiry(VehicleId v) const {
    const auto it = expiry_.find(v.value());
    return it == expiry_.end() ? -1.0 : it->second;
  }

  // Known holders whose lease expired strictly before `now`, sorted by id
  // (deterministic iteration for the repair pipeline).
  [[nodiscard]] std::vector<VehicleId> expired(SimTime now) const;
  // All known holders, sorted by id.
  [[nodiscard]] std::vector<VehicleId> holders() const;

  [[nodiscard]] SimTime duration() const { return duration_; }
  [[nodiscard]] std::size_t size() const { return expiry_.size(); }

 private:
  SimTime duration_;
  std::unordered_map<std::uint64_t, SimTime> expiry_;
};

}  // namespace vcl::storage
