// StorageService: a broker-coordinated object store over vehicle-hosted
// replicas (paper §V; arXiv 1711.02014 poses storage as THE canonical
// vehicular-cloud service to harden).
//
// The broker of an existing VehicularCloud coordinates N-way replication
// of opaque objects across member vehicles:
//
//  * membership is lease-based (lease.h): holders renew their replica
//    leases through the cloud's existing heartbeat path (heartbeat hook);
//    an expired lease marks the holder *suspect* and hands it to the
//    repair pipeline — it never silently deletes anything;
//  * writes and reads are quorum operations (W + R > N): a write is acked
//    once W replicas took the new version; a read asks up to R live
//    replicas, both with a per-op deadline and bounded retry_backoff
//    against the lossy channel. When the quorum is unreachable (a radio
//    blackout hiding most of the lot) a read degrades gracefully: it
//    serves from any live replica, flagged stale-risk, rather than
//    failing — the availability/consistency trade §V sketches;
//  * repair is self-healing and rate-limited: each maintenance round
//    re-replicates under-replicated objects from a live leased source onto
//    dwell-time-ranked hosts (2210.07337's reliability-driven placement),
//    re-grants leases to recovered original holders, freshens stale live
//    copies, and prunes a suspect only AFTER its replacement landed (swap,
//    not discard) — never a member whose copy is the last up-to-date one.
//
// Quorum reads return exactly the acked version (the coordinator clamps to
// what it promised; R-of-N intersection guarantees a fresh copy answers),
// so monotonic reads per client hold by construction — which is what lets
// the InvariantOracle treat any regression as a hard violation.
//
// Determinism: placement ranking, repair order and victim resolution are
// pure functions of (config, cloud state); the only randomness is the
// service's own forked RNG used for retry jitter, so a run is bit-identical
// per (config, seed) and completely absent when the service is disabled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/lease.h"
#include "util/quantile_sketch.h"
#include "vcloud/cloud.h"
#include "vcloud/invariant_oracle.h"

namespace vcl::storage {

struct StorageConfig {
  bool enabled = false;       // gate used by core::SystemConfig wiring
  std::size_t replicas = 3;   // N: target replica count per object
  std::size_t write_quorum = 2;  // W: acks required before a write is acked
  std::size_t read_quorum = 2;   // R: responses required for a fresh read
  SimTime lease_duration = 3.0;  // holder lease lifetime, heartbeat-renewed
  SimTime op_deadline = 2.0;     // per-op retry budget (virtual backoff time)
  SimTime repair_period = 1.0;   // minimum spacing between repair rounds
  std::size_t repair_rate = 2;   // max copy attempts per repair round
  std::size_t object_bytes = 1 << 20;  // replica payload size on the wire
  vcloud::RetryConfig retry{true, 4, 0.2, 2.0, 0.5};  // per-op send retries
  // TEST-ONLY deliberate bug: the repair pipeline treats a lease expiry as
  // permanent loss — it prunes the suspect from the placement AND deletes
  // its physical copy without placing a replacement first. A radio blackout
  // long enough to expire leases then destroys every copy with zero holder
  // deaths, which the oracle's storage-durability invariant must catch
  // (tests/storage_test.cpp). Never set outside tests.
  bool test_drop_repair_replace = false;
};

// Empty string when sane, else a one-line description of the first problem
// (same contract as fault::validate): W ≤ N, R ≤ N, W + R > N, positive
// lease/op/repair intervals, non-zero repair rate.
[[nodiscard]] std::string validate(const StorageConfig& config);

struct StorageStats {
  std::size_t objects = 0;
  std::size_t writes_acked = 0;
  std::size_t writes_failed = 0;   // could not reach W replicas in time
  std::size_t reads_quorum = 0;    // fresh quorum reads
  std::size_t reads_degraded = 0;  // served below R, flagged stale-risk
  std::size_t reads_failed = 0;    // no live replica answered at all
  std::size_t leases_granted = 0;
  std::size_t leases_renewed = 0;
  std::size_t leases_expired = 0;   // held -> suspect transitions observed
  std::size_t leases_regranted = 0;  // repair re-granted a recovered holder
  std::size_t repair_copies = 0;     // replacement copies landed
  std::size_t freshen_copies = 0;    // stale live replicas caught up
  std::size_t pruned = 0;            // suspects swapped out of placements
  double mb_copied = 0.0;            // repair + freshen traffic
  // Per-op virtual latency (retry backoff accrued within the op deadline):
  // fixed-memory sketches, so tail percentiles survive million-op runs.
  QuantileSketch put_latency_tail;
  QuantileSketch get_latency_tail;
};

struct WriteResult {
  bool acked = false;
  std::uint64_t version = 0;   // version written (0 = nothing reached a host)
  std::size_t replicas = 0;    // copies that took the version
};

struct ReadResult {
  bool ok = false;        // some replica answered
  bool degraded = false;  // below quorum or stale: stale-risk flagged
  std::uint64_t version = 0;
  std::size_t responses = 0;
};

class StorageService final : public vcloud::StorageIntrospection {
 public:
  // Throws std::invalid_argument when validate(config) reports a problem.
  StorageService(net::Network& net, vcloud::VehicularCloud& cloud,
                 StorageConfig config, Rng rng);

  // Claims the cloud's heartbeat hook (lease renewal) and refresh hook
  // (lease bookkeeping + repair). Call once, after the cloud's attach().
  void attach();

  // Creates an object: places it on up to N dwell-ranked live members and
  // grants their leases. The object holds no data until the first put.
  FileId create(SimTime now);

  // Quorum write of the next version. Bounded retries within op_deadline;
  // acked once W live replicas took the version.
  WriteResult put(std::uint64_t client, FileId object, SimTime now);

  // Quorum read. Fresh (R responses covering the acked version) returns
  // exactly the acked version; otherwise degrades to the best live copy,
  // flagged stale-risk. ok=false when nothing answered.
  ReadResult get(std::uint64_t client, FileId object, SimTime now);

  // Deterministic victim resolution for storage-targeted chaos storms: the
  // live holder (smallest id) of the object selected by `tag` among the
  // current objects (tag mod object count, ascending id order). Invalid
  // when there is nothing to target — the injector falls back to its
  // ordinary victim pool.
  [[nodiscard]] VehicleId storm_victim(std::uint64_t tag) const;

  [[nodiscard]] const StorageStats& stats() const { return stats_; }
  [[nodiscard]] const StorageConfig& config() const { return config_; }
  [[nodiscard]] std::vector<FileId> object_ids() const;
  // Live replicas holding at least the acked version (tests/benches).
  [[nodiscard]] std::size_t live_replicas(FileId object) const;
  [[nodiscard]] std::uint64_t acked_version(FileId object) const;

  // --- StorageIntrospection (invariant oracle view) --------------------------
  void for_each_object(
      const std::function<void(const vcloud::StorageObjectView&)>& fn)
      const override;
  [[nodiscard]] std::size_t replica_target() const override {
    return config_.replicas;
  }
  [[nodiscard]] std::size_t write_quorum() const override {
    return config_.write_quorum;
  }

  // Nullable hookups, same inertness contract as the cloud's.
  void set_oracle(vcloud::InvariantOracle* oracle) { oracle_ = oracle; }
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  // Always-on forensics (DESIGN.md §12): lease expiries and quorum
  // degradations are the storage clues an incident bundle needs.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }
  void register_metrics(obs::MetricsRegistry& metrics) const;

 private:
  struct ObjectState {
    std::vector<VehicleId> placement;  // current member set, ≤ N
    std::map<std::uint64_t, std::uint64_t> copy_version;  // holder -> version
    LeaseTable leases;
    std::uint64_t acked_version = 0;   // highest client-acked version
    std::uint64_t latest_version = 0;  // highest version on any replica
    bool loss_logged = false;
  };

  // Heartbeat hook: renews `v`'s leases on every object it holds.
  void on_heartbeat(VehicleId v, SimTime now);
  // Refresh hook: lease bookkeeping, re-grants, then rate-limited repair.
  void maintenance(SimTime now);
  void repair_object(std::uint64_t id, ObjectState& obj, SimTime now,
                     std::size_t& budget);
  // Physical copy survival: the holder exists in traffic and has not
  // crashed. Independent of cloud membership — a falsely-declared-dead
  // worker still has the bytes.
  [[nodiscard]] bool holder_alive(VehicleId v) const;
  // Send one storage message src-of-record (broker) <-> holder; charges the
  // channel and consumes its loss sampling.
  bool send_to(VehicleId v, net::MessageKind kind, std::size_t bytes);
  bool send_between(VehicleId src, VehicleId dst, net::MessageKind kind,
                    std::size_t bytes);
  // Live cloud members not in `exclude`, ranked by estimated dwell time in
  // the cloud region (descending; ties by ascending id).
  [[nodiscard]] std::vector<VehicleId> ranked_candidates(
      const std::vector<VehicleId>& exclude) const;
  void grant_lease(ObjectState& obj, VehicleId v, SimTime now);
  void prune_holder(ObjectState& obj, VehicleId v);

  net::Network& net_;
  vcloud::VehicularCloud& cloud_;
  StorageConfig config_;
  Rng rng_;
  std::map<std::uint64_t, ObjectState> objects_;  // ordered: deterministic
  std::uint64_t next_object_id_ = 1;
  SimTime last_repair_ = -1e300;
  StorageStats stats_;
  vcloud::InvariantOracle* oracle_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace vcl::storage
