#include "storage/lease.h"

#include <algorithm>

namespace vcl::storage {

std::vector<VehicleId> LeaseTable::expired(SimTime now) const {
  std::vector<VehicleId> out;
  for (const auto& [vid, expiry] : expiry_) {
    if (expiry < now) out.push_back(VehicleId{vid});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VehicleId> LeaseTable::holders() const {
  std::vector<VehicleId> out;
  out.reserve(expiry_.size());
  for (const auto& [vid, expiry] : expiry_) out.push_back(VehicleId{vid});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vcl::storage
