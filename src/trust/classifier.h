// Message classifier (paper §V.D component 1): groups reports that concern
// the same physical event.
//
// Reports cluster when they (a) claim the same event type, (b) lie within
// `radius` meters of each other's claimed location, and (c) fall within
// `window` seconds. Single-linkage greedy clustering — the VANET equivalent
// of DBSCAN with minPts=1, chosen because clusters here are small and
// latency matters more than boundary precision.
#pragma once

#include <vector>

#include "trust/report.h"

namespace vcl::trust {

struct EventCluster {
  EventType type = EventType::kAccident;
  geo::Vec2 centroid;       // mean claimed location
  SimTime first = 0.0;
  SimTime last = 0.0;
  std::vector<Report> reports;
};

struct ClassifierConfig {
  double radius = 200.0;  // meters
  SimTime window = 15.0;  // seconds
};

class MessageClassifier {
 public:
  explicit MessageClassifier(ClassifierConfig config = {}) : config_(config) {}

  // Groups the reports; order-independent up to cluster ordering.
  [[nodiscard]] std::vector<EventCluster> classify(
      const std::vector<Report>& reports) const;

  // Purity metric for experiments: fraction of clusters whose member
  // reports all share one ground-truth event.
  static double purity(const std::vector<EventCluster>& clusters);

 private:
  ClassifierConfig config_;
};

}  // namespace vcl::trust
