#include "trust/dempster_shafer.h"

#include <algorithm>

namespace vcl::trust {

MassAssignment MassAssignment::combine(const MassAssignment& o) const {
  // Conflict: one source says Event, the other NoEvent.
  const double conflict = event * o.no_event + no_event * o.event;
  const double norm = 1.0 - conflict;
  MassAssignment out;
  if (norm <= 1e-12) {
    // Total conflict: fall back to complete ignorance.
    out.event = out.no_event = 0.0;
    out.theta = 1.0;
    return out;
  }
  out.event = (event * o.event + event * o.theta + theta * o.event) / norm;
  out.no_event =
      (no_event * o.no_event + no_event * o.theta + theta * o.no_event) / norm;
  out.theta = (theta * o.theta) / norm;
  return out;
}

TrustDecision DempsterShafer::evaluate(const EventCluster& c) const {
  MassAssignment acc;  // vacuous: all mass on theta
  for (const Report& r : c.reports) {
    MassAssignment m;
    if (r.positive) {
      m.event = witness_mass_;
    } else {
      m.no_event = witness_mass_;
    }
    m.theta = 1.0 - witness_mass_;
    acc = acc.combine(m);
  }
  TrustDecision d;
  // Pignistic-style score: belief + half the ignorance.
  d.score = std::clamp(acc.event + 0.5 * acc.theta, 0.0, 1.0);
  d.accepted = d.score > 0.5;
  return d;
}

}  // namespace vcl::trust
