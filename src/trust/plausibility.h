// Kinematic plausibility checking of beacon content (paper §III.D: "a
// vehicle should be able to verify whether the received information about
// another vehicle's speed, direction and location is correct").
//
// Each received beacon claims (position, velocity, time). The checker keeps
// a short track per sender credential and flags physical impossibilities:
//   * speed bound:    claimed speed beyond anything road vehicles do;
//   * position jump:  displacement between consecutive beacons exceeding
//     claimed-speed x dt by more than the tolerance (teleportation);
//   * kinematic mismatch: claimed velocity pointing somewhere entirely
//     different from the observed displacement.
// This is content validation at the single-message level — the layer below
// the event-cluster validators in trust/validators.h.
#pragma once

#include <unordered_map>

#include "geo/vec2.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::trust {

struct BeaconClaim {
  std::uint64_t credential = 0;
  geo::Vec2 pos;
  geo::Vec2 vel;
  SimTime time = 0.0;
};

enum class PlausibilityVerdict : std::uint8_t {
  kPlausible,
  kSpeedViolation,     // claimed speed beyond the physical bound
  kPositionJump,       // moved further than physics allows since last beacon
  kKinematicMismatch,  // displacement disagrees with claimed velocity
};

const char* to_string(PlausibilityVerdict v);

struct PlausibilityConfig {
  double max_speed = 60.0;          // m/s (216 km/h), generous bound
  double jump_tolerance = 25.0;     // meters of slack on displacement
  double direction_tolerance = 0.9; // max |displacement - vel*dt| / (v*dt)
  SimTime track_timeout = 10.0;     // forget stale tracks
};

class PlausibilityChecker {
 public:
  explicit PlausibilityChecker(PlausibilityConfig config = {})
      : config_(config) {}

  // Checks a claim against the sender's track and updates the track.
  PlausibilityVerdict check(const BeaconClaim& claim);

  [[nodiscard]] std::size_t checked() const { return checked_; }
  [[nodiscard]] std::size_t flagged() const { return flagged_; }
  [[nodiscard]] std::size_t tracked_senders() const { return tracks_.size(); }

 private:
  PlausibilityConfig config_;
  std::unordered_map<std::uint64_t, BeaconClaim> tracks_;
  std::size_t checked_ = 0;
  std::size_t flagged_ = 0;
};

}  // namespace vcl::trust
