#include "trust/reputation.h"

#include <algorithm>

namespace vcl::trust {

double ReputationStore::score(std::uint64_t credential) const {
  auto it = scores_.find(credential);
  return it == scores_.end() ? 0.5 : it->second;
}

void ReputationStore::record(std::uint64_t credential, bool was_correct) {
  double& s = scores_.try_emplace(credential, 0.5).first->second;
  const double target = was_correct ? 1.0 : 0.0;
  s = std::clamp(s + rate_ * (target - s), 0.0, 1.0);
}

}  // namespace vcl::trust
