#include "trust/plausibility.h"

#include <cmath>

namespace vcl::trust {

const char* to_string(PlausibilityVerdict v) {
  switch (v) {
    case PlausibilityVerdict::kPlausible: return "plausible";
    case PlausibilityVerdict::kSpeedViolation: return "speed_violation";
    case PlausibilityVerdict::kPositionJump: return "position_jump";
    case PlausibilityVerdict::kKinematicMismatch: return "kinematic_mismatch";
  }
  return "unknown";
}

PlausibilityVerdict PlausibilityChecker::check(const BeaconClaim& claim) {
  ++checked_;
  auto finish = [&](PlausibilityVerdict verdict) {
    if (verdict != PlausibilityVerdict::kPlausible) ++flagged_;
    // The track always advances — even for implausible claims, which keeps
    // a persistent liar producing fresh verdicts instead of being compared
    // against an ancient honest baseline forever.
    tracks_[claim.credential] = claim;
    return verdict;
  };

  if (claim.vel.norm() > config_.max_speed) {
    return finish(PlausibilityVerdict::kSpeedViolation);
  }

  auto it = tracks_.find(claim.credential);
  if (it == tracks_.end() ||
      claim.time - it->second.time > config_.track_timeout ||
      claim.time <= it->second.time) {
    return finish(PlausibilityVerdict::kPlausible);  // no usable history
  }
  const BeaconClaim& prev = it->second;
  const double dt = claim.time - prev.time;
  const geo::Vec2 displacement = claim.pos - prev.pos;

  // Teleport check against the physical bound.
  if (displacement.norm() >
      config_.max_speed * dt + config_.jump_tolerance) {
    return finish(PlausibilityVerdict::kPositionJump);
  }

  // Consistency between displacement and the previously claimed velocity
  // (only meaningful when actually moving).
  const double claimed_travel = prev.vel.norm() * dt;
  if (claimed_travel > 5.0) {
    const geo::Vec2 predicted = prev.pos + prev.vel * dt;
    const double error = geo::distance(predicted, claim.pos);
    if (error > config_.direction_tolerance * claimed_travel +
                    config_.jump_tolerance) {
      return finish(PlausibilityVerdict::kKinematicMismatch);
    }
  }
  return finish(PlausibilityVerdict::kPlausible);
}

}  // namespace vcl::trust
