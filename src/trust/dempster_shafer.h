// Dempster-Shafer evidence combination (the technique Raya et al. [32]
// apply to data-centric trust in ephemeral networks).
//
// Frame of discernment {Event, NoEvent}. Each report contributes a basic
// mass assignment with `discount` mass left on the full frame (ignorance);
// Dempster's rule combines reports pairwise; the decision reads belief(Event)
// after normalization. Compared to Bayes, DS degrades more gracefully when
// witnesses are scarce — it does not force 0.5-prior overconfidence.
#pragma once

#include "trust/validators.h"

namespace vcl::trust {

struct MassAssignment {
  double event = 0.0;     // m({Event})
  double no_event = 0.0;  // m({NoEvent})
  double theta = 1.0;     // m({Event, NoEvent}) — ignorance

  // Dempster's rule of combination; returns the normalized combination.
  [[nodiscard]] MassAssignment combine(const MassAssignment& other) const;
  [[nodiscard]] double belief_event() const { return event; }
  [[nodiscard]] double plausibility_event() const { return event + theta; }
};

class DempsterShafer final : public Validator {
 public:
  // `witness_mass` is the evidence mass a single report carries; the rest is
  // ignorance.
  explicit DempsterShafer(double witness_mass = 0.6)
      : witness_mass_(witness_mass) {}

  [[nodiscard]] const char* name() const override { return "dempster_shafer"; }
  [[nodiscard]] TrustDecision evaluate(const EventCluster& c) const override;

 private:
  double witness_mass_;
};

}  // namespace vcl::trust
