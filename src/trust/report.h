// Event reports: what vehicles tell each other about the physical world.
//
// The paper's §III.D argument: trusting the *sender* is not enough — the
// *content* must be validated against other observations of the same event,
// under stringent time constraints. A Report is one vehicle's claim about
// one event; the classifier groups reports into event clusters, validators
// score each cluster.
#pragma once

#include <string>
#include <vector>

#include "geo/vec2.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::trust {

enum class EventType : std::uint8_t {
  kAccident,
  kIce,
  kCongestion,
  kRoadBlocked,
};

const char* to_string(EventType type);

struct Report {
  // Claim content (visible to everyone).
  EventType type = EventType::kAccident;
  geo::Vec2 location;       // claimed event location
  SimTime time = 0.0;       // report emission time
  bool positive = true;     // asserts the event IS there (false = denial)
  std::uint64_t reporter_credential = 0;  // pseudonymous sender id
  geo::Vec2 reporter_pos;   // claimed reporter position at observation

  // Scoring-only ground truth (never read by validators).
  EventId truth_event;
  bool truthful = true;
};

// A ground-truth physical event for experiment scoring.
struct GroundTruthEvent {
  EventId id;
  EventType type = EventType::kAccident;
  geo::Vec2 location;
  SimTime start = 0.0;
  SimTime end = 0.0;
  bool real = true;  // false = fabricated event (attack injects these)
};

}  // namespace vcl::trust
