#include "trust/classifier.h"

#include <algorithm>

namespace vcl::trust {

std::vector<EventCluster> MessageClassifier::classify(
    const std::vector<Report>& reports) const {
  std::vector<EventCluster> clusters;
  // Process in time order so the window check is incremental.
  std::vector<const Report*> sorted;
  sorted.reserve(reports.size());
  for (const Report& r : reports) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const Report* a, const Report* b) { return a->time < b->time; });

  for (const Report* r : sorted) {
    EventCluster* best = nullptr;
    double best_dist = config_.radius;
    for (EventCluster& c : clusters) {
      if (c.type != r->type) continue;
      if (r->time - c.last > config_.window) continue;
      const double d = geo::distance(c.centroid, r->location);
      if (d <= best_dist) {
        best_dist = d;
        best = &c;
      }
    }
    if (best == nullptr) {
      EventCluster c;
      c.type = r->type;
      c.centroid = r->location;
      c.first = c.last = r->time;
      c.reports.push_back(*r);
      clusters.push_back(std::move(c));
    } else {
      best->reports.push_back(*r);
      best->last = std::max(best->last, r->time);
      // Incremental centroid update.
      const double n = static_cast<double>(best->reports.size());
      best->centroid =
          best->centroid + (r->location - best->centroid) / n;
    }
  }
  return clusters;
}

double MessageClassifier::purity(const std::vector<EventCluster>& clusters) {
  if (clusters.empty()) return 1.0;
  std::size_t pure = 0;
  for (const EventCluster& c : clusters) {
    bool same = true;
    for (const Report& r : c.reports) {
      if (!(r.truth_event == c.reports.front().truth_event)) {
        same = false;
        break;
      }
    }
    pure += same ? 1 : 0;
  }
  return static_cast<double>(pure) / static_cast<double>(clusters.size());
}

}  // namespace vcl::trust
