#include "trust/validators.h"

#include <algorithm>
#include <cmath>

namespace vcl::trust {
namespace {

TrustDecision from_score(double score) {
  TrustDecision d;
  d.score = std::clamp(score, 0.0, 1.0);
  d.accepted = d.score > 0.5;
  return d;
}

}  // namespace

TrustDecision MajorityVote::evaluate(const EventCluster& c) const {
  if (c.reports.empty()) return from_score(0.0);
  std::size_t positive = 0;
  for (const Report& r : c.reports) positive += r.positive ? 1 : 0;
  return from_score(static_cast<double>(positive) /
                    static_cast<double>(c.reports.size()));
}

TrustDecision DistanceWeightedVote::evaluate(const EventCluster& c) const {
  double total = 0.0;
  double positive = 0.0;
  for (const Report& r : c.reports) {
    const double d = geo::distance(r.reporter_pos, c.centroid);
    const double w = half_dist_ / (half_dist_ + d);
    total += w;
    if (r.positive) positive += w;
  }
  if (total <= 0.0) return from_score(0.0);
  return from_score(positive / total);
}

TrustDecision BayesianInference::evaluate(const EventCluster& c) const {
  if (c.reports.empty()) return from_score(0.0);
  // Log-odds accumulation; prior = 0.5 (log-odds 0).
  const double step = std::log(alpha_ / (1.0 - alpha_));
  double log_odds = 0.0;
  for (const Report& r : c.reports) {
    log_odds += r.positive ? step : -step;
  }
  const double p = 1.0 / (1.0 + std::exp(-log_odds));
  return from_score(p);
}

TrustDecision ReputationWeightedVote::evaluate(const EventCluster& c) const {
  double total = 0.0;
  double positive = 0.0;
  for (const Report& r : c.reports) {
    const double w = store_.score(r.reporter_credential);
    total += w;
    if (r.positive) positive += w;
  }
  if (total <= 0.0) return from_score(0.0);
  return from_score(positive / total);
}

}  // namespace vcl::trust
