// Content validators (paper §V.D component 2, after Raya et al. [32]).
//
// Each validator turns an event cluster — possibly containing conflicting
// positive/negative claims — into a trust score in [0,1]; `accepted` uses a
// 0.5 threshold. Validators never look at ground-truth fields.
#pragma once

#include <memory>

#include "trust/classifier.h"
#include "trust/reputation.h"

namespace vcl::trust {

struct TrustDecision {
  double score = 0.0;  // belief that the event is real
  bool accepted = false;
};

class Validator {
 public:
  virtual ~Validator() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual TrustDecision evaluate(
      const EventCluster& cluster) const = 0;
};

// Unweighted majority of positive claims.
class MajorityVote final : public Validator {
 public:
  [[nodiscard]] const char* name() const override { return "majority"; }
  [[nodiscard]] TrustDecision evaluate(const EventCluster& c) const override;
};

// Votes weighted by witness proximity to the claimed event: a reporter that
// claims to have been far away carries less evidence.
class DistanceWeightedVote final : public Validator {
 public:
  explicit DistanceWeightedVote(double half_weight_distance = 150.0)
      : half_dist_(half_weight_distance) {}
  [[nodiscard]] const char* name() const override { return "dist_weighted"; }
  [[nodiscard]] TrustDecision evaluate(const EventCluster& c) const override;

 private:
  double half_dist_;
};

// Bayesian update from a 0.5 prior with per-witness sensor accuracy alpha:
// each positive claim multiplies the odds by alpha/(1-alpha), each negative
// divides (Raya et al.'s Bayesian-inference instantiation).
class BayesianInference final : public Validator {
 public:
  explicit BayesianInference(double sensor_accuracy = 0.8)
      : alpha_(sensor_accuracy) {}
  [[nodiscard]] const char* name() const override { return "bayesian"; }
  [[nodiscard]] TrustDecision evaluate(const EventCluster& c) const override;

 private:
  double alpha_;
};

// Sender-reputation baseline (the approach §III.D argues is insufficient):
// votes weighted by the reporter credential's reputation score.
class ReputationWeightedVote final : public Validator {
 public:
  explicit ReputationWeightedVote(const ReputationStore& store)
      : store_(store) {}
  [[nodiscard]] const char* name() const override { return "reputation"; }
  [[nodiscard]] TrustDecision evaluate(const EventCluster& c) const override;

 private:
  const ReputationStore& store_;
};

}  // namespace vcl::trust
