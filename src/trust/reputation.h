// Sender reputation store (baseline after Son et al. [35]).
//
// Scores live in [0,1], start at 0.5 (unknown), move up on confirmed-correct
// reports and down on confirmed-wrong ones. The paper's critique — which E10
// demonstrates — is that pseudonym rotation resets credentials faster than
// reputation can accumulate in an ephemeral network.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace vcl::trust {

class ReputationStore {
 public:
  explicit ReputationStore(double learning_rate = 0.2)
      : rate_(learning_rate) {}

  [[nodiscard]] double score(std::uint64_t credential) const;
  // Feedback after an event outcome became known.
  void record(std::uint64_t credential, bool was_correct);
  [[nodiscard]] std::size_t known_credentials() const {
    return scores_.size();
  }

 private:
  double rate_;
  std::unordered_map<std::uint64_t, double> scores_;
};

}  // namespace vcl::trust
