#include "trust/report.h"

namespace vcl::trust {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kAccident: return "accident";
    case EventType::kIce: return "ice";
    case EventType::kCongestion: return "congestion";
    case EventType::kRoadBlocked: return "road_blocked";
  }
  return "unknown";
}

}  // namespace vcl::trust
