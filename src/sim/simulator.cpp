#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

namespace vcl::sim {

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn,
                                   const char* label) {
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{std::max(at, now_), seq, label, std::move(fn)});
  high_water_ = std::max(high_water_, queue_.size());
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(SimTime delay, std::function<void()> fn,
                                      const char* label) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn), label);
}

EventHandle Simulator::schedule_every(SimTime period, std::function<void()> fn,
                                      SimTime first, const char* label) {
  const std::uint64_t rid = next_seq_++;  // identity of the recurrence
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  // The tick looks itself up in recurring_ rather than capturing itself:
  // cancellation is the map erase, and there is no ownership cycle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, rid, period, label, shared_fn]() {
    if (recurring_.find(rid) == recurring_.end()) return;  // cancelled
    (*shared_fn)();
    auto it = recurring_.find(rid);  // fn may have cancelled the recurrence
    if (it != recurring_.end()) schedule_after(period, *it->second, label);
  };
  recurring_[rid] = tick;
  const SimTime start = first >= 0.0 ? first : now_ + period;
  schedule_at(start, *tick, label);
  return EventHandle{rid};
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  // A recurring handle's rid never appears in the event queue (its ticks
  // carry their own seqs), so parking it in cancelled_ would leak the entry
  // forever; erasing the recurrence is both necessary and sufficient.
  if (recurring_.erase(h.seq_) > 0) return;
  cancelled_.insert(h.seq_);
}

bool Simulator::step(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().at > until) return false;
    Event ev = queue_.top();
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) != 0) {
      continue;  // skip cancelled event
    }
    now_ = ev.at;
    ++processed_;
    if (profiling_) {
      const auto start = std::chrono::steady_clock::now();
      ev.fn();
      const auto end = std::chrono::steady_clock::now();
      ProfileEntry& entry = profile_[ev.label];
      ++entry.events;
      entry.wall_seconds +=
          std::chrono::duration<double>(end - start).count();
    } else {
      ev.fn();
    }
    return true;
  }
  return false;
}

SimTime Simulator::run_until(SimTime until) {
  while (step(until)) {
  }
  now_ = std::max(now_, until);
  return now_;
}

std::vector<ProfileEntry> Simulator::profile() const {
  std::vector<ProfileEntry> out;
  out.reserve(profile_.size());
  for (const auto& [label, entry] : profile_) {
    ProfileEntry e = entry;
    e.label = label != nullptr ? label : "(unlabeled)";
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.wall_seconds != b.wall_seconds) {
                return a.wall_seconds > b.wall_seconds;
              }
              return a.label < b.label;
            });
  return out;
}

}  // namespace vcl::sim
