#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace vcl::sim {

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{std::max(at, now_), seq, std::move(fn)});
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

EventHandle Simulator::schedule_every(SimTime period, std::function<void()> fn,
                                      SimTime first) {
  const std::uint64_t rid = next_seq_++;  // identity of the recurrence
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  // The tick looks itself up in recurring_ rather than capturing itself:
  // cancellation is the map erase, and there is no ownership cycle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, rid, period, shared_fn]() {
    if (recurring_.find(rid) == recurring_.end()) return;  // cancelled
    (*shared_fn)();
    auto it = recurring_.find(rid);  // fn may have cancelled the recurrence
    if (it != recurring_.end()) schedule_after(period, *it->second);
  };
  recurring_[rid] = tick;
  const SimTime start = first >= 0.0 ? first : now_ + period;
  schedule_at(start, *tick);
  return EventHandle{rid};
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  cancelled_.insert(h.seq_);
  recurring_.erase(h.seq_);
}

bool Simulator::step(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().at > until) return false;
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq) != 0) continue;  // skip cancelled event
    now_ = ev.at;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime Simulator::run_until(SimTime until) {
  while (step(until)) {
  }
  now_ = std::max(now_, until);
  return now_;
}

}  // namespace vcl::sim
