// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events fire in (time, sequence) order, so
// two runs with the same seed produce identical traces. Components schedule
// closures; periodic activities (mobility steps, beacons) reschedule
// themselves through `schedule_every`.
//
// Profiling (DESIGN.md §6): schedule calls accept an optional static label
// ("net.beacon", "cloud.refresh"). With profiling enabled, run_until
// attributes wall-clock time and event counts to each label and tracks the
// queue-depth high-water mark, answering "which phase of this run burned
// the time". Profiling off (the default) costs one branch per event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace vcl::sim {

class Simulator;

// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

// Per-label kernel profile entry (see Simulator::enable_profiling).
struct ProfileEntry {
  std::string label;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Schedules `fn` at absolute time `at` (>= now, clamped otherwise).
  // `label` must point at storage outliving the simulator (a string
  // literal); it feeds the kernel profiler and is otherwise ignored.
  EventHandle schedule_at(SimTime at, std::function<void()> fn,
                          const char* label = nullptr);
  // Schedules `fn` after a relative delay (>= 0).
  EventHandle schedule_after(SimTime delay, std::function<void()> fn,
                             const char* label = nullptr);
  // Runs `fn` every `period` seconds, first firing after `period` (or at
  // `first` when given). Returns a handle to the recurring activity;
  // cancelling it stops the recurrence.
  EventHandle schedule_every(SimTime period, std::function<void()> fn,
                             SimTime first = -1.0,
                             const char* label = nullptr);

  // Cancels a pending event; cancelled events are skipped when popped.
  void cancel(EventHandle h);
  // One-shot cancellations not yet reaped from the queue (regression
  // surface for the cancel bookkeeping; recurring cancels never park here).
  [[nodiscard]] std::size_t pending_cancellations() const {
    return cancelled_.size();
  }

  // Runs until the queue drains or `until` is reached; returns final time.
  SimTime run_until(SimTime until);
  // Runs exactly one event if any is pending before `until`; returns whether
  // an event was run.
  bool step(SimTime until);

  // --- kernel profiling -------------------------------------------------------
  void enable_profiling(bool on) { profiling_ = on; }
  [[nodiscard]] bool profiling() const { return profiling_; }
  // Entries sorted by wall-clock descending; unlabeled events pool under
  // "(unlabeled)". Empty unless profiling ran.
  [[nodiscard]] std::vector<ProfileEntry> profile() const;
  // Largest queue size observed (tracked unconditionally; a cheap compare).
  [[nodiscard]] std::size_t queue_high_water() const { return high_water_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    const char* label;
    std::function<void()> fn;

    // Min-heap by (time, sequence): ties break in scheduling order.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  // Live recurring activities, keyed by their handle id. Owning the tick
  // closure here (instead of the closure owning itself) avoids a
  // shared_ptr cycle and makes cancellation free the activity immediately.
  std::unordered_map<std::uint64_t, std::shared_ptr<std::function<void()>>>
      recurring_;

  bool profiling_ = false;
  std::size_t high_water_ = 0;
  // Keyed by label pointer: labels are interned string literals, so pointer
  // identity is label identity and the hot path never hashes a string.
  std::unordered_map<const char*, ProfileEntry> profile_;
};

}  // namespace vcl::sim
