// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events fire in (time, sequence) order, so
// two runs with the same seed produce identical traces. Components schedule
// closures; periodic activities (mobility steps, beacons) reschedule
// themselves through `schedule_every`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace vcl::sim {

class Simulator;

// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Schedules `fn` at absolute time `at` (>= now, clamped otherwise).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);
  // Schedules `fn` after a relative delay (>= 0).
  EventHandle schedule_after(SimTime delay, std::function<void()> fn);
  // Runs `fn` every `period` seconds, first firing after `period` (or at
  // `first` when given). Returns a handle to the recurring activity;
  // cancelling it stops the recurrence.
  EventHandle schedule_every(SimTime period, std::function<void()> fn,
                             SimTime first = -1.0);

  // Cancels a pending event; cancelled events are skipped when popped.
  void cancel(EventHandle h);

  // Runs until the queue drains or `until` is reached; returns final time.
  SimTime run_until(SimTime until);
  // Runs exactly one event if any is pending before `until`; returns whether
  // an event was run.
  bool step(SimTime until);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;

    // Min-heap by (time, sequence): ties break in scheduling order.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  // Live recurring activities, keyed by their handle id. Owning the tick
  // closure here (instead of the closure owning itself) avoids a
  // shared_ptr cycle and makes cancellation free the activity immediately.
  std::unordered_map<std::uint64_t, std::shared_ptr<std::function<void()>>>
      recurring_;
};

}  // namespace vcl::sim
