#include "geo/road_network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace vcl::geo {

NodeId RoadNetwork::add_node(Vec2 pos) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(RoadNode{id, pos, {}, {}});
  return id;
}

LinkId RoadNetwork::add_link(NodeId from, NodeId to, double speed_limit,
                             int lanes) {
  assert(from.value() < nodes_.size() && to.value() < nodes_.size());
  const LinkId id{links_.size()};
  const double len = distance(nodes_[from.value()].pos, nodes_[to.value()].pos);
  links_.push_back(RoadLink{id, from, to, len, speed_limit, lanes});
  nodes_[from.value()].out_links.push_back(id);
  nodes_[to.value()].in_links.push_back(id);
  return id;
}

const RoadNode& RoadNetwork::node(NodeId id) const {
  return nodes_.at(id.value());
}

const RoadLink& RoadNetwork::link(LinkId id) const {
  return links_.at(id.value());
}

Vec2 RoadNetwork::position_on_link(LinkId id, double offset) const {
  const RoadLink& l = link(id);
  const Vec2 a = node(l.from).pos;
  const Vec2 b = node(l.to).pos;
  if (l.length <= 0.0) return a;
  const double t = std::clamp(offset / l.length, 0.0, 1.0);
  return a + (b - a) * t;
}

Vec2 RoadNetwork::link_direction(LinkId id) const {
  const RoadLink& l = link(id);
  return (node(l.to).pos - node(l.from).pos).normalized();
}

std::optional<std::vector<LinkId>> RoadNetwork::shortest_path(
    NodeId from, NodeId to) const {
  const std::size_t n = nodes_.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<LinkId> via(n);  // link used to reach each node
  using QE = std::pair<double, std::uint64_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[from.value()] = 0.0;
  pq.push({0.0, from.value()});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to.value()) break;
    for (const LinkId lid : nodes_[u].out_links) {
      const RoadLink& l = links_[lid.value()];
      const double cost = l.length / std::max(l.speed_limit, 0.1);
      const double nd = d + cost;
      if (nd < dist[l.to.value()]) {
        dist[l.to.value()] = nd;
        via[l.to.value()] = lid;
        pq.push({nd, l.to.value()});
      }
    }
  }
  if (!std::isfinite(dist[to.value()])) return std::nullopt;
  std::vector<LinkId> path;
  for (NodeId at = to; at != from;) {
    const LinkId lid = via[at.value()];
    path.push_back(lid);
    at = links_[lid.value()].from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::pair<Vec2, Vec2> RoadNetwork::bounding_box() const {
  if (nodes_.empty()) return {{}, {}};
  Vec2 lo = nodes_.front().pos;
  Vec2 hi = lo;
  for (const RoadNode& n : nodes_) {
    lo.x = std::min(lo.x, n.pos.x);
    lo.y = std::min(lo.y, n.pos.y);
    hi.x = std::max(hi.x, n.pos.x);
    hi.y = std::max(hi.y, n.pos.y);
  }
  return {lo, hi};
}

RoadNetwork make_manhattan_grid(int rows, int cols, double spacing,
                                double speed_limit) {
  RoadNetwork net;
  std::vector<std::vector<NodeId>> grid(rows, std::vector<NodeId>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      grid[r][c] = net.add_node({c * spacing, r * spacing});
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        net.add_link(grid[r][c], grid[r][c + 1], speed_limit);
        net.add_link(grid[r][c + 1], grid[r][c], speed_limit);
      }
      if (r + 1 < rows) {
        net.add_link(grid[r][c], grid[r + 1][c], speed_limit);
        net.add_link(grid[r + 1][c], grid[r][c], speed_limit);
      }
    }
  }
  return net;
}

RoadNetwork make_highway(double length, double segment, double speed_limit,
                         int lanes) {
  RoadNetwork net;
  const int n_nodes = std::max(2, static_cast<int>(length / segment) + 1);
  std::vector<NodeId> east(n_nodes), west(n_nodes);
  const double step = length / (n_nodes - 1);
  for (int i = 0; i < n_nodes; ++i) {
    east[i] = net.add_node({i * step, 0.0});
    west[i] = net.add_node({i * step, 30.0});  // opposite carriageway
  }
  for (int i = 0; i + 1 < n_nodes; ++i) {
    net.add_link(east[i], east[i + 1], speed_limit, lanes);
    net.add_link(west[i + 1], west[i], speed_limit, lanes);
  }
  // U-turns at the ends keep trips alive for long simulations.
  net.add_link(east[n_nodes - 1], west[n_nodes - 1], speed_limit / 3, 1);
  net.add_link(west[0], east[0], speed_limit / 3, 1);
  return net;
}

RoadNetwork make_parking_lot(int rows, int cols, double spacing) {
  RoadNetwork net = make_manhattan_grid(rows, cols, spacing, 4.0 /* ~14 km/h */);
  return net;
}

}  // namespace vcl::geo
