// Uniform spatial hash grid for neighbor queries.
//
// The radio channel asks "who is within R meters of position p" thousands of
// times per simulated second; this grid answers in O(items in nearby cells)
// instead of O(all vehicles).
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/vec2.h"

namespace vcl::geo {

template <typename Item>
class SpatialGrid {
 public:
  // `cell_size` should be close to the dominant query radius.
  explicit SpatialGrid(double cell_size) : cell_size_(cell_size) {}

  void clear() { cells_.clear(); }

  void insert(const Item& item, Vec2 pos) {
    cells_[key(pos)].push_back(Entry{item, pos});
  }

  // Collects all items within `radius` of `center` into `out` (cleared
  // first). Exact: candidate cells are range-checked.
  void query(Vec2 center, double radius, std::vector<Item>& out) const {
    out.clear();
    const double r2 = radius * radius;
    const auto [cx0, cy0] = cell_of({center.x - radius, center.y - radius});
    const auto [cx1, cy1] = cell_of({center.x + radius, center.y + radius});
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        auto it = cells_.find(pack(cx, cy));
        if (it == cells_.end()) continue;
        for (const Entry& e : it->second) {
          if (distance2(e.pos, center) <= r2) out.push_back(e.item);
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [k, v] : cells_) n += v.size();
    return n;
  }

 private:
  struct Entry {
    Item item;
    Vec2 pos;
  };

  [[nodiscard]] std::pair<std::int64_t, std::int64_t> cell_of(Vec2 p) const {
    return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
            static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
  }

  static std::uint64_t pack(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }

  [[nodiscard]] std::uint64_t key(Vec2 p) const {
    const auto [cx, cy] = cell_of(p);
    return pack(cx, cy);
  }

  double cell_size_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> cells_;
};

}  // namespace vcl::geo
