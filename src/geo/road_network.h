// Road network: a directed graph of intersections (nodes) and road links.
//
// Links are straight segments with a speed limit and lane count; vehicle
// positions are expressed as (link, longitudinal offset) and mapped to world
// coordinates for the radio model. Generators build the three environments
// used throughout the paper's scenarios: a Manhattan-style urban grid, a
// highway, and a parking lot (for stationary v-clouds).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geo/vec2.h"
#include "util/ids.h"

namespace vcl::geo {

struct RoadNode {
  NodeId id;
  Vec2 pos;
  std::vector<LinkId> out_links;
  std::vector<LinkId> in_links;
};

struct RoadLink {
  LinkId id;
  NodeId from;
  NodeId to;
  double length = 0.0;       // meters
  double speed_limit = 0.0;  // m/s
  int lanes = 1;
};

class RoadNetwork {
 public:
  NodeId add_node(Vec2 pos);
  LinkId add_link(NodeId from, NodeId to, double speed_limit, int lanes = 1);

  [[nodiscard]] const RoadNode& node(NodeId id) const;
  [[nodiscard]] const RoadLink& link(LinkId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::vector<RoadNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<RoadLink>& links() const { return links_; }

  // World position at longitudinal offset along a link (clamped to length).
  [[nodiscard]] Vec2 position_on_link(LinkId id, double offset) const;
  // Unit direction of travel on a link.
  [[nodiscard]] Vec2 link_direction(LinkId id) const;

  // Dijkstra shortest path (by travel time) from node `from` to node `to`;
  // returns the list of links, or nullopt when unreachable.
  [[nodiscard]] std::optional<std::vector<LinkId>> shortest_path(
      NodeId from, NodeId to) const;

  // Bounding box of all nodes; {0,0},{0,0} when empty.
  [[nodiscard]] std::pair<Vec2, Vec2> bounding_box() const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadLink> links_;
};

// ---- Generators -----------------------------------------------------------

// rows x cols intersections, `spacing` meters apart, bidirectional streets.
RoadNetwork make_manhattan_grid(int rows, int cols, double spacing,
                                double speed_limit = 13.9 /* 50 km/h */);

// Straight bidirectional highway of `length` meters with intermediate nodes
// every `segment` meters (vehicles can enter/exit at any node).
RoadNetwork make_highway(double length, double segment = 500.0,
                         double speed_limit = 33.3 /* 120 km/h */, int lanes = 3);

// Parking lot: `rows` aisles of `cols` stalls; all links very slow. Used for
// stationary v-clouds (vehicles mostly parked).
RoadNetwork make_parking_lot(int rows, int cols, double spacing = 20.0);

}  // namespace vcl::geo
