// Minimal 2-D vector for positions (meters) and velocities (m/s).
#pragma once

#include <cmath>

namespace vcl::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }

  // Unit vector; returns {0,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

// Angle between two direction vectors in radians, in [0, pi].
inline double angle_between(Vec2 a, Vec2 b) {
  const double na = a.norm();
  const double nb = b.norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = a.dot(b) / (na * nb);
  c = c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c);
  return std::acos(c);
}

}  // namespace vcl::geo
