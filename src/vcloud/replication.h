// File replication for availability (paper §III.A: "how many copies of a
// shared file should be distributed in the v-cloud so that other vehicles
// can keep accessing this file even if many vehicles are offline").
//
// Files are chunked and Merkle-rooted (readers verify integrity against the
// owner-published root); the manager keeps `target_replicas` copies on live
// members, re-replicating when churn kills holders. E9 sweeps the target
// against churn to reproduce the availability/overhead trade-off.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "crypto/merkle.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/stats.h"

namespace vcl::vcloud {

struct ReplicationConfig {
  std::size_t target_replicas = 3;
  double chunk_mb = 0.25;  // Merkle leaf granularity
};

struct StoredFile {
  FileId id;
  double size_mb = 0.0;
  crypto::Digest merkle_root{};
  std::vector<std::uint64_t> holders;  // vehicle ids (may include dead ones)
};

class ReplicationManager {
 public:
  using MembershipFn = std::function<std::vector<VehicleId>()>;

  ReplicationManager(MembershipFn membership, ReplicationConfig config,
                     Rng rng)
      : membership_(std::move(membership)), config_(config), rng_(rng) {}

  // Stores a file: computes the Merkle root over `payload` chunks and places
  // `target_replicas` copies on distinct live members (fewer if the cloud is
  // small). Returns the file id.
  FileId store(const crypto::Bytes& payload);

  // Re-replication pass: prune dead holders, copy to new members up to the
  // target. Call once per maintenance round.
  void refresh();

  // A file is available when at least one live member holds it.
  [[nodiscard]] bool available(FileId id) const;
  [[nodiscard]] std::size_t live_replicas(FileId id) const;
  [[nodiscard]] const StoredFile* find(FileId id) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  // Maintenance overhead accounting.
  [[nodiscard]] std::size_t repair_copies() const { return repair_copies_; }
  [[nodiscard]] double bytes_copied_mb() const { return mb_copied_; }

 private:
  [[nodiscard]] std::vector<std::uint64_t> live_members() const;

  MembershipFn membership_;
  ReplicationConfig config_;
  Rng rng_;
  std::unordered_map<std::uint64_t, StoredFile> files_;
  std::uint64_t next_file_id_ = 1;
  std::size_t repair_copies_ = 0;
  double mb_copied_ = 0.0;
};

}  // namespace vcl::vcloud
