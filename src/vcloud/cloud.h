// VehicularCloud: the operational unit pooling member vehicles' resources
// and running tasks on them (paper §II.C / §IV.A.2 / Fig. 4).
//
// One class serves all three architectures; what differs is where members
// come from (a MembershipFn) and what region anchors dwell estimates (a
// RegionFn). Factories for the three Fig. 4 types live at the bottom.
//
// Execution model: a worker runs one task at a time. Dispatch charges the
// input transfer, then the task runs at the worker's compute rate; a
// departing worker interrupts its task, which is either migrated (encrypted
// checkpoint, see handover.h) or re-queued from zero with the lost progress
// counted as wasted work — the exact trade-off §III.A calls out.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/network.h"
#include "util/stats.h"
#include "vcloud/broker.h"
#include "vcloud/dwell.h"
#include "vcloud/handover.h"
#include "vcloud/scheduler.h"

namespace vcl::cluster {
class ClusterManager;
}

namespace vcl::vcloud {

struct CloudRegion {
  geo::Vec2 center;
  double radius = 0.0;  // 0 = cloud currently has no operating area
};

struct CloudStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;      // lost with no recovery path
  std::size_t expired = 0;     // missed deadline
  std::size_t migrations = 0;
  std::size_t reallocations = 0;  // re-queued from zero after a departure
  double wasted_work = 0.0;       // work units thrown away
  Accumulator latency;            // completion - creation, seconds
  Accumulator queue_delay;        // dispatch - creation, seconds
};

struct CloudConfig {
  DwellMode dwell_mode = DwellMode::kKinematic;
  HandoverConfig handover;
  crypto::CostModel costs;
  SimTime refresh_period = 1.0;
};

class VehicularCloud {
 public:
  using MembershipFn = std::function<std::vector<VehicleId>()>;
  using RegionFn = std::function<CloudRegion()>;

  VehicularCloud(CloudId id, net::Network& net, MembershipFn membership,
                 RegionFn region, std::unique_ptr<Scheduler> scheduler,
                 CloudConfig config, Rng rng);

  // Schedules the periodic refresh.
  void attach();
  // Re-reads membership, handles departures/arrivals, re-elects the broker,
  // expires stale tasks and dispatches the queue. Public for tests.
  void refresh();

  // Submits a task spec; returns its assigned id.
  TaskId submit(Task spec);

  // Invoked when a task completes successfully (after state/stat updates);
  // the incentive ledger and aggregation layers hook in here.
  using CompletionHook = std::function<void(const Task&)>;
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  [[nodiscard]] const CloudStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t member_count() const { return workers_.size(); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] ResourcePool pool() const;
  [[nodiscard]] VehicleId broker() const { return broker_.current(); }
  [[nodiscard]] std::size_t broker_changes() const {
    return broker_.changes();
  }
  [[nodiscard]] const Task* find_task(TaskId id) const;
  [[nodiscard]] CloudRegion region() const { return region_fn_(); }
  [[nodiscard]] CloudId id() const { return id_; }

  // True when every submitted task reached a terminal state.
  [[nodiscard]] bool drained() const;

 private:
  struct WorkerState {
    ResourceProfile profile;
    TaskId running;  // invalid when idle
  };

  void dispatch();
  void assign(Task& task, WorkerState& worker, VehicleId worker_id,
              bool charge_input);
  void on_complete(TaskId id, std::uint64_t epoch);
  void interrupt_and_recover(Task& task, const WorkerState& departed);
  [[nodiscard]] std::vector<WorkerView> views();
  [[nodiscard]] double dwell_of(VehicleId v);

  CloudId id_;
  net::Network& net_;
  MembershipFn membership_fn_;
  RegionFn region_fn_;
  std::unique_ptr<Scheduler> scheduler_;
  CloudConfig config_;
  Rng rng_;
  BrokerElection broker_;

  std::unordered_map<std::uint64_t, WorkerState> workers_;
  std::unordered_map<std::uint64_t, Task> tasks_;
  std::unordered_map<std::uint64_t, std::uint64_t> task_epoch_;
  std::deque<TaskId> pending_;
  std::uint64_t next_task_id_ = 1;
  CloudStats stats_;
  CompletionHook completion_hook_;
};

// ---- Fig. 4 architecture factories ------------------------------------------

// (a) Stationary: parked vehicles inside a fixed disc (airport lot, garage).
VehicularCloud::MembershipFn stationary_membership(
    const mobility::TrafficModel& traffic, geo::Vec2 center, double radius);
VehicularCloud::RegionFn fixed_region(geo::Vec2 center, double radius);

// (b) Infrastructure-based: vehicles under an RSU's (online) coverage.
VehicularCloud::MembershipFn rsu_membership(const net::Network& net, RsuId rsu);
VehicularCloud::RegionFn rsu_region(const net::Network& net, RsuId rsu);

// (c) Dynamic: the largest V2V cluster, wherever it drives.
VehicularCloud::MembershipFn largest_cluster_membership(
    const cluster::ClusterManager& manager);
VehicularCloud::RegionFn members_centroid_region(
    const mobility::TrafficModel& traffic,
    VehicularCloud::MembershipFn membership, double radius);

}  // namespace vcl::vcloud
