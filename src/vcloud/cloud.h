// VehicularCloud: the operational unit pooling member vehicles' resources
// and running tasks on them (paper §II.C / §IV.A.2 / Fig. 4).
//
// One class serves all three architectures; what differs is where members
// come from (a MembershipFn) and what region anchors dwell estimates (a
// RegionFn). Factories for the three Fig. 4 types live at the bottom.
//
// Execution model: a worker runs one task at a time. Dispatch charges the
// input transfer, then the task runs at the worker's compute rate; a
// departing worker interrupts its task, which is either migrated (encrypted
// checkpoint, see handover.h) or re-queued from zero with the lost progress
// counted as wasted work — the exact trade-off §III.A calls out.
//
// Failure model (paper §III dependability): on top of *graceful* departures
// the cloud survives abrupt *crashes* injected via crash_worker() — the
// worker vanishes with no handover opportunity and the cloud only learns
// through missed heartbeats. The hardened path (all knobs in
// CloudConfig::dependability, default off) adds a heartbeat failure
// detector, ack+retry dispatch/result delivery over the lossy network,
// periodic crash-survivable checkpoints, and speculative replica execution
// for deadline-bearing tasks. See dependability.h.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/network.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/quantile_sketch.h"
#include "util/stats.h"
#include "vcloud/broker.h"
#include "vcloud/dependability.h"
#include "vcloud/dwell.h"
#include "vcloud/handover.h"
#include "vcloud/scheduler.h"

namespace vcl::cluster {
class ClusterManager;
}

namespace vcl::vcloud {

class AdmissionControl;
class InvariantOracle;

struct CloudRegion {
  geo::Vec2 center;
  double radius = 0.0;  // 0 = cloud currently has no operating area
};

struct CloudStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;      // lost with no recovery path
  std::size_t expired = 0;     // missed deadline
  std::size_t migrations = 0;
  std::size_t reallocations = 0;  // re-queued from zero after a departure
  double wasted_work = 0.0;       // work units thrown away
  // Moments stream without sample retention; the paired sketches answer
  // percentile queries in fixed memory, so the stats survive 10⁶-task runs
  // (the old retaining Accumulators grew one double per task).
  Accumulator latency{/*keep_samples=*/false};      // completion - creation, s
  Accumulator queue_delay{/*keep_samples=*/false};  // dispatch - creation, s
  QuantileSketch latency_tail;      // tail quantiles of `latency`
  QuantileSketch queue_delay_tail;  // tail quantiles of `queue_delay`
  // Modeled broker<->worker heartbeat round trip (2x channel hop delay at
  // the beat's size and local density). Fed only while metrics telemetry is
  // registered: the density lookup is a spatial query we refuse to pay on
  // undisturbed runs.
  QuantileSketch heartbeat_rtt_tail;

  // Dependability counters (see dependability.h; all zero when the
  // hardened path is disabled).
  std::size_t retries = 0;           // dispatch/result re-sends after a loss
  std::size_t crash_kills = 0;       // declared-dead workers that had crashed
  std::size_t false_positive_kills = 0;  // live workers declared dead
  std::size_t checkpoints = 0;           // periodic snapshots taken
  std::size_t replicas_launched = 0;     // speculative replicas started
  std::size_t broker_resyncs = 0;        // broker changes re-syncing metadata
  double redundant_work = 0.0;     // discarded work of losing replicas
  double checkpoint_mb = 0.0;      // checkpoint bytes shipped to the broker
  Accumulator detection_latency;   // crash -> declared dead, seconds

  [[nodiscard]] double completion_rate() const {
    return submitted ? static_cast<double>(completed) /
                           static_cast<double>(submitted)
                     : 0.0;
  }
  // Uniform reporting for benches/examples: a one-line summary and a
  // Table-compatible row (paired with table_columns()).
  [[nodiscard]] std::string to_string() const;
  static std::vector<std::string> table_columns();
  [[nodiscard]] std::vector<std::string> table_row() const;
};

struct CloudConfig {
  DwellMode dwell_mode = DwellMode::kKinematic;
  HandoverConfig handover;
  crypto::CostModel costs;
  SimTime refresh_period = 1.0;
  DependabilityConfig dependability;
};

class VehicularCloud {
 public:
  using MembershipFn = std::function<std::vector<VehicleId>()>;
  using RegionFn = std::function<CloudRegion()>;

  VehicularCloud(CloudId id, net::Network& net, MembershipFn membership,
                 RegionFn region, std::unique_ptr<Scheduler> scheduler,
                 CloudConfig config, Rng rng);

  // Schedules the periodic refresh (and, when enabled, the heartbeat and
  // checkpoint rounds).
  void attach();
  // Re-reads membership, handles departures/arrivals, re-elects the broker,
  // expires stale tasks and dispatches the queue. Public for tests.
  void refresh();

  // Submits a task spec; returns its assigned id.
  TaskId submit(Task spec);

  // Abrupt crash fault (fault injection): the worker vanishes mid-task with
  // no handover opportunity. The cloud is NOT notified — it keeps the
  // zombie on its books until the failure detector declares it dead (or
  // forever, when the detector is off: the no-recovery collapse §III warns
  // about). The injector despawns the vehicle from traffic separately.
  void crash_worker(VehicleId v);
  [[nodiscard]] bool worker_crashed(VehicleId v) const {
    return crashed_.count(v.value()) > 0;
  }

  // Invoked when a task completes successfully (after state/stat updates);
  // the incentive ledger and aggregation layers hook in here.
  using CompletionHook = std::function<void(const Task&)>;
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  // Invoked whenever the broker hears a worker's heartbeat (including its
  // own trivial self-beat). The storage layer renews replica leases here —
  // lease liveness rides the existing heartbeat path rather than adding a
  // second beacon. Unset = one branch per beat (inertness contract).
  using HeartbeatHook = std::function<void(VehicleId, SimTime)>;
  void set_heartbeat_hook(HeartbeatHook hook) {
    heartbeat_hook_ = std::move(hook);
  }

  // Invoked at the end of every refresh(), after membership/broker/deadline
  // handling and dispatch but BEFORE the invariant oracle's end-of-round
  // scan — maintenance that must quiesce before the scan (storage lease
  // bookkeeping and repair) runs here. Unset = one branch per refresh.
  using RefreshHook = std::function<void(SimTime)>;
  void set_refresh_hook(RefreshHook hook) { refresh_hook_ = std::move(hook); }

  // Invoked on EVERY task terminal transition (completed, expired, failed),
  // after state/stat updates and the oracle's terminal hook. The DAG
  // scheduler routes attempt terminals back to their graph node here. The
  // hook may submit follow-up tasks (which rehashes the task table), so it
  // is always the last use of the terminal task's reference and is never
  // fired while the cloud iterates its task structures. Unset = one branch
  // per terminal (inertness contract).
  using TerminalHook = std::function<void(const Task&, SimTime)>;
  void set_terminal_hook(TerminalHook hook) {
    terminal_hook_ = std::move(hook);
  }

  // --- telemetry (off by default: null recorder = one branch per event) -------
  // Emits cloud.* / task.* trace events (membership churn, broker changes,
  // dispatch/complete/retry, failure-detector kills).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  // Registers cloud.* gauges (member count, queue depth, completion,
  // detection latency) and the tail sketches (task e2e, queue delay,
  // heartbeat RTT) with the sampler; also arms the per-beat heartbeat-RTT
  // sampling, which stays off until metrics are registered.
  void register_metrics(obs::MetricsRegistry& metrics);

  // --- flight recorder (always-on forensics, DESIGN.md §12) ------------------
  // Unlike set_trace this is wired unconditionally by the system facade:
  // the recorder is fixed-memory and RNG-neutral, so it stays on even when
  // telemetry is off. Null (bare unit-test clouds) = one branch per event.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  // --- invariant oracle (off by default: null oracle = one branch per hook) --
  // When set, the oracle's full scan runs at the end of every refresh() and
  // its terminal hook fires on every task terminal transition. The oracle
  // only reads through const accessors; runs are otherwise unchanged.
  void set_oracle(InvariantOracle* oracle) { oracle_ = oracle; }

  // --- adversarial admission (off by default: null = one branch per hook) ----
  // When set, refresh() consults the revocation-aware admission policy
  // (see admission.h): arrivals of revoked-visible identities are refused,
  // revoked members are evicted at the first refresh after their CRL
  // becomes visible — held work re-queued, not lost — and join claims
  // outside the beacon path go through offer_join(). The control is owned
  // by the system wiring; the cloud only consults it.
  void set_admission(AdmissionControl* admission) { admission_ = admission; }
  [[nodiscard]] const AdmissionControl* admission() const {
    return admission_;
  }

  // A join claim arriving OUTSIDE the beacon membership path (fabricated
  // sybil identity, or a replayed join that survived the freshness gate).
  // With no admission control — or the defense off — the claim is admitted
  // as a full member: the membership pollution the E24 bench measures.
  // Returns true when the claim became a member.
  bool offer_join(VehicleId v, bool fabricated);
  // A replayed heartbeat that passed (or bypassed) the freshness gate:
  // refreshes the victim's detector liveness exactly like a genuine beat —
  // which is the §IV replay harm: it keeps a crashed zombie off the
  // failure detector's books.
  void replayed_heartbeat(VehicleId v);

  // True when `v` currently exists in the traffic model. The oracle's
  // membership census distinguishes traffic-backed members from crashed
  // zombies and admitted claims.
  [[nodiscard]] bool worker_in_traffic(VehicleId v) const;

  // Read-only introspection for the invariant oracle (and tests).
  void for_each_task(const std::function<void(const Task&)>& fn) const;
  [[nodiscard]] std::vector<TaskId> pending_ids() const;
  // Task occupying `v`'s execution slot (invalid when idle or unknown).
  [[nodiscard]] TaskId running_on(VehicleId v) const;
  [[nodiscard]] bool is_worker(VehicleId v) const {
    return workers_.find(v.value()) != workers_.end();
  }
  [[nodiscard]] bool has_replica(TaskId id) const {
    return replicas_.find(id.value()) != replicas_.end();
  }
  [[nodiscard]] const FailureDetector& detector() const { return detector_; }

  [[nodiscard]] const CloudStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t member_count() const { return workers_.size(); }
  // Current worker ids, sorted (includes crashed zombies the cloud has not
  // detected yet). Fault injection picks victims from this pool.
  [[nodiscard]] std::vector<VehicleId> worker_ids() const;
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] ResourcePool pool() const;
  [[nodiscard]] VehicleId broker() const { return broker_.current(); }
  [[nodiscard]] std::size_t broker_changes() const {
    return broker_.changes();
  }
  [[nodiscard]] const Task* find_task(TaskId id) const;
  [[nodiscard]] CloudRegion region() const { return region_fn_(); }
  [[nodiscard]] CloudId id() const { return id_; }
  // Compute profile of a current member (nullptr when not a member).
  [[nodiscard]] const ResourceProfile* worker_profile(VehicleId v) const;
  // Estimated dwell of `v` in the cloud's current region, under the
  // configured DwellMode: +inf for parked vehicles, 0 for departed or
  // despawned (crashed) ones. The DAG replication policy predicts host
  // departure with this.
  [[nodiscard]] double worker_dwell(VehicleId v) { return dwell_of(v); }

  // True when every submitted task reached a terminal state.
  [[nodiscard]] bool drained() const;

 private:
  struct WorkerState {
    ResourceProfile profile;
    TaskId running;  // invalid when idle
  };
  // A speculative second execution of a task (first finisher wins).
  struct ReplicaState {
    VehicleId worker;
    SimTime run_started = 0.0;
    double base_progress = 0.0;  // task progress at replica launch
    std::uint64_t epoch = 0;
  };

  void dispatch();
  void assign(Task& task, WorkerState& worker, VehicleId worker_id,
              bool charge_input);
  void begin_execution(Task& task, WorkerState& worker, bool charge_input,
                       std::uint64_t epoch);
  void attempt_dispatch_send(TaskId id, std::uint64_t epoch, int attempt);
  void attempt_result_send(TaskId id, std::uint64_t epoch, int attempt);
  void on_complete(TaskId id, std::uint64_t epoch);
  void finalize_completion(Task& task);
  void interrupt_and_recover(Task& task, const WorkerState& departed);
  // Crash path: roll back to the last broker-held checkpoint and re-queue.
  void recover_from_crash(Task& task);
  void heartbeat_round();
  void checkpoint_round();
  void declare_dead(VehicleId v);
  // Shared cleanup when a worker is lost abruptly (declared dead) or
  // departs while holding a replica.
  void handle_worker_loss(VehicleId v, const WorkerState& state);
  void maybe_replicate(Task& task);
  void on_replica_complete(TaskId id, std::uint64_t epoch);
  // Aborts a live replica (loser / deadline abort); counts its work as
  // redundancy and frees its worker.
  void abort_replica(TaskId id);
  [[nodiscard]] double earned_progress(const Task& task,
                                       const ResourceProfile& profile,
                                       SimTime now) const;
  [[nodiscard]] static double earned_by_replica(const ReplicaState& r,
                                                const ResourceProfile& profile,
                                                const Task& task, SimTime now);
  [[nodiscard]] std::vector<WorkerView> views();
  [[nodiscard]] std::vector<std::uint64_t> sorted_worker_ids() const;
  [[nodiscard]] double dwell_of(VehicleId v);

  // --- causal span tracing (all no-ops when tracing is off) ------------------
  // Allocates the task's trace id, opens its root span and the first queue
  // leg. The cloud keeps exactly one `leg.*` span open per live task;
  // open_leg closes the previous leg at the same instant, so the legs
  // partition [submit, terminal] and vcl_traceview's breakdown sums to the
  // end-to-end latency by construction.
  void trace_task_start(Task& task);
  void trace_open_leg(
      Task& task, const char* name,
      std::initializer_list<obs::TraceRecorder::Field> fields = {});
  void trace_close_leg(
      Task& task,
      std::initializer_list<obs::TraceRecorder::Field> fields = {});
  // Closes the open leg and the root span with an outcome code
  // (obs::kOutcomeCompleted / kOutcomeExpired / kOutcomeFailed).
  void trace_task_end(Task& task, double outcome);

  CloudId id_;
  net::Network& net_;
  MembershipFn membership_fn_;
  RegionFn region_fn_;
  std::unique_ptr<Scheduler> scheduler_;
  CloudConfig config_;
  Rng rng_;
  BrokerElection broker_;

  std::unordered_map<std::uint64_t, WorkerState> workers_;
  std::unordered_map<std::uint64_t, Task> tasks_;
  std::unordered_map<std::uint64_t, std::uint64_t> task_epoch_;
  std::unordered_map<std::uint64_t, ReplicaState> replicas_;
  std::deque<TaskId> pending_;
  std::uint64_t next_task_id_ = 1;
  std::uint64_t next_replica_epoch_ = 1;
  CloudStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  // Armed by register_metrics(): per-beat RTT sampling costs a density
  // lookup, so undisturbed runs never pay it (telemetry inertness).
  bool heartbeat_rtt_enabled_ = false;
  InvariantOracle* oracle_ = nullptr;
  AdmissionControl* admission_ = nullptr;
  CompletionHook completion_hook_;
  HeartbeatHook heartbeat_hook_;
  RefreshHook refresh_hook_;
  TerminalHook terminal_hook_;

  FailureDetector detector_;
  // Workers that crashed but have not been declared dead yet (zombies), and
  // when they crashed (for detection-latency accounting).
  std::unordered_set<std::uint64_t> crashed_;
  std::unordered_map<std::uint64_t, SimTime> crash_time_;
  SimTime dispatch_hold_until_ = 0.0;  // broker re-sync window
};

// ---- Fig. 4 architecture factories ------------------------------------------

// (a) Stationary: parked vehicles inside a fixed disc (airport lot, garage).
VehicularCloud::MembershipFn stationary_membership(
    const mobility::TrafficModel& traffic, geo::Vec2 center, double radius);
VehicularCloud::RegionFn fixed_region(geo::Vec2 center, double radius);

// (b) Infrastructure-based: vehicles under an RSU's (online) coverage.
VehicularCloud::MembershipFn rsu_membership(const net::Network& net, RsuId rsu);
VehicularCloud::RegionFn rsu_region(const net::Network& net, RsuId rsu);

// (c) Dynamic: the largest V2V cluster, wherever it drives.
VehicularCloud::MembershipFn largest_cluster_membership(
    const cluster::ClusterManager& manager);
VehicularCloud::RegionFn members_centroid_region(
    const mobility::TrafficModel& traffic,
    VehicularCloud::MembershipFn membership, double radius);

}  // namespace vcl::vcloud
