#include "vcloud/broker.h"

#include <algorithm>

namespace vcl::vcloud {

double BrokerElection::score(const WorkerView& w) const {
  return w.profile.compute * std::min(w.dwell_seconds, config_.dwell_cap);
}

VehicleId BrokerElection::elect(const std::vector<WorkerView>& members) {
  const WorkerView* best = nullptr;
  const WorkerView* incumbent = nullptr;
  for (const WorkerView& w : members) {
    if (w.id == current_) incumbent = &w;
    if (best == nullptr || score(w) > score(*best)) best = &w;
  }
  if (best == nullptr) {
    if (current_.valid()) ++changes_;
    current_ = VehicleId{};
    return current_;
  }
  if (incumbent != nullptr &&
      score(*best) < score(*incumbent) * config_.hysteresis) {
    return current_;  // incumbent survives the challenge
  }
  if (!(best->id == current_)) {
    if (current_.valid()) ++changes_;  // first election is not a "change"
    current_ = best->id;
  }
  return current_;
}

}  // namespace vcl::vcloud
