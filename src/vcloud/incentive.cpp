#include "vcloud/incentive.h"

namespace vcl::vcloud {

double& IncentiveLedger::account(std::uint64_t id) {
  return balances_.try_emplace(id, config_.initial_credit).first->second;
}

double IncentiveLedger::balance(std::uint64_t id) const {
  auto it = balances_.find(id);
  return it == balances_.end() ? config_.initial_credit : it->second;
}

bool IncentiveLedger::can_afford(std::uint64_t id, double work) const {
  return balance(id) >= work * config_.price_per_work;
}

bool IncentiveLedger::charge(std::uint64_t id, double work) {
  double& bal = account(id);
  const double cost = work * config_.price_per_work;
  if (bal < cost) {
    ++throttled_;
    return false;
  }
  bal -= cost;
  return true;
}

void IncentiveLedger::reward(std::uint64_t id, double work) {
  account(id) += work * config_.earn_per_work;
}

void IncentiveLedger::refund(std::uint64_t id, double work) {
  account(id) += work * config_.price_per_work;
}

}  // namespace vcl::vcloud
