#include "vcloud/invariant_oracle.h"

#include <algorithm>
#include <sstream>

#include "vcloud/cloud.h"

namespace vcl::vcloud {

std::string InvariantViolation::to_string() const {
  std::ostringstream os;
  os << "[" << invariant << "] t=" << at;
  if (task.valid()) os << " task=" << task.value();
  os << " seed=" << seed << ": " << detail;
  return os.str();
}

void InvariantOracle::report(const std::string& invariant,
                             const std::string& detail, SimTime at,
                             TaskId task) {
  ++violation_count_;
  if (violations_.size() >= kMaxStored) return;
  InvariantViolation v;
  v.invariant = invariant;
  v.detail = detail;
  v.at = at;
  v.task = task;
  v.seed = seed_;
  violations_.push_back(std::move(v));
}

void InvariantOracle::on_terminal(const Task& task, SimTime now) {
  if (!task.terminal()) {
    report("terminal-once",
           std::string("terminal hook fired in non-terminal state ") +
               vcloud::to_string(task.state),
           now, task.id);
    return;
  }
  const auto [it, inserted] =
      terminal_state_.emplace(task.id.value(), task.state);
  if (!inserted) {
    report("terminal-once",
           std::string("second terminal transition: was ") +
               vcloud::to_string(it->second) + ", now " +
               vcloud::to_string(task.state),
           now, task.id);
  }
}

void InvariantOracle::check(const VehicularCloud& cloud, SimTime now) {
  ++checks_run_;

  // Dispatch-queue multiplicity per task id. Entries referencing terminal
  // tasks are legal (the queue reaps them lazily); dangling ids are not.
  std::unordered_map<std::uint64_t, std::size_t> queued;
  for (const TaskId id : cloud.pending_ids()) ++queued[id.value()];
  for (const auto& [tid, n] : queued) {
    if (cloud.find_task(TaskId{tid}) == nullptr) {
      report("task-conservation", "queue entry references unknown task", now,
             TaskId{tid});
    }
  }

  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t expired = 0;
  std::size_t failed = 0;
  cloud.for_each_task([&](const Task& task) {
    ++total;
    const std::uint64_t tid = task.id.value();

    switch (task.state) {
      case TaskState::kCompleted: ++completed; break;
      case TaskState::kExpired: ++expired; break;
      case TaskState::kFailed: ++failed; break;

      case TaskState::kPending:
      case TaskState::kCrashRecovering: {
        // Queued states must sit in the dispatch queue exactly once or the
        // task is lost (never dispatched again) / runs twice.
        const auto it = queued.find(tid);
        const std::size_t n = it == queued.end() ? 0 : it->second;
        if (n != 1) {
          std::ostringstream os;
          os << vcloud::to_string(task.state) << " task queued " << n
             << " times (want exactly 1)";
          report("task-conservation", os.str(), now, task.id);
        }
        break;
      }

      case TaskState::kRunning: {
        if (task.worker.valid()) {
          if (!cloud.is_worker(task.worker)) {
            report("task-conservation",
                   "running on a worker the cloud no longer has", now,
                   task.id);
          } else if (!(cloud.running_on(task.worker) == task.id)) {
            report("task-conservation",
                   "running worker's slot holds a different task", now,
                   task.id);
          }
        } else if (!cloud.has_replica(task.id)) {
          // An invalid worker is legal only while a speculative replica
          // still carries the task (replica-inherit after a primary loss).
          report("task-conservation",
                 "running with no worker and no replica (orphaned)", now,
                 task.id);
        }
        break;
      }

      case TaskState::kMigrating: {
        if (!task.worker.valid() || !cloud.is_worker(task.worker) ||
            !(cloud.running_on(task.worker) == task.id)) {
          report("task-conservation",
                 "migrating without a reserved target worker", now, task.id);
        }
        break;
      }
    }

    // terminal-once, scan half: a recorded terminal state may never mutate,
    // and a terminal task the hook never saw means a transition bypassed it.
    const auto term = terminal_state_.find(tid);
    if (term != terminal_state_.end()) {
      if (task.state != term->second) {
        report("terminal-once",
               std::string("terminal state mutated: recorded ") +
                   vcloud::to_string(term->second) + ", now " +
                   vcloud::to_string(task.state),
               now, task.id);
      }
    } else if (task.terminal()) {
      report("terminal-once", "terminal task never reported via hook", now,
             task.id);
    }

    // checkpoint-monotonicity: the crash-survivable floor never regresses
    // and stays within [0, work].
    constexpr double kEps = 1e-9;
    if (task.checkpoint_progress < -kEps ||
        task.checkpoint_progress > task.work + kEps) {
      std::ostringstream os;
      os << "checkpoint " << task.checkpoint_progress << " outside [0, "
         << task.work << "]";
      report("checkpoint-monotonicity", os.str(), now, task.id);
    }
    auto [floor_it, inserted] =
        checkpoint_floor_.emplace(tid, task.checkpoint_progress);
    if (!inserted) {
      if (task.checkpoint_progress < floor_it->second - kEps) {
        std::ostringstream os;
        os << "checkpoint regressed " << floor_it->second << " -> "
           << task.checkpoint_progress;
        report("checkpoint-monotonicity", os.str(), now, task.id);
      }
      floor_it->second = std::max(floor_it->second, task.checkpoint_progress);
    }
  });

  // stats-consistency: counters must equal the census. (completed/expired/
  // failed are mutually exclusive terminal states, so equality per counter
  // also rules out double-counting.)
  const CloudStats& stats = cloud.stats();
  const auto check_counter = [&](const char* name, std::size_t counter,
                                 std::size_t census) {
    if (counter != census) {
      std::ostringstream os;
      os << "stats." << name << "=" << counter << " but census says "
         << census;
      report("stats-consistency", os.str(), now);
    }
  };
  check_counter("submitted", stats.submitted, total);
  check_counter("completed", stats.completed, completed);
  check_counter("expired", stats.expired, expired);
  check_counter("failed", stats.failed, failed);

  // broker-uniqueness: at refresh end the broker is one of the current
  // workers, and a non-empty cloud always has one.
  const VehicleId broker = cloud.broker();
  if (broker.valid() && !cloud.is_worker(broker)) {
    std::ostringstream os;
    os << "broker " << broker.value() << " is not a current member";
    report("broker-uniqueness", os.str(), now);
  }
  if (!broker.valid() && cloud.member_count() > 0) {
    report("broker-uniqueness", "members present but no broker elected", now);
  }

  // detector-subset: tracked ⊆ workers. The reverse (workers the detector
  // has not picked up yet) is legal between a join and the next heartbeat
  // round.
  for (const VehicleId v : cloud.detector().tracked_ids()) {
    if (!cloud.is_worker(v)) {
      std::ostringstream os;
      os << "detector tracks " << v.value() << " which is not a worker";
      report("detector-subset", os.str(), now);
    }
  }
}

}  // namespace vcl::vcloud
