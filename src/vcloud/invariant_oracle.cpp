#include "vcloud/invariant_oracle.h"

#include <algorithm>
#include <sstream>

#include "vcloud/admission.h"
#include "vcloud/cloud.h"

namespace vcl::vcloud {

std::string InvariantViolation::to_string() const {
  std::ostringstream os;
  os << "[" << invariant << "] t=" << at;
  if (task.valid()) os << " task=" << task.value();
  os << " seed=" << seed << ": " << detail;
  return os.str();
}

void InvariantOracle::report(const std::string& invariant,
                             const std::string& detail, SimTime at,
                             TaskId task) {
  ++violation_count_;
  InvariantViolation v;
  v.invariant = invariant;
  v.detail = detail;
  v.at = at;
  v.task = task;
  v.seed = seed_;
  // The hook sees EVERY violation (the incident capture keys off the
  // first); storage below caps at kMaxStored.
  if (violation_hook_) violation_hook_(v);
  if (violations_.size() >= kMaxStored) return;
  violations_.push_back(std::move(v));
}

void InvariantOracle::on_terminal(const Task& task, SimTime now) {
  if (!task.terminal()) {
    report("terminal-once",
           std::string("terminal hook fired in non-terminal state ") +
               vcloud::to_string(task.state),
           now, task.id);
    return;
  }
  const auto [it, inserted] =
      terminal_state_.emplace(task.id.value(), task.state);
  if (!inserted) {
    report("terminal-once",
           std::string("second terminal transition: was ") +
               vcloud::to_string(it->second) + ", now " +
               vcloud::to_string(task.state),
           now, task.id);
  }
}

void InvariantOracle::on_storage_ack(FileId object, std::uint64_t version,
                                     const std::vector<VehicleId>& holders,
                                     SimTime now) {
  StorageTracking& t = storage_track_[object.value()];
  if (version < t.acked_version) {
    std::ostringstream os;
    os << "object " << object.value() << " acked version regressed "
       << t.acked_version << " -> " << version;
    report("storage-durability", os.str(), now);
    return;
  }
  t.acked_version = version;
  t.durable.clear();
  for (const VehicleId v : holders) t.durable.insert(v.value());
  t.crash_budget = 0;
  t.loss_reported = false;
}

void InvariantOracle::on_storage_read(std::uint64_t client, FileId object,
                                      std::uint64_t version, bool degraded,
                                      SimTime now) {
  if (degraded) return;  // flagged stale-risk by contract; exempt
  std::uint64_t& floor = read_floor_[{client, object.value()}];
  if (version < floor) {
    std::ostringstream os;
    os << "client " << client << " object " << object.value()
       << " quorum read went back in time: " << floor << " -> " << version;
    report("storage-monotonic-reads", os.str(), now);
    return;
  }
  floor = version;
}

void InvariantOracle::check_storage(const VehicularCloud& cloud, SimTime now) {
  const std::size_t n = storage_->replica_target();
  const std::size_t w = storage_->write_quorum();
  // Tolerated holder deaths between full-health instants. The issue frames
  // this as N−W; min(N−W, W−1) is the bound that is actually sound for every
  // valid W+R>N config (W copies survive at most W−1 deaths), and the two
  // coincide for the canonical N=3/W=2 deployment.
  const std::size_t budget_limit = std::min(n - w, w - 1);

  storage_->for_each_object([&](const StorageObjectView& obj) {
    // storage-replica-bounds: placement within [1, N] once acked, ≤ N always.
    if (obj.replicas.size() > n) {
      std::ostringstream os;
      os << "object " << obj.object.value() << " has " << obj.replicas.size()
         << " replicas (target " << n << ")";
      report("storage-replica-bounds", os.str(), now);
    }
    if (obj.acked_version > 0 && obj.replicas.empty()) {
      std::ostringstream os;
      os << "acked object " << obj.object.value() << " has an empty placement";
      report("storage-replica-bounds", os.str(), now);
    }

    // storage-lease-membership: held leases belong to current members.
    for (const StorageReplicaView& r : obj.replicas) {
      if (r.lease_held && !cloud.is_worker(r.holder)) {
        std::ostringstream os;
        os << "object " << obj.object.value() << " holder "
           << r.holder.value() << " holds a lease but is not a member";
        report("storage-lease-membership", os.str(), now);
      }
    }

    // storage-durability.
    StorageTracking& t = storage_track_[obj.object.value()];
    if (obj.acked_version < t.acked_version) {
      std::ostringstream os;
      os << "object " << obj.object.value() << " service acked version "
         << "regressed " << t.acked_version << " -> " << obj.acked_version;
      report("storage-durability", os.str(), now);
      return;
    }
    if (obj.acked_version > t.acked_version) {
      // An ack the hook never saw (service running without the ack hook
      // wired): adopt the view's durable set so tracking stays sound.
      t.acked_version = obj.acked_version;
      t.durable.clear();
      for (const StorageReplicaView& r : obj.replicas) {
        if (r.alive && r.version >= t.acked_version) {
          t.durable.insert(r.holder.value());
        }
      }
      t.crash_budget = 0;
      t.loss_reported = false;
    }
    if (t.acked_version == 0) return;  // nothing durable promised yet

    std::size_t live_acked = 0;
    std::unordered_set<std::uint64_t> present_alive;
    for (const StorageReplicaView& r : obj.replicas) {
      if (!r.alive) continue;
      present_alive.insert(r.holder.value());
      if (r.version >= t.acked_version) ++live_acked;
    }
    // Charge the budget for durable holders that physically died. A holder
    // that vanished from the placement while demonstrably alive (a repair
    // path discarding copies without deaths) charges nothing — that is the
    // defect this invariant exists to catch.
    for (auto it = t.durable.begin(); it != t.durable.end();) {
      const VehicleId v{*it};
      if (present_alive.count(*it) > 0) {
        ++it;
        continue;
      }
      if (!cloud.is_worker(v) || cloud.worker_crashed(v)) ++t.crash_budget;
      it = t.durable.erase(it);
    }
    if (live_acked >= n) {
      // Full health: repair restored the target replication, so the clock
      // on tolerated deaths restarts from this durable set.
      t.durable.clear();
      for (const StorageReplicaView& r : obj.replicas) {
        if (r.alive && r.version >= t.acked_version) {
          t.durable.insert(r.holder.value());
        }
      }
      t.crash_budget = 0;
      t.loss_reported = false;
    } else if (live_acked == 0 && t.crash_budget <= budget_limit &&
               !t.loss_reported) {
      std::ostringstream os;
      os << "object " << obj.object.value() << " acked v" << t.acked_version
         << " has no live up-to-date copy after only " << t.crash_budget
         << " holder death(s) (quorum tolerates " << budget_limit << ")";
      report("storage-durability", os.str(), now);
      t.loss_reported = true;
    }
  });
}

void InvariantOracle::on_dag_node_terminal(std::uint64_t graph,
                                           std::size_t node, SimTime now) {
  const auto [it, inserted] = dag_node_done_.emplace(graph, node);
  (void)it;
  if (!inserted) {
    std::ostringstream os;
    os << "graph " << graph << " node " << node
       << " committed success a second time";
    report("dag-terminal-once", os.str(), now);
  }
}

void InvariantOracle::check_dag(SimTime now) {
  dag_->for_each_graph([&](const DagGraphView& g) {
    const std::vector<DagNodeStateView>& nodes = *g.nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const DagNodeStateView& n = nodes[i];
      // dag-completion-subset: success implies submission, and a completed
      // graph left no node behind.
      if (n.succeeded && !n.submitted) {
        std::ostringstream os;
        os << "graph " << g.id << " node " << i
           << " succeeded without ever being submitted";
        report("dag-completion-subset", os.str(), now);
      }
      if (g.completed && !n.succeeded) {
        std::ostringstream os;
        os << "graph " << g.id << " is completed but node " << i
           << " never succeeded";
        report("dag-completion-subset", os.str(), now);
      }
      // dag-dependency-order: no node is handed to the broker before every
      // parent reached terminal success.
      if (n.submitted) {
        for (const std::size_t p : n.parents) {
          if (!nodes[p].succeeded) {
            std::ostringstream os;
            os << "graph " << g.id << " node " << i
               << " submitted before parent " << p << " succeeded";
            report("dag-dependency-order", os.str(), now);
          }
        }
      }
      // dag-node-liveness: on a live graph a submitted node either already
      // succeeded or still has a live attempt — otherwise nothing will ever
      // finish it and the graph is silently stuck (the deliberate
      // test_drop_failed_resubmit bug lands exactly here).
      if (!g.terminal && n.submitted && !n.succeeded &&
          n.live_attempts == 0) {
        std::ostringstream os;
        os << "graph " << g.id << " node " << i
           << " has no live attempt and no resubmission (stranded)";
        report("dag-node-liveness", os.str(), now);
      }
    }
    // dag-no-orphaned-intermediates: a finished graph released every parked
    // parent output.
    if (g.terminal && g.intermediates_held != 0) {
      std::ostringstream os;
      os << "graph " << g.id << " is terminal but still holds "
         << g.intermediates_held << " intermediate output(s)";
      report("dag-no-orphaned-intermediates", os.str(), now);
    }
  });
}

void InvariantOracle::check_admission(const VehicularCloud& cloud,
                                      SimTime now) {
  const AdmissionControl& adm = *admission_;

  std::size_t fabricated_members = 0;
  for (const VehicleId v : cloud.worker_ids()) {
    // auth-revoked-membership: inside [visible, horizon) the propagation
    // race is legal (SOME RSU knows, this one may not); strictly past the
    // horizon every RSU holds the CRL and eviction was contractually due.
    if (now > adm.revocation_horizon(v)) {
      std::ostringstream os;
      os << "worker " << v.value() << " is still a member past its CRL "
         << "horizon (" << adm.revocation_horizon(v) << ")";
      report("auth-revoked-membership", os.str(), now);
    }
    if (adm.is_fabricated(v)) ++fabricated_members;
    // membership-census: every worker entered through an accounted-for
    // path — live in traffic (beacon membership), a crashed zombie the
    // detector has not reaped, or an explicitly admitted claim.
    if (!cloud.worker_in_traffic(v) && !cloud.worker_crashed(v) &&
        !adm.was_admitted_claim(v)) {
      std::ostringstream os;
      os << "worker " << v.value() << " is neither traffic-backed, a known "
         << "crashed zombie, nor an admitted claim";
      report("membership-census", os.str(), now);
    }
  }

  // auth-sybil-admission: fabricated members stay within the verification
  // policy's tolerance (0 = strict: quarantine, never membership).
  if (fabricated_members > adm.config().max_unverified_admissions) {
    std::ostringstream os;
    os << fabricated_members << " fabricated member(s) exceed the policy "
       << "bound of " << adm.config().max_unverified_admissions;
    report("auth-sybil-admission", os.str(), now);
  }

  // auth-revoked-holder: no live task is held by an identity revoked past
  // its horizon, or fabricated without ever being admitted.
  cloud.for_each_task([&](const Task& task) {
    if (task.terminal() || !task.worker.valid()) return;
    if (now > adm.revocation_horizon(task.worker)) {
      std::ostringstream os;
      os << "worker " << task.worker.value()
         << " holds a live task past its CRL horizon";
      report("auth-revoked-holder", os.str(), now, task.id);
    }
    if (adm.is_fabricated(task.worker) &&
        !adm.was_admitted_claim(task.worker)) {
      std::ostringstream os;
      os << "fabricated identity " << task.worker.value()
         << " holds a live task without ever being admitted";
      report("auth-revoked-holder", os.str(), now, task.id);
    }
  });

  // Leases / replicas via the storage view, when one is registered.
  if (storage_ != nullptr) {
    storage_->for_each_object([&](const StorageObjectView& obj) {
      for (const StorageReplicaView& r : obj.replicas) {
        if (!r.lease_held) continue;
        if (now > adm.revocation_horizon(r.holder)) {
          std::ostringstream os;
          os << "object " << obj.object.value() << " holder "
             << r.holder.value() << " keeps a lease past its CRL horizon";
          report("auth-revoked-holder", os.str(), now);
        }
        if (adm.is_fabricated(r.holder) &&
            !adm.was_admitted_claim(r.holder)) {
          std::ostringstream os;
          os << "object " << obj.object.value() << " lease held by "
             << "never-admitted fabricated identity " << r.holder.value();
          report("auth-revoked-holder", os.str(), now);
        }
      }
    });
  }
}

void InvariantOracle::check(const VehicularCloud& cloud, SimTime now) {
  ++checks_run_;

  if (storage_ != nullptr) check_storage(cloud, now);
  if (dag_ != nullptr) check_dag(now);
  if (admission_ != nullptr) check_admission(cloud, now);

  // Dispatch-queue multiplicity per task id. Entries referencing terminal
  // tasks are legal (the queue reaps them lazily); dangling ids are not.
  std::unordered_map<std::uint64_t, std::size_t> queued;
  for (const TaskId id : cloud.pending_ids()) ++queued[id.value()];
  for (const auto& [tid, n] : queued) {
    if (cloud.find_task(TaskId{tid}) == nullptr) {
      report("task-conservation", "queue entry references unknown task", now,
             TaskId{tid});
    }
  }

  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t expired = 0;
  std::size_t failed = 0;
  cloud.for_each_task([&](const Task& task) {
    ++total;
    const std::uint64_t tid = task.id.value();

    switch (task.state) {
      case TaskState::kCompleted: ++completed; break;
      case TaskState::kExpired: ++expired; break;
      case TaskState::kFailed: ++failed; break;

      case TaskState::kPending:
      case TaskState::kCrashRecovering: {
        // Queued states must sit in the dispatch queue exactly once or the
        // task is lost (never dispatched again) / runs twice.
        const auto it = queued.find(tid);
        const std::size_t n = it == queued.end() ? 0 : it->second;
        if (n != 1) {
          std::ostringstream os;
          os << vcloud::to_string(task.state) << " task queued " << n
             << " times (want exactly 1)";
          report("task-conservation", os.str(), now, task.id);
        }
        break;
      }

      case TaskState::kRunning: {
        if (task.worker.valid()) {
          if (!cloud.is_worker(task.worker)) {
            report("task-conservation",
                   "running on a worker the cloud no longer has", now,
                   task.id);
          } else if (!(cloud.running_on(task.worker) == task.id)) {
            report("task-conservation",
                   "running worker's slot holds a different task", now,
                   task.id);
          }
        } else if (!cloud.has_replica(task.id)) {
          // An invalid worker is legal only while a speculative replica
          // still carries the task (replica-inherit after a primary loss).
          report("task-conservation",
                 "running with no worker and no replica (orphaned)", now,
                 task.id);
        }
        break;
      }

      case TaskState::kMigrating: {
        if (!task.worker.valid() || !cloud.is_worker(task.worker) ||
            !(cloud.running_on(task.worker) == task.id)) {
          report("task-conservation",
                 "migrating without a reserved target worker", now, task.id);
        }
        break;
      }
    }

    // terminal-once, scan half: a recorded terminal state may never mutate,
    // and a terminal task the hook never saw means a transition bypassed it.
    const auto term = terminal_state_.find(tid);
    if (term != terminal_state_.end()) {
      if (task.state != term->second) {
        report("terminal-once",
               std::string("terminal state mutated: recorded ") +
                   vcloud::to_string(term->second) + ", now " +
                   vcloud::to_string(task.state),
               now, task.id);
      }
    } else if (task.terminal()) {
      report("terminal-once", "terminal task never reported via hook", now,
             task.id);
    }

    // checkpoint-monotonicity: the crash-survivable floor never regresses
    // and stays within [0, work].
    constexpr double kEps = 1e-9;
    if (task.checkpoint_progress < -kEps ||
        task.checkpoint_progress > task.work + kEps) {
      std::ostringstream os;
      os << "checkpoint " << task.checkpoint_progress << " outside [0, "
         << task.work << "]";
      report("checkpoint-monotonicity", os.str(), now, task.id);
    }
    auto [floor_it, inserted] =
        checkpoint_floor_.emplace(tid, task.checkpoint_progress);
    if (!inserted) {
      if (task.checkpoint_progress < floor_it->second - kEps) {
        std::ostringstream os;
        os << "checkpoint regressed " << floor_it->second << " -> "
           << task.checkpoint_progress;
        report("checkpoint-monotonicity", os.str(), now, task.id);
      }
      floor_it->second = std::max(floor_it->second, task.checkpoint_progress);
    }
  });

  // stats-consistency: counters must equal the census. (completed/expired/
  // failed are mutually exclusive terminal states, so equality per counter
  // also rules out double-counting.)
  const CloudStats& stats = cloud.stats();
  const auto check_counter = [&](const char* name, std::size_t counter,
                                 std::size_t census) {
    if (counter != census) {
      std::ostringstream os;
      os << "stats." << name << "=" << counter << " but census says "
         << census;
      report("stats-consistency", os.str(), now);
    }
  };
  check_counter("submitted", stats.submitted, total);
  check_counter("completed", stats.completed, completed);
  check_counter("expired", stats.expired, expired);
  check_counter("failed", stats.failed, failed);

  // broker-uniqueness: at refresh end the broker is one of the current
  // workers, and a non-empty cloud always has one.
  const VehicleId broker = cloud.broker();
  if (broker.valid() && !cloud.is_worker(broker)) {
    std::ostringstream os;
    os << "broker " << broker.value() << " is not a current member";
    report("broker-uniqueness", os.str(), now);
  }
  if (!broker.valid() && cloud.member_count() > 0) {
    report("broker-uniqueness", "members present but no broker elected", now);
  }

  // detector-subset: tracked ⊆ workers. The reverse (workers the detector
  // has not picked up yet) is legal between a join and the next heartbeat
  // round.
  for (const VehicleId v : cloud.detector().tracked_ids()) {
    if (!cloud.is_worker(v)) {
      std::ostringstream os;
      os << "detector tracks " << v.value() << " which is not a worker";
      report("detector-subset", os.str(), now);
    }
  }
}

}  // namespace vcl::vcloud
