// Vehicle resource profiles and pool aggregation (paper Fig. 1 / E5).
//
// Higher SAE automation levels carry richer on-board equipment — more
// compute, storage, sensing — and therefore contribute more to a v-cloud's
// pooled capacity. Units are deliberately simple: compute in abstract
// work-units/second, storage in MB, bandwidth in Mbit/s.
#pragma once

#include <cstddef>

#include "mobility/vehicle.h"

namespace vcl::vcloud {

struct ResourceProfile {
  double compute = 1.0;      // work units per second
  double storage_mb = 256;
  double bandwidth_mbps = 6;
  int sensor_count = 1;      // distinct sensing modalities on board
};

// Equipment scaling by automation level (Fig. 1's gradient, quantified).
ResourceProfile profile_for(mobility::AutomationLevel level);

struct ResourcePool {
  double compute = 0.0;
  double storage_mb = 0.0;
  double bandwidth_mbps = 0.0;
  int sensor_count = 0;
  std::size_t members = 0;

  void add(const ResourceProfile& p) {
    compute += p.compute;
    storage_mb += p.storage_mb;
    bandwidth_mbps += p.bandwidth_mbps;
    sensor_count += p.sensor_count;
    ++members;
  }
};

}  // namespace vcl::vcloud
