#include "vcloud/resource.h"

namespace vcl::vcloud {

ResourceProfile profile_for(mobility::AutomationLevel level) {
  const int l = static_cast<int>(level);
  ResourceProfile p;
  // Roughly doubling equipment per two levels: an L5 vehicle carries an
  // order of magnitude more capability than an L0 one.
  p.compute = 1.0 + 0.8 * l;
  p.storage_mb = 256.0 * (1 << (l / 2));
  p.bandwidth_mbps = 6.0 + 2.0 * l;
  p.sensor_count = 1 + l;
  return p;
}

}  // namespace vcl::vcloud
