#include "vcloud/dependability.h"

#include <algorithm>
#include <cmath>

namespace vcl::vcloud {

SimTime retry_backoff(const RetryConfig& config, int attempt, Rng& rng) {
  const double exponent = static_cast<double>(std::max(0, attempt - 1));
  const SimTime base = config.ack_timeout * std::pow(config.backoff, exponent);
  const double jitter = config.jitter * rng.uniform(-1.0, 1.0);
  return std::max(1e-3, base * (1.0 + jitter));
}

void FailureDetector::track(VehicleId v, SimTime now) {
  last_heard_[v.value()] = now;
}

void FailureDetector::observe(VehicleId v, SimTime now) {
  last_heard_[v.value()] = now;
}

void FailureDetector::forget(VehicleId v) { last_heard_.erase(v.value()); }

void FailureDetector::reset_all(SimTime now) {
  for (auto& [vid, heard] : last_heard_) heard = now;
}

bool FailureDetector::tracked(VehicleId v) const {
  return last_heard_.find(v.value()) != last_heard_.end();
}

std::vector<VehicleId> FailureDetector::tracked_ids() const {
  std::vector<VehicleId> out;
  out.reserve(last_heard_.size());
  for (const auto& [vid, heard] : last_heard_) out.push_back(VehicleId{vid});
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VehicleId> FailureDetector::sweep(SimTime now) const {
  std::vector<VehicleId> dead;
  const SimTime cutoff = kill_after();
  for (const auto& [vid, heard] : last_heard_) {
    if (now - heard > cutoff) dead.push_back(VehicleId{vid});
  }
  std::sort(dead.begin(), dead.end());
  return dead;
}

}  // namespace vcl::vcloud
