// Result aggregation: split-run-combine jobs over a vehicular cloud
// (paper §III.A / §V.A "resource sharing, task allocation, and result
// aggregation").
//
// An AggregateJob splits a large computation into `parts` subtasks, submits
// them to the cloud, and completes when every part's result has returned to
// the broker and been combined (one combine step per part, charged as extra
// work on completion accounting). Integrity: each part's result carries a
// digest; the job records a Merkle root over them so the submitter can
// verify the combined output.
#pragma once

#include <functional>
#include <unordered_map>

#include "crypto/merkle.h"
#include "vcloud/cloud.h"

namespace vcl::vcloud {

struct AggregateJobSpec {
  double total_work = 100.0;
  std::size_t parts = 10;
  double input_mb_per_part = 1.0;
  double output_mb_per_part = 0.2;
  SimTime deadline = 0.0;  // absolute; 0 = none
};

struct AggregateJobStatus {
  std::size_t parts_total = 0;
  std::size_t parts_completed = 0;
  std::size_t parts_failed = 0;  // terminal failures (expired)
  bool completed = false;
  bool failed = false;
  SimTime completed_at = 0.0;
  crypto::Digest result_root{};  // Merkle root over part results
};

// Tracks aggregate jobs over one cloud. Drive with `poll()` after running
// the simulation (or attach for periodic polling).
class Aggregator {
 public:
  explicit Aggregator(VehicularCloud& cloud) : cloud_(cloud) {}

  // Splits and submits; returns a job handle (its id is the first part's
  // task id for uniqueness).
  TaskId submit(const AggregateJobSpec& spec);

  // Re-examines part states; fires completion when all parts are terminal.
  void poll(SimTime now);
  void attach(sim::Simulator& sim, SimTime period = 1.0);

  [[nodiscard]] const AggregateJobStatus* status(TaskId job) const;
  [[nodiscard]] std::size_t active_jobs() const;

 private:
  struct Job {
    AggregateJobSpec spec;
    std::vector<TaskId> parts;
    AggregateJobStatus status;
  };

  VehicularCloud& cloud_;
  std::unordered_map<std::uint64_t, Job> jobs_;
};

}  // namespace vcl::vcloud
