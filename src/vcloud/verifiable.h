// Verifiable vehicular cloud computing via redundant execution (after
// Huang et al. [10], PTVC: "the user can verify the correctness of
// computation results").
//
// Without verification, a lazy or malicious worker can return garbage and
// collect credit. The replicated submitter runs each logical task on `r`
// distinct workers and accepts the result only when a majority of the
// returned digests agree. Worker honesty is modeled per-vehicle (an
// AdversaryRoster of cheaters whose digests are wrong with probability
// `cheat_prob`); detection feeds a reputation store, closing the PTVC loop
// (reputation-based worker selection is the caller's policy knob).
//
// Known simplification vs PTVC: replicas are ordinary cloud tasks, so the
// scheduler may hand two replicas of one job to the same worker over time —
// a lone cheater can then fake a quorum. Real PTVC pins replicas to
// disjoint workers; E21's high-cheater rows show the gap this opens.
#pragma once

#include "attack/adversary.h"
#include "trust/reputation.h"
#include "vcloud/cloud.h"

namespace vcl::vcloud {

struct VerifiableConfig {
  std::size_t replicas = 2;
  double cheat_prob = 1.0;  // P(wrong result) for a cheating worker
};

struct VerifiedJobStatus {
  std::size_t replicas_done = 0;
  std::size_t replicas_total = 0;
  bool finished = false;
  bool accepted = false;       // majority digest agreement
  bool wrong_accepted = false; // accepted, but the majority digest was wrong
};

class ReplicatedSubmitter {
 public:
  ReplicatedSubmitter(VehicularCloud& cloud,
                      const attack::AdversaryRoster& cheaters,
                      VerifiableConfig config, Rng rng);

  // Submits `spec` as `replicas` independent tasks; returns a job handle.
  TaskId submit(Task spec);

  void poll();
  void attach(sim::Simulator& sim, SimTime period = 1.0);

  [[nodiscard]] const VerifiedJobStatus* status(TaskId job) const;
  [[nodiscard]] std::size_t accepted_jobs() const { return accepted_; }
  [[nodiscard]] std::size_t rejected_jobs() const { return rejected_; }
  // Jobs whose accepted majority was actually wrong (collusion/bad luck):
  // the undetected-error count PTVC exists to minimize.
  [[nodiscard]] std::size_t undetected_errors() const { return undetected_; }
  [[nodiscard]] trust::ReputationStore& reputation() { return reputation_; }

 private:
  struct Job {
    std::vector<TaskId> replicas;
    VerifiedJobStatus status;
  };

  // Simulated result digest: honest workers produce the canonical digest;
  // cheaters flip it with cheat_prob.
  [[nodiscard]] bool result_correct(VehicleId worker);

  VehicularCloud& cloud_;
  const attack::AdversaryRoster& cheaters_;
  VerifiableConfig config_;
  Rng rng_;
  trust::ReputationStore reputation_;
  std::unordered_map<std::uint64_t, Job> jobs_;
  std::unordered_map<std::uint64_t, bool> replica_correct_;  // task -> digest ok
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t undetected_ = 0;
};

}  // namespace vcl::vcloud
