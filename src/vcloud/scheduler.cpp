#include "vcloud/scheduler.h"

namespace vcl::vcloud {

VehicleId RandomScheduler::pick(const Task& task,
                                const std::vector<WorkerView>& workers,
                                Rng& rng) const {
  (void)task;
  std::vector<const WorkerView*> idle;
  for (const WorkerView& w : workers) {
    if (!w.busy) idle.push_back(&w);
  }
  if (idle.empty()) return VehicleId{};
  return idle[rng.index(idle.size())]->id;
}

VehicleId GreedyResourceScheduler::pick(const Task& task,
                                        const std::vector<WorkerView>& workers,
                                        Rng& rng) const {
  (void)task;
  (void)rng;
  const WorkerView* best = nullptr;
  for (const WorkerView& w : workers) {
    if (w.busy) continue;
    if (best == nullptr || w.profile.compute > best->profile.compute) {
      best = &w;
    }
  }
  return best == nullptr ? VehicleId{} : best->id;
}

VehicleId DwellAwareScheduler::pick(const Task& task,
                                    const std::vector<WorkerView>& workers,
                                    Rng& rng) const {
  (void)rng;
  const WorkerView* best_fit = nullptr;
  const WorkerView* longest = nullptr;
  for (const WorkerView& w : workers) {
    if (w.busy) continue;
    const double exec = task.remaining() / w.profile.compute;
    if (w.dwell_seconds >= exec * margin_) {
      if (best_fit == nullptr ||
          w.profile.compute > best_fit->profile.compute) {
        best_fit = &w;
      }
    }
    if (longest == nullptr || w.dwell_seconds > longest->dwell_seconds) {
      longest = &w;  // idle workers only (busy ones were skipped above)
    }
  }
  if (best_fit != nullptr) return best_fit->id;
  return longest == nullptr ? VehicleId{} : longest->id;
}

}  // namespace vcl::vcloud
