#include "vcloud/dwell.h"

#include <limits>

namespace vcl::vcloud {

const char* to_string(DwellMode mode) {
  switch (mode) {
    case DwellMode::kNaive: return "naive";
    case DwellMode::kKinematic: return "kinematic";
    case DwellMode::kOracle: return "oracle";
  }
  return "unknown";
}

double estimate_dwell(const mobility::TrafficModel& traffic, VehicleId v,
                      geo::Vec2 center, double radius, DwellMode mode) {
  switch (mode) {
    case DwellMode::kNaive:
      return std::numeric_limits<double>::infinity();
    case DwellMode::kKinematic:
      return traffic.predict_time_to_exit(v, center, radius);
    case DwellMode::kOracle:
      return traffic.oracle_time_to_exit(v, center, radius);
  }
  return 0.0;
}

}  // namespace vcl::vcloud
