// AdmissionControl: revocation-aware membership defense (paper §IV).
//
// The cloud's membership is built from radio-range beacons, which is
// exactly the surface the §IV threat model attacks: fabricated identities
// join while real holders are dark (Sybil), revoked identities keep their
// tasks while the fresh CRL crawls from RSU to RSU (revocation race), and
// captured joins/acks are re-injected past their freshness window
// (replay). This class is the per-cloud defense the InvariantOracle's auth
// invariants check:
//
//  * revocation-aware admission/eviction — membership refresh consults the
//    RSU-side auth::Crl view (Bloom fast path, exact timing map behind
//    it); a revoked identity is rejected at arrival and evicted at the
//    first refresh after the CRL becomes visible, with its held work
//    re-queued, not lost;
//  * freshness window — replayed joins/acks run through the REAL
//    attack::FreshnessChecker (timestamp || nonce envelope): stale
//    timestamps and remembered nonces die at the door;
//  * quarantine-on-suspicion — a fabricated identity that cannot be
//    verified (the channel cannot reach the authority during a blackout,
//    and the id has no traffic presence at all) is parked in a quarantine
//    pen instead of dispatched onto: capacity degrades gracefully by the
//    quarantined count, membership stays clean.
//
// `config.defend == false` runs the same storms with the door wide open —
// claims become members, revocations evict nobody, replays are never
// checked — the vulnerable baseline the E24 bench quantifies. All
// bookkeeping (deliveries, fabricated registry, stats) still records, so
// pollution is measurable either way.
//
// Inertness contract: the cloud holds a nullable `AdmissionControl*`; with
// none set every hook is one branch and runs are byte-identical to a
// pre-adversary build. Nothing here touches an RNG stream.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "attack/replay.h"
#include "auth/crl.h"
#include "obs/flight_recorder.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::vcloud {

struct AdmissionConfig {
  // Defense master switch: false = admission wide open (the E24 vulnerable
  // baseline). Bookkeeping still records so pollution stays measurable.
  bool defend = true;
  // Replayed joins/acks whose embedded timestamp is MORE than this many
  // seconds old are rejected (age exactly equal to the window is accepted —
  // attack::FreshnessChecker's boundary is strict staleness).
  SimTime freshness_window = 2.0;
  // Fabricated identities the verification policy tolerates as full
  // members; 0 = strict (every sybil claim is quarantined, never admitted).
  std::size_t max_unverified_admissions = 0;
  // DELIBERATE test-only defense bug (mirrors test_drop_crash_requeue):
  // the revocation eviction sweep drops the evicted worker's held task
  // instead of re-queuing it — the task strands kRunning on a worker the
  // cloud no longer has, which the oracle's task-conservation invariant
  // catches. Exists to prove the adversarial soak can catch, shrink and
  // replay a seeded defense bug. Never enable outside tests.
  bool test_drop_revoked_requeue = false;
};

struct AdmissionStats {
  std::size_t sybil_claims = 0;       // fabricated join claims presented
  std::size_t sybil_admitted = 0;     // admitted under the policy bound
  std::size_t sybil_quarantined = 0;  // parked in the quarantine pen
  std::size_t replays_seen = 0;       // replayed messages presented
  std::size_t replays_rejected = 0;   // killed by the freshness window
  std::size_t replays_accepted = 0;   // passed (defense off, or fresh)
  std::size_t revocations = 0;        // authority-side revokes observed
  std::size_t crl_deliveries = 0;     // fresh CRLs reaching this cloud's RSUs
  std::size_t revoked_evictions = 0;  // members evicted as revoked
  std::size_t arrivals_rejected = 0;  // membership arrivals refused
};

class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionConfig config)
      : config_(config), freshness_(config.freshness_window) {}

  // Always-on forensics: admission/eviction decisions land on the
  // kAuth/kAttack flight categories. Null = one branch per decision.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  // The RSU-side CRL view refresh consults (Bloom fast path).
  [[nodiscard]] const auth::Crl& crl() const { return crl_; }

  // --- identity bookkeeping (adversary driver side) --------------------------
  // Marks an id as fabricated (a sybil credential with no real vehicle
  // behind it). The oracle's sybil-admission invariant counts members
  // against this registry.
  void note_fabricated(VehicleId v) { fabricated_.insert(v.value()); }
  [[nodiscard]] bool is_fabricated(VehicleId v) const {
    return fabricated_.count(v.value()) != 0;
  }
  // Authority-side revoke observed (stats + flight only: RSUs know nothing
  // until deliver_crl — that gap IS the §IV race).
  void note_revoked(VehicleId v, SimTime now);
  // The fresh CRL reaches this cloud's RSUs at `visible_at`; EVERY RSU
  // holds it by `horizon_at`. Past the horizon a surviving member is a
  // safety violation; inside it the race is legal.
  void deliver_crl(VehicleId v, SimTime visible_at, SimTime horizon_at,
                   SimTime now);
  // A superseding CRL cleared the entry (re-admission test path). The
  // Bloom filter is append-only by construction, so the exact timing map —
  // which this erases — stays authoritative.
  void lift_revocation(VehicleId v);

  // True once some RSU of this cloud holds the revocation (eviction and
  // arrival filtering act from here).
  [[nodiscard]] bool revoked_visible(VehicleId v, SimTime now) const;
  // Absolute time by which EVERY RSU holds it; +inf when undelivered. The
  // oracle enforces revoked-membership only past this.
  [[nodiscard]] SimTime revocation_horizon(VehicleId v) const;

  // --- cloud-side decisions --------------------------------------------------
  // Membership-path arrival filter: false = refuse (revoked and visible).
  [[nodiscard]] bool allow_arrival(VehicleId v, SimTime now);
  // Revocation eviction sweep predicate, one call per member per refresh.
  [[nodiscard]] bool should_evict(VehicleId v, SimTime now) const {
    return config_.defend && revoked_visible(v, now);
  }
  void note_evicted(VehicleId v, SimTime now);

  enum class ClaimOutcome { kAdmitted, kQuarantined, kRejected };
  // A join claim arriving OUTSIDE the beacon membership path (fabricated
  // sybil identity, or a replayed join that survived the freshness check).
  // Only kAdmitted becomes a member; kQuarantined ids are tracked here and
  // never dispatched onto — graceful degradation, not corruption.
  ClaimOutcome offer_claim(VehicleId v, bool fabricated, SimTime now);

  // Freshness gate for a replayed message stamped (original_ts, nonce).
  // Runs the envelope through the real attack::FreshnessChecker when
  // defending; with the defense off everything passes (and is counted).
  [[nodiscard]] bool accept_replay(SimTime original_ts, std::uint64_t nonce,
                                   SimTime now);

  // --- oracle / census introspection -----------------------------------------
  // True when `v` became a member through offer_claim (the membership
  // census accepts such workers even without a traffic presence).
  [[nodiscard]] bool was_admitted_claim(VehicleId v) const {
    return admitted_claims_.count(v.value()) != 0;
  }
  [[nodiscard]] std::size_t quarantined_count() const {
    return quarantine_.size();
  }
  [[nodiscard]] bool is_quarantined(VehicleId v) const {
    return quarantine_.count(v.value()) != 0;
  }

 private:
  struct Delivery {
    SimTime visible_at = 0.0;
    SimTime horizon_at = 0.0;
  };

  AdmissionConfig config_;
  AdmissionStats stats_;
  auth::Crl crl_;
  attack::FreshnessChecker freshness_;
  std::unordered_set<std::uint64_t> fabricated_;
  std::unordered_map<std::uint64_t, Delivery> deliveries_;
  std::unordered_set<std::uint64_t> admitted_claims_;
  std::unordered_set<std::uint64_t> quarantine_;
  std::size_t unverified_admitted_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace vcl::vcloud
