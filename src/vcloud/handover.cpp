#include "vcloud/handover.h"

#include <algorithm>

namespace vcl::vcloud {

double checkpoint_mb(const Task& task, const HandoverConfig& config) {
  return config.checkpoint_mb_base +
         config.checkpoint_mb_per_work * task.progress;
}

SimTime migration_latency(const Task& task, const ResourceProfile& from,
                          const ResourceProfile& to,
                          const HandoverConfig& config,
                          const crypto::CostModel& costs) {
  const double mb = checkpoint_mb(task, config);
  const double link_mbps = std::min(from.bandwidth_mbps, to.bandwidth_mbps);
  SimTime latency = mb * 8.0 / std::max(link_mbps, 0.1);
  if (config.encrypted) {
    latency += costs.cost(crypto::Op::kKemEncap) +
               costs.cost(crypto::Op::kKemDecap) +
               // Integrity over the checkpoint, one HMAC per MB equivalent.
               costs.cost(crypto::Op::kHmac) * std::max(1.0, mb);
  }
  return latency;
}

}  // namespace vcl::vcloud
