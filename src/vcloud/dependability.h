// Dependable task execution under *adversarial* failures (paper §III).
//
// The baseline cloud only survives graceful departures: membership politely
// drops a worker and refresh() migrates its encrypted checkpoint. Real
// vehicular resources crash — radios die, vehicles wreck, the elected broker
// vanishes — with no handover opportunity. This module holds the knobs and
// the pure bookkeeping for the hardened execution path:
//
//  * FailureDetector — workers emit heartbeats through the lossy network;
//    the broker declares a worker dead only after `k` missed beats, trading
//    detection latency against false positives (a live worker behind a
//    radio blackout looks exactly like a crashed one).
//  * RetryConfig — ack + timeout + exponential-backoff-with-jitter retry
//    for task dispatch and result return; bounded attempts, then re-queue.
//  * CheckpointConfig — periodic progress checkpoints to the broker, so a
//    crash loses only the delta since the last checkpoint (costed with the
//    handover.h checkpoint model).
//  * SpeculationConfig — speculative replica execution for deadline-bearing
//    tasks: first finisher wins, the loser's work is redundancy overhead.
//
// Everything defaults OFF so the graceful-only seed behaviour is the
// baseline; bench_dependability sweeps these knobs against injected faults.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::vcloud {

struct FailureDetectorConfig {
  bool enabled = false;
  SimTime heartbeat_period = 1.0;  // worker -> broker beat interval
  int missed_beats_to_kill = 3;    // k: beats missed before declared dead
  std::size_t heartbeat_bytes = 64;
};

struct RetryConfig {
  bool enabled = false;
  int max_attempts = 4;       // dispatch attempts before giving up
  SimTime ack_timeout = 0.5;  // base wait before the first retry, seconds
  double backoff = 2.0;       // exponential growth per attempt
  double jitter = 0.5;        // +- fraction of the delay (decorrelates herds)
};

struct CheckpointConfig {
  bool enabled = false;
  SimTime period = 5.0;  // checkpoint cadence per running task, seconds
};

struct SpeculationConfig {
  bool enabled = false;
  // Launch a replica only while at least this many idle workers would
  // remain afterwards — speculation must not starve the queue.
  std::size_t min_spare_workers = 1;
};

struct DependabilityConfig {
  FailureDetectorConfig detector;
  RetryConfig retry;
  CheckpointConfig checkpoint;
  SpeculationConfig speculation;
  // A broker change forces a re-sync of queued/running task metadata to the
  // new broker; dispatch pauses this long (0 = free re-sync, seed behaviour).
  SimTime broker_resync_delay = 0.0;
  // TEST-ONLY deliberate bug: crash recovery rolls the task back but
  // "forgets" to re-queue it, so it strands in kCrashRecovering forever.
  // Exists to prove the invariant oracle catches a real lost-task defect
  // and that the chaos shrinker reduces it to a minimal schedule
  // (tests/chaos_test.cpp). Never set outside tests.
  bool test_drop_crash_requeue = false;
};

// Delay before retry attempt `attempt` (1-based): ack_timeout grows
// exponentially and is jittered by +-jitter so synchronized losers do not
// retry in lockstep.
[[nodiscard]] SimTime retry_backoff(const RetryConfig& config, int attempt,
                                    Rng& rng);

// Timeout-based failure detection over heartbeats. Pure bookkeeping: the
// cloud feeds in join/beat/leave observations and sweeps for workers whose
// last beat is older than k * period. Which of the swept workers actually
// crashed (vs lost their beats to the channel) is the caller's accounting
// problem — the detector cannot tell, which is the point.
class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorConfig config = {})
      : config_(config) {}

  // Worker joined (or re-joined): starts a fresh grace window.
  void track(VehicleId v, SimTime now);
  // Heartbeat heard from `v`.
  void observe(VehicleId v, SimTime now);
  // Worker left gracefully: stop tracking.
  void forget(VehicleId v);
  // New broker: the re-synced tables grant everyone a fresh grace window
  // (otherwise a broker change mass-kills workers whose beats it never saw).
  void reset_all(SimTime now);

  [[nodiscard]] bool tracked(VehicleId v) const;
  [[nodiscard]] std::size_t tracked_count() const { return last_heard_.size(); }
  // All tracked ids, sorted (deterministic; the invariant oracle checks
  // tracked ⊆ membership through this).
  [[nodiscard]] std::vector<VehicleId> tracked_ids() const;
  [[nodiscard]] SimTime kill_after() const {
    return config_.heartbeat_period *
           static_cast<double>(config_.missed_beats_to_kill);
  }

  // Workers silent for more than k * period, sorted by id (deterministic).
  [[nodiscard]] std::vector<VehicleId> sweep(SimTime now) const;

 private:
  FailureDetectorConfig config_;
  std::unordered_map<std::uint64_t, SimTime> last_heard_;
};

}  // namespace vcl::vcloud
