#include "vcloud/verifiable.h"

namespace vcl::vcloud {

ReplicatedSubmitter::ReplicatedSubmitter(
    VehicularCloud& cloud, const attack::AdversaryRoster& cheaters,
    VerifiableConfig config, Rng rng)
    : cloud_(cloud), cheaters_(cheaters), config_(config), rng_(rng) {}

bool ReplicatedSubmitter::result_correct(VehicleId worker) {
  if (!cheaters_.is_malicious(worker)) return true;
  return !rng_.bernoulli(config_.cheat_prob);
}

TaskId ReplicatedSubmitter::submit(Task spec) {
  Job job;
  job.status.replicas_total = config_.replicas;
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    Task replica = spec;
    job.replicas.push_back(cloud_.submit(std::move(replica)));
  }
  const TaskId handle = job.replicas.front();
  jobs_.emplace(handle.value(), std::move(job));
  return handle;
}

void ReplicatedSubmitter::poll() {
  for (auto& [jid, job] : jobs_) {
    if (job.status.finished) continue;
    std::size_t done = 0;
    std::size_t terminal = 0;
    for (const TaskId replica : job.replicas) {
      const Task* t = cloud_.find_task(replica);
      if (t == nullptr) {
        ++terminal;
        continue;
      }
      if (t->state == TaskState::kCompleted) {
        ++done;
        ++terminal;
        // Sample the worker's digest once, at completion.
        if (replica_correct_.find(replica.value()) ==
            replica_correct_.end()) {
          replica_correct_[replica.value()] = result_correct(t->worker);
        }
      } else if (t->terminal()) {
        ++terminal;
      }
    }
    job.status.replicas_done = done;
    if (terminal < job.replicas.size()) continue;

    job.status.finished = true;
    // Majority vote over digests of COMPLETED replicas.
    std::size_t correct = 0;
    std::size_t wrong = 0;
    for (const TaskId replica : job.replicas) {
      auto it = replica_correct_.find(replica.value());
      if (it == replica_correct_.end()) continue;
      (it->second ? correct : wrong) += 1;
      // Reputation feedback per replica (ground truth known post-hoc in
      // the experiment; a deployment uses the majority as its label).
      const Task* t = cloud_.find_task(replica);
      if (t != nullptr) {
        reputation_.record(t->worker.value(), it->second);
      }
    }
    if (done == 0 || correct == wrong) {
      // No quorum: reject (re-submission is the caller's policy).
      job.status.accepted = false;
      ++rejected_;
      continue;
    }
    job.status.accepted = true;
    ++accepted_;
    if (wrong > correct) {
      job.status.wrong_accepted = true;
      ++undetected_;
    }
  }
}

void ReplicatedSubmitter::attach(sim::Simulator& sim, SimTime period) {
  sim.schedule_every(period, [this] { poll(); });
}

const VerifiedJobStatus* ReplicatedSubmitter::status(TaskId job) const {
  auto it = jobs_.find(job.value());
  return it == jobs_.end() ? nullptr : &it->second.status;
}

}  // namespace vcl::vcloud
