#include "vcloud/replication.h"

#include <algorithm>
#include <unordered_set>

namespace vcl::vcloud {

std::vector<std::uint64_t> ReplicationManager::live_members() const {
  std::vector<std::uint64_t> out;
  for (const VehicleId v : membership_()) out.push_back(v.value());
  std::sort(out.begin(), out.end());
  return out;
}

FileId ReplicationManager::store(const crypto::Bytes& payload) {
  StoredFile f;
  f.id = FileId{next_file_id_++};
  f.size_mb = static_cast<double>(payload.size()) / 1e6;

  // Merkle root over fixed-size chunks.
  const auto chunk_bytes =
      std::max<std::size_t>(1, static_cast<std::size_t>(config_.chunk_mb * 1e6));
  std::vector<crypto::Bytes> chunks;
  for (std::size_t off = 0; off < payload.size(); off += chunk_bytes) {
    const std::size_t len = std::min(chunk_bytes, payload.size() - off);
    chunks.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(off),
                        payload.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  if (chunks.empty()) chunks.push_back({});
  f.merkle_root = crypto::MerkleTree::from_payloads(chunks).root();

  // Initial placement on random distinct live members.
  std::vector<std::uint64_t> members = live_members();
  rng_.shuffle(members);
  const std::size_t n = std::min(config_.target_replicas, members.size());
  f.holders.assign(members.begin(),
                   members.begin() + static_cast<std::ptrdiff_t>(n));
  mb_copied_ += f.size_mb * static_cast<double>(n);

  const FileId id = f.id;
  files_.emplace(id.value(), std::move(f));
  return id;
}

void ReplicationManager::refresh() {
  const std::vector<std::uint64_t> members = live_members();
  const std::unordered_set<std::uint64_t> live(members.begin(), members.end());
  for (auto& [fid, f] : files_) {
    // A vehicle that drove out of the cloud still holds its copy (it may
    // come back); holders are never pruned, only topped up. Repair needs at
    // least one LIVE holder as the copy source.
    const std::unordered_set<std::uint64_t> holding(f.holders.begin(),
                                                    f.holders.end());
    std::size_t live_count = 0;
    for (const std::uint64_t h : f.holders) live_count += live.count(h);
    if (live_count == 0 || live_count >= config_.target_replicas) continue;

    std::vector<std::uint64_t> candidates;
    for (const std::uint64_t m : members) {
      if (holding.count(m) == 0) candidates.push_back(m);
    }
    rng_.shuffle(candidates);
    while (live_count < config_.target_replicas && !candidates.empty()) {
      f.holders.push_back(candidates.back());
      candidates.pop_back();
      ++live_count;
      ++repair_copies_;
      mb_copied_ += f.size_mb;
    }
  }
}

bool ReplicationManager::available(FileId id) const {
  return live_replicas(id) > 0;
}

std::size_t ReplicationManager::live_replicas(FileId id) const {
  auto it = files_.find(id.value());
  if (it == files_.end()) return 0;
  const std::vector<std::uint64_t> members = live_members();
  const std::unordered_set<std::uint64_t> live(members.begin(), members.end());
  std::size_t n = 0;
  for (const std::uint64_t h : it->second.holders) n += live.count(h);
  return n;
}

const StoredFile* ReplicationManager::find(FileId id) const {
  auto it = files_.find(id.value());
  return it == files_.end() ? nullptr : &it->second;
}

}  // namespace vcl::vcloud
