#include "vcloud/task.h"

namespace vcl::vcloud {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kPending: return "pending";
    case TaskState::kRunning: return "running";
    case TaskState::kMigrating: return "migrating";
    case TaskState::kCrashRecovering: return "crash_recovering";
    case TaskState::kCompleted: return "completed";
    case TaskState::kFailed: return "failed";
    case TaskState::kExpired: return "expired";
  }
  return "unknown";
}

Task WorkloadGenerator::next(SimTime now) {
  Task t;
  t.work = std::max(0.5, rng_.exponential(1.0 / config_.mean_work));
  t.input_mb = std::max(0.05, rng_.exponential(1.0 / config_.mean_input_mb));
  t.output_mb = std::max(0.01, rng_.exponential(1.0 / config_.mean_output_mb));
  t.created = now;
  t.deadline =
      config_.relative_deadline > 0 ? now + config_.relative_deadline : 0.0;
  return t;
}

std::vector<Task> WorkloadGenerator::batch(SimTime now, std::size_t n) {
  std::vector<Task> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next(now));
  return out;
}

}  // namespace vcl::vcloud
