// Credit-based incentives for resource lending (after Kong et al. [17]:
// "a secure and privacy-preserving incentive framework for vehicular cloud
// on the road").
//
// Vehicles spend credits to submit work and earn credits by executing other
// vehicles' tasks. A requester that only consumes (a free rider) drains its
// balance and gets throttled; a lender accumulates spending power — the
// economic loop that makes resource pooling individually rational.
// Credentials are pseudonymous ids, so the ledger learns balances, not
// identities (the privacy-preserving part is inherited from the auth
// layer's pseudonym handling).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/ids.h"

namespace vcl::vcloud {

struct IncentiveConfig {
  double initial_credit = 50.0;
  double price_per_work = 1.0;  // requester pays per work unit
  double earn_per_work = 0.8;   // worker earns per work unit (the spread
                                // funds the broker/system overhead)
};

class IncentiveLedger {
 public:
  explicit IncentiveLedger(IncentiveConfig config = {}) : config_(config) {}

  [[nodiscard]] double balance(std::uint64_t account) const;

  // True when the account can afford `work` units.
  [[nodiscard]] bool can_afford(std::uint64_t account, double work) const;

  // Charges the requester at submission; false (and no charge) when the
  // balance is insufficient — the submission should be refused.
  bool charge(std::uint64_t account, double work);
  // Credits the worker at completion.
  void reward(std::uint64_t account, double work);
  // Refund on failure outside the requester's control (worker loss without
  // recovery).
  void refund(std::uint64_t account, double work);

  [[nodiscard]] std::size_t throttled() const { return throttled_; }
  [[nodiscard]] std::size_t accounts() const { return balances_.size(); }

 private:
  double& account(std::uint64_t id);

  IncentiveConfig config_;
  std::unordered_map<std::uint64_t, double> balances_;
  std::size_t throttled_ = 0;
};

}  // namespace vcl::vcloud
