#include "vcloud/aggregate.h"

#include "crypto/schnorr.h"

namespace vcl::vcloud {

TaskId Aggregator::submit(const AggregateJobSpec& spec) {
  Job job;
  job.spec = spec;
  job.status.parts_total = spec.parts;
  for (std::size_t i = 0; i < spec.parts; ++i) {
    Task part;
    part.work = spec.total_work / static_cast<double>(spec.parts);
    part.input_mb = spec.input_mb_per_part;
    part.output_mb = spec.output_mb_per_part;
    part.deadline = spec.deadline;
    job.parts.push_back(cloud_.submit(std::move(part)));
  }
  const TaskId handle = job.parts.front();
  jobs_.emplace(handle.value(), std::move(job));
  return handle;
}

void Aggregator::poll(SimTime now) {
  for (auto& [jid, job] : jobs_) {
    if (job.status.completed || job.status.failed) continue;
    std::size_t completed = 0;
    std::size_t failed = 0;
    for (const TaskId part : job.parts) {
      const Task* t = cloud_.find_task(part);
      if (t == nullptr) {
        ++failed;
        continue;
      }
      switch (t->state) {
        case TaskState::kCompleted: ++completed; break;
        case TaskState::kFailed:
        case TaskState::kExpired: ++failed; break;
        default: break;
      }
    }
    job.status.parts_completed = completed;
    job.status.parts_failed = failed;
    if (completed == job.status.parts_total) {
      job.status.completed = true;
      job.status.completed_at = now;
      // Combine: Merkle root over per-part result digests (result content
      // is modeled, not materialized; the digest binds part id and
      // completion time, which is what an integrity check needs).
      std::vector<crypto::Digest> leaves;
      leaves.reserve(job.parts.size());
      for (const TaskId part : job.parts) {
        const Task* t = cloud_.find_task(part);
        crypto::Bytes b;
        crypto::append_u64(b, part.value());
        crypto::append_u64(
            b, static_cast<std::uint64_t>(t->completed_at * 1e6));
        leaves.push_back(crypto::Sha256::hash(b));
      }
      job.status.result_root = crypto::MerkleTree(std::move(leaves)).root();
    } else if (completed + failed == job.status.parts_total && failed > 0) {
      job.status.failed = true;
    }
  }
}

void Aggregator::attach(sim::Simulator& sim, SimTime period) {
  sim.schedule_every(period, [this, &sim] { poll(sim.now()); });
}

const AggregateJobStatus* Aggregator::status(TaskId job) const {
  auto it = jobs_.find(job.value());
  return it == jobs_.end() ? nullptr : &it->second.status;
}

std::size_t Aggregator::active_jobs() const {
  std::size_t n = 0;
  for (const auto& [jid, job] : jobs_) {
    n += (!job.status.completed && !job.status.failed) ? 1 : 0;
  }
  return n;
}

}  // namespace vcl::vcloud
