// Dwell-time estimation (paper §III.A: "how to estimate the duration of
// stay of this vehicle ... under-estimated wastes resources, over-estimated
// fails the task").
//
// Three estimators for the ablation in E8:
//  * kNaive:     assume the vehicle stays forever (what a conventional cloud
//                scheduler would implicitly do).
//  * kKinematic: walk the vehicle's remaining route at its current speed
//                (what an on-board estimator can actually compute).
//  * kOracle:    walk the route at per-link speed limits (upper bound on
//                knowledge; only the simulator can do this).
#pragma once

#include "mobility/traffic.h"

namespace vcl::vcloud {

enum class DwellMode : std::uint8_t { kNaive, kKinematic, kOracle };

const char* to_string(DwellMode mode);

// Seconds until `v` leaves the disc (center, radius); +inf possible.
double estimate_dwell(const mobility::TrafficModel& traffic, VehicleId v,
                      geo::Vec2 center, double radius, DwellMode mode);

}  // namespace vcl::vcloud
