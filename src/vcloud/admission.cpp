#include "vcloud/admission.h"

namespace vcl::vcloud {

void AdmissionControl::note_revoked(VehicleId v, SimTime now) {
  ++stats_.revocations;
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kAuth, "auth.revoke", v.value());
  }
}

void AdmissionControl::deliver_crl(VehicleId v, SimTime visible_at,
                                   SimTime horizon_at, SimTime now) {
  crl_.revoke(v.value());
  deliveries_[v.value()] = Delivery{visible_at, horizon_at};
  ++stats_.crl_deliveries;
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kAuth, "auth.crl.deliver",
                    v.value(), 0, horizon_at);
  }
}

void AdmissionControl::lift_revocation(VehicleId v) {
  deliveries_.erase(v.value());
}

bool AdmissionControl::revoked_visible(VehicleId v, SimTime now) const {
  // Bloom fast path first: the common "not revoked" answer never touches
  // the timing map (and a superseded entry erased from the map overrides a
  // surviving Bloom positive — the filter is append-only).
  if (!crl_.is_revoked(v.value())) return false;
  const auto it = deliveries_.find(v.value());
  return it != deliveries_.end() && now >= it->second.visible_at;
}

SimTime AdmissionControl::revocation_horizon(VehicleId v) const {
  const auto it = deliveries_.find(v.value());
  return it == deliveries_.end() ? std::numeric_limits<double>::infinity()
                                 : it->second.horizon_at;
}

bool AdmissionControl::allow_arrival(VehicleId v, SimTime now) {
  if (!config_.defend) return true;
  if (!revoked_visible(v, now)) return true;
  ++stats_.arrivals_rejected;
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kAuth, "auth.arrival.reject",
                    v.value());
  }
  return false;
}

void AdmissionControl::note_evicted(VehicleId v, SimTime now) {
  ++stats_.revoked_evictions;
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kAuth, "auth.evict", v.value());
  }
}

AdmissionControl::ClaimOutcome AdmissionControl::offer_claim(VehicleId v,
                                                             bool fabricated,
                                                             SimTime now) {
  if (fabricated) ++stats_.sybil_claims;
  if (!config_.defend) {
    // Door wide open: the claim becomes a full member (the pollution the
    // E24 vulnerable baseline measures).
    admitted_claims_.insert(v.value());
    if (fabricated) ++stats_.sybil_admitted;
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kAttack, "attack.sybil.admit",
                      v.value(), fabricated ? 1 : 0);
    }
    return ClaimOutcome::kAdmitted;
  }
  if (revoked_visible(v, now)) {
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kAttack, "attack.claim.reject",
                      v.value());
    }
    return ClaimOutcome::kRejected;
  }
  if (fabricated) {
    // Verification policy: an unverifiable identity may be admitted only
    // while the configured tolerance lasts; past it, quarantine — the pen
    // costs capacity, never correctness.
    if (unverified_admitted_ < config_.max_unverified_admissions) {
      ++unverified_admitted_;
      ++stats_.sybil_admitted;
      admitted_claims_.insert(v.value());
      if (flight_ != nullptr) {
        flight_->record(now, obs::FlightCategory::kAttack,
                        "attack.sybil.admit", v.value(), 1);
      }
      return ClaimOutcome::kAdmitted;
    }
    quarantine_.insert(v.value());
    ++stats_.sybil_quarantined;
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kAttack,
                      "attack.sybil.quarantine", v.value());
    }
    return ClaimOutcome::kQuarantined;
  }
  // A genuine identity re-presenting itself (e.g. a fresh join that passed
  // the freshness gate): admit.
  admitted_claims_.insert(v.value());
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kAttack, "attack.claim.admit",
                    v.value());
  }
  return ClaimOutcome::kAdmitted;
}

bool AdmissionControl::accept_replay(SimTime original_ts, std::uint64_t nonce,
                                     SimTime now) {
  ++stats_.replays_seen;
  if (!config_.defend) {
    ++stats_.replays_accepted;
    return true;
  }
  // Round-trip the real envelope: timestamp || nonce || (empty body), then
  // the checker's strict-staleness + remembered-nonce verdict.
  const crypto::Bytes payload =
      attack::make_fresh_payload(crypto::Bytes{}, original_ts, nonce);
  if (freshness_.accept(payload, now)) {
    ++stats_.replays_accepted;
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kAttack,
                      "attack.replay.accept", nonce);
    }
    return true;
  }
  ++stats_.replays_rejected;
  if (flight_ != nullptr) {
    flight_->record(now, obs::FlightCategory::kAttack, "attack.replay.reject",
                    nonce, 0, now - original_ts);
  }
  return false;
}

}  // namespace vcl::vcloud
