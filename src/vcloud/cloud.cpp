#include "vcloud/cloud.h"

#include <algorithm>

#include "cluster/cluster_manager.h"

namespace vcl::vcloud {

VehicularCloud::VehicularCloud(CloudId id, net::Network& net,
                               MembershipFn membership, RegionFn region,
                               std::unique_ptr<Scheduler> scheduler,
                               CloudConfig config, Rng rng)
    : id_(id),
      net_(net),
      membership_fn_(std::move(membership)),
      region_fn_(std::move(region)),
      scheduler_(std::move(scheduler)),
      config_(config),
      rng_(rng) {}

void VehicularCloud::attach() {
  net_.simulator().schedule_every(config_.refresh_period,
                                  [this] { refresh(); });
}

double VehicularCloud::dwell_of(VehicleId v) {
  const CloudRegion region = region_fn_();
  if (region.radius <= 0.0) return 0.0;
  return estimate_dwell(net_.traffic(), v, region.center, region.radius,
                        config_.dwell_mode);
}

std::vector<WorkerView> VehicularCloud::views() {
  std::vector<WorkerView> out;
  out.reserve(workers_.size());
  for (const auto& [vid, w] : workers_) {
    WorkerView view;
    view.id = VehicleId{vid};
    view.profile = w.profile;
    view.busy = w.running.valid();
    view.dwell_seconds = dwell_of(view.id);
    out.push_back(view);
  }
  // Deterministic order (unordered_map iteration is not).
  std::sort(out.begin(), out.end(),
            [](const WorkerView& a, const WorkerView& b) { return a.id < b.id; });
  return out;
}

ResourcePool VehicularCloud::pool() const {
  ResourcePool pool;
  for (const auto& [vid, w] : workers_) pool.add(w.profile);
  return pool;
}

const Task* VehicularCloud::find_task(TaskId id) const {
  auto it = tasks_.find(id.value());
  return it == tasks_.end() ? nullptr : &it->second;
}

bool VehicularCloud::drained() const {
  for (const auto& [tid, t] : tasks_) {
    if (!t.terminal()) return false;
  }
  return true;
}

TaskId VehicularCloud::submit(Task spec) {
  spec.id = TaskId{next_task_id_++};
  spec.state = TaskState::kPending;
  if (spec.created == 0.0) spec.created = net_.simulator().now();
  const TaskId id = spec.id;
  tasks_.emplace(id.value(), std::move(spec));
  task_epoch_[id.value()] = 0;
  pending_.push_back(id);
  ++stats_.submitted;
  dispatch();
  return id;
}

void VehicularCloud::assign(Task& task, WorkerState& worker,
                            VehicleId worker_id, bool charge_input) {
  const SimTime now = net_.simulator().now();
  task.state = TaskState::kRunning;
  task.worker = worker_id;
  const SimTime input_delay =
      charge_input
          ? task.input_mb * 8.0 / std::max(worker.profile.bandwidth_mbps, 0.1)
          : 0.0;
  task.run_started = now + input_delay;
  worker.running = task.id;

  const SimTime exec = task.remaining() / worker.profile.compute;
  const std::uint64_t epoch = ++task_epoch_[task.id.value()];
  const TaskId tid = task.id;
  net_.simulator().schedule_after(input_delay + exec, [this, tid, epoch] {
    on_complete(tid, epoch);
  });
}

void VehicularCloud::dispatch() {
  while (!pending_.empty()) {
    const TaskId tid = pending_.front();
    auto task_it = tasks_.find(tid.value());
    if (task_it == tasks_.end() || task_it->second.terminal()) {
      pending_.pop_front();
      continue;
    }
    Task& task = task_it->second;
    const auto worker_views = views();
    const VehicleId pick = scheduler_->pick(task, worker_views, rng_);
    if (!pick.valid()) return;  // no idle worker: stay queued
    auto worker_it = workers_.find(pick.value());
    if (worker_it == workers_.end() || worker_it->second.running.valid()) {
      return;  // scheduler picked a busy/gone worker: wait for refresh
    }
    pending_.pop_front();
    stats_.queue_delay.add(net_.simulator().now() - task.created);
    assign(task, worker_it->second, pick, /*charge_input=*/true);
  }
}

void VehicularCloud::on_complete(TaskId id, std::uint64_t epoch) {
  auto it = tasks_.find(id.value());
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (task_epoch_[id.value()] != epoch) return;  // stale completion event
  if (task.state != TaskState::kRunning) return;

  const SimTime now = net_.simulator().now();
  task.progress = task.work;
  task.completed_at = now;
  auto worker_it = workers_.find(task.worker.value());
  if (worker_it != workers_.end() && worker_it->second.running == id) {
    worker_it->second.running = TaskId{};
  }
  if (task.deadline > 0.0 && now > task.deadline) {
    task.state = TaskState::kExpired;
    ++stats_.expired;
  } else {
    task.state = TaskState::kCompleted;
    ++stats_.completed;
    stats_.latency.add(now - task.created);
    if (completion_hook_) completion_hook_(task);
  }
  dispatch();
}

void VehicularCloud::interrupt_and_recover(Task& task,
                                           const WorkerState& departed) {
  const SimTime now = net_.simulator().now();
  // Progress earned so far on the departed worker — only when it was
  // actually executing. A task whose MIGRATION TARGET departed mid-transfer
  // is in kMigrating and earned nothing there (and its run_started still
  // refers to the previous worker).
  if (task.state == TaskState::kRunning && now > task.run_started) {
    task.progress = std::min(
        task.work, task.progress + (now - task.run_started) *
                                       departed.profile.compute);
  }
  ++task_epoch_[task.id.value()];  // invalidate the scheduled completion

  if (config_.handover.enabled) {
    // Migrate the encrypted checkpoint to the best idle member.
    const auto worker_views = views();
    const VehicleId target = scheduler_->pick(task, worker_views, rng_);
    auto target_it = target.valid() ? workers_.find(target.value())
                                    : workers_.end();
    if (target_it != workers_.end() && !target_it->second.running.valid()) {
      const SimTime latency =
          migration_latency(task, departed.profile, target_it->second.profile,
                            config_.handover, config_.costs);
      task.state = TaskState::kMigrating;
      task.worker = target;
      ++task.migrations;
      ++stats_.migrations;
      target_it->second.running = task.id;  // reserve the target
      const TaskId tid = task.id;
      const std::uint64_t epoch = task_epoch_[tid.value()];
      net_.simulator().schedule_after(latency, [this, tid, epoch] {
        auto it = tasks_.find(tid.value());
        if (it == tasks_.end()) return;
        Task& t = it->second;
        if (task_epoch_[tid.value()] != epoch ||
            t.state != TaskState::kMigrating) {
          return;
        }
        auto w = workers_.find(t.worker.value());
        if (w == workers_.end()) {
          // Target vanished during the transfer: back to the queue with
          // progress preserved (the checkpoint still exists at the broker).
          t.state = TaskState::kPending;
          pending_.push_back(t.id);
          dispatch();
          return;
        }
        assign(t, w->second, t.worker, /*charge_input=*/false);
      });
      return;
    }
    // No target: keep the checkpoint, re-queue with progress preserved.
    task.state = TaskState::kPending;
    task.worker = VehicleId{};
    pending_.push_back(task.id);
    return;
  }

  // No handover: the paper's drop-and-recompute case.
  stats_.wasted_work += task.progress;
  ++stats_.reallocations;
  task.progress = 0.0;
  task.state = TaskState::kPending;
  task.worker = VehicleId{};
  pending_.push_back(task.id);
}

void VehicularCloud::refresh() {
  const SimTime now = net_.simulator().now();
  const std::vector<VehicleId> members = membership_fn_();
  std::unordered_map<std::uint64_t, bool> present;
  for (const VehicleId v : members) present[v.value()] = true;

  // Departures first: their tasks need recovery before dispatch reuses the
  // freed capacity.
  std::vector<std::uint64_t> departed;
  for (const auto& [vid, w] : workers_) {
    if (present.find(vid) == present.end()) departed.push_back(vid);
  }
  for (const std::uint64_t vid : departed) {
    WorkerState state = workers_[vid];
    workers_.erase(vid);
    if (state.running.valid()) {
      auto it = tasks_.find(state.running.value());
      if (it != tasks_.end() && !it->second.terminal()) {
        interrupt_and_recover(it->second, state);
      }
    }
  }

  // Arrivals.
  for (const VehicleId v : members) {
    if (workers_.find(v.value()) != workers_.end()) continue;
    const mobility::VehicleState* s = net_.traffic().find(v);
    if (s == nullptr) continue;
    workers_.emplace(v.value(),
                     WorkerState{profile_for(s->automation), TaskId{}});
  }

  // Broker re-election.
  broker_.elect(views());

  // Expire pending tasks past their deadlines.
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto task_it = tasks_.find(it->value());
    if (task_it != tasks_.end() && task_it->second.deadline > 0.0 &&
        now > task_it->second.deadline) {
      task_it->second.state = TaskState::kExpired;
      ++stats_.expired;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Abort running/migrating tasks past their deadlines: finishing them
  // late has no value and blocks the worker.
  for (auto& [tid, task] : tasks_) {
    if (task.terminal() || task.deadline <= 0.0 || now <= task.deadline) {
      continue;
    }
    if (task.state == TaskState::kRunning ||
        task.state == TaskState::kMigrating) {
      ++task_epoch_[tid];  // invalidate completion/migration events
      auto worker_it = workers_.find(task.worker.value());
      if (worker_it != workers_.end() &&
          worker_it->second.running == task.id) {
        worker_it->second.running = TaskId{};
      }
      task.state = TaskState::kExpired;
      ++stats_.expired;
    }
  }

  dispatch();
}

// ---- architecture factories --------------------------------------------------

VehicularCloud::MembershipFn stationary_membership(
    const mobility::TrafficModel& traffic, geo::Vec2 center, double radius) {
  return [&traffic, center, radius] {
    std::vector<VehicleId> out;
    for (const auto& [vid, v] : traffic.vehicles()) {
      if (v.parked && geo::distance(v.pos, center) <= radius) {
        out.push_back(v.id);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
}

VehicularCloud::RegionFn fixed_region(geo::Vec2 center, double radius) {
  return [center, radius] { return CloudRegion{center, radius}; };
}

VehicularCloud::MembershipFn rsu_membership(const net::Network& net,
                                            RsuId rsu) {
  return [&net, rsu] {
    std::vector<VehicleId> out;
    const net::Rsu* r = net.rsus().find(rsu);
    if (r == nullptr || !r->online) return out;
    for (const auto& [vid, v] : net.traffic().vehicles()) {
      if (geo::distance(v.pos, r->pos) <= r->range) out.push_back(v.id);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
}

VehicularCloud::RegionFn rsu_region(const net::Network& net, RsuId rsu) {
  return [&net, rsu] {
    const net::Rsu* r = net.rsus().find(rsu);
    if (r == nullptr || !r->online) return CloudRegion{{0, 0}, 0.0};
    return CloudRegion{r->pos, r->range};
  };
}

VehicularCloud::MembershipFn largest_cluster_membership(
    const cluster::ClusterManager& manager) {
  return [&manager] {
    std::vector<VehicleId> best;
    for (const auto& [head, members] : manager.clusters()) {
      if (members.size() > best.size()) best = members;
    }
    return best;
  };
}

VehicularCloud::RegionFn members_centroid_region(
    const mobility::TrafficModel& traffic,
    VehicularCloud::MembershipFn membership, double radius) {
  return [&traffic, membership = std::move(membership), radius] {
    const std::vector<VehicleId> members = membership();
    if (members.empty()) return CloudRegion{{0, 0}, 0.0};
    geo::Vec2 centroid;
    std::size_t n = 0;
    for (const VehicleId v : members) {
      const mobility::VehicleState* s = traffic.find(v);
      if (s == nullptr) continue;
      centroid += s->pos;
      ++n;
    }
    if (n == 0) return CloudRegion{{0, 0}, 0.0};
    return CloudRegion{centroid / static_cast<double>(n), radius};
  };
}

}  // namespace vcl::vcloud
