#include "vcloud/cloud.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "cluster/cluster_manager.h"
#include "util/table.h"
#include "vcloud/admission.h"
#include "vcloud/invariant_oracle.h"

namespace vcl::vcloud {

namespace {
// run_started sentinel while a task is assigned but not yet executing
// (dispatch ack outstanding, or its worker crashed): no progress accrues.
constexpr SimTime kNeverStarted = std::numeric_limits<double>::infinity();
// Control-plane descriptor size for dispatch/result envelopes; the bulk
// input/output transfer is charged separately as bandwidth time.
constexpr std::size_t kControlBytes = 512;
}  // namespace

// ---- CloudStats reporting ---------------------------------------------------

std::string CloudStats::to_string() const {
  std::ostringstream os;
  os << "completed " << completed << "/" << submitted << " (rate "
     << Table::num(completion_rate(), 2) << "), expired " << expired
     << ", migrations " << migrations << ", reallocations " << reallocations
     << ", retries " << retries << ", kills " << crash_kills << " crash + "
     << false_positive_kills << " false, wasted "
     << Table::num(wasted_work, 1) << ", redundant "
     << Table::num(redundant_work, 1) << ", detect_mean "
     << Table::num(detection_latency.mean(), 2) << " s";
  return os.str();
}

std::vector<std::string> CloudStats::table_columns() {
  return {"submitted", "completed", "expired",   "migr",      "realloc",
          "retries",   "kills",     "fp_kills",  "replicas",  "wasted",
          "redundant", "det_lat_s", "p95_lat_s"};
}

std::vector<std::string> CloudStats::table_row() const {
  return {std::to_string(submitted),
          std::to_string(completed),
          std::to_string(expired),
          std::to_string(migrations),
          std::to_string(reallocations),
          std::to_string(retries),
          std::to_string(crash_kills),
          std::to_string(false_positive_kills),
          std::to_string(replicas_launched),
          Table::num(wasted_work, 1),
          Table::num(redundant_work, 1),
          Table::num(detection_latency.mean(), 2),
          // Sketch-backed: alpha-relative-accurate in fixed memory (the
          // latency Accumulator no longer retains samples).
          Table::num(latency_tail.percentile(95), 1)};
}

// ---- VehicularCloud ---------------------------------------------------------

VehicularCloud::VehicularCloud(CloudId id, net::Network& net,
                               MembershipFn membership, RegionFn region,
                               std::unique_ptr<Scheduler> scheduler,
                               CloudConfig config, Rng rng)
    : id_(id),
      net_(net),
      membership_fn_(std::move(membership)),
      region_fn_(std::move(region)),
      scheduler_(std::move(scheduler)),
      config_(config),
      rng_(rng),
      detector_(config.dependability.detector) {}

void VehicularCloud::attach() {
  net_.simulator().schedule_every(
      config_.refresh_period, [this] { refresh(); }, -1.0, "cloud.refresh");
  if (config_.dependability.detector.enabled) {
    net_.simulator().schedule_every(
        config_.dependability.detector.heartbeat_period,
        [this] { heartbeat_round(); }, -1.0, "cloud.heartbeat");
  }
  if (config_.dependability.checkpoint.enabled) {
    net_.simulator().schedule_every(
        config_.dependability.checkpoint.period,
        [this] { checkpoint_round(); }, -1.0, "cloud.checkpoint");
  }
}

double VehicularCloud::dwell_of(VehicleId v) {
  const CloudRegion region = region_fn_();
  if (region.radius <= 0.0) return 0.0;
  return estimate_dwell(net_.traffic(), v, region.center, region.radius,
                        config_.dwell_mode);
}

std::vector<WorkerView> VehicularCloud::views() {
  std::vector<WorkerView> out;
  out.reserve(workers_.size());
  for (const auto& [vid, w] : workers_) {
    WorkerView view;
    view.id = VehicleId{vid};
    view.profile = w.profile;
    view.busy = w.running.valid();
    view.dwell_seconds = dwell_of(view.id);
    out.push_back(view);
  }
  // Deterministic order (unordered_map iteration is not).
  std::sort(out.begin(), out.end(),
            [](const WorkerView& a, const WorkerView& b) { return a.id < b.id; });
  return out;
}

std::vector<VehicleId> VehicularCloud::worker_ids() const {
  std::vector<VehicleId> out;
  out.reserve(workers_.size());
  for (const std::uint64_t vid : sorted_worker_ids()) out.push_back(VehicleId{vid});
  return out;
}

std::vector<std::uint64_t> VehicularCloud::sorted_worker_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(workers_.size());
  for (const auto& [vid, w] : workers_) ids.push_back(vid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

ResourcePool VehicularCloud::pool() const {
  ResourcePool pool;
  for (const auto& [vid, w] : workers_) pool.add(w.profile);
  return pool;
}

const Task* VehicularCloud::find_task(TaskId id) const {
  auto it = tasks_.find(id.value());
  return it == tasks_.end() ? nullptr : &it->second;
}

void VehicularCloud::for_each_task(
    const std::function<void(const Task&)>& fn) const {
  // Sorted ids so oracle reports are deterministic across runs.
  std::vector<std::uint64_t> ids;
  ids.reserve(tasks_.size());
  for (const auto& [tid, t] : tasks_) ids.push_back(tid);
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t tid : ids) fn(tasks_.at(tid));
}

std::vector<TaskId> VehicularCloud::pending_ids() const {
  return {pending_.begin(), pending_.end()};
}

TaskId VehicularCloud::running_on(VehicleId v) const {
  auto it = workers_.find(v.value());
  return it == workers_.end() ? TaskId{} : it->second.running;
}

const ResourceProfile* VehicularCloud::worker_profile(VehicleId v) const {
  auto it = workers_.find(v.value());
  return it == workers_.end() ? nullptr : &it->second.profile;
}

bool VehicularCloud::drained() const {
  for (const auto& [tid, t] : tasks_) {
    if (!t.terminal()) return false;
  }
  return true;
}

double VehicularCloud::earned_progress(const Task& task,
                                       const ResourceProfile& profile,
                                       SimTime now) const {
  if (task.state != TaskState::kRunning || now <= task.run_started) {
    return task.progress;
  }
  return std::min(task.work,
                  task.progress + (now - task.run_started) * profile.compute);
}

// ---- causal span tracing ----------------------------------------------------
// The cloud keeps exactly one `leg.*` span open per live traced task;
// trace_open_leg closes the previous leg at the same instant, so the legs
// partition [submit, terminal] and a breakdown over them sums to the
// end-to-end latency by construction (DESIGN.md §8). No simulator events
// are scheduled for tracing — it only piggybacks on transitions that
// already happen, so the event ordering (and thus the run) is unchanged.

void VehicularCloud::trace_task_start(Task& task) {
  if (trace_ == nullptr) return;
  const SimTime now = net_.simulator().now();
  // A pre-stamped context (the DAG scheduler's dag.run root) makes this
  // task a child subtree of an existing trace; otherwise it roots its own.
  const std::uint64_t parent_span = task.trace.span_id;
  if (task.trace.trace_id == 0) task.trace.trace_id = trace_->new_trace_id();
  task.trace.span_id = trace_->begin_span(
      now, obs::TraceCategory::kTask, "task.life",
      obs::TraceContext{task.trace.trace_id, parent_span},
      {{"task", static_cast<double>(task.id.value())},
       {"work", task.work},
       {"deadline", task.deadline}});
  trace_open_leg(task, "leg.queue");
}

void VehicularCloud::trace_open_leg(
    Task& task, const char* name,
    std::initializer_list<obs::TraceRecorder::Field> fields) {
  if (trace_ == nullptr || !task.trace.valid()) return;
  trace_close_leg(task);
  task.open_leg =
      trace_->begin_span(net_.simulator().now(), obs::TraceCategory::kTask,
                         name, task.trace, fields);
  task.open_leg_name = name;
}

void VehicularCloud::trace_close_leg(
    Task& task, std::initializer_list<obs::TraceRecorder::Field> fields) {
  if (trace_ == nullptr || task.open_leg == 0) return;
  trace_->end_span(net_.simulator().now(), obs::TraceCategory::kTask,
                   task.open_leg_name,
                   obs::TraceContext{task.trace.trace_id, task.open_leg},
                   fields);
  task.open_leg = 0;
  task.open_leg_name = "";
}

void VehicularCloud::trace_task_end(Task& task, double outcome) {
  if (trace_ == nullptr || task.trace.span_id == 0) return;
  trace_close_leg(task);
  trace_->end_span(net_.simulator().now(), obs::TraceCategory::kTask,
                   "task.life", task.trace, {{"outcome", outcome}});
  // Keep trace_id for post-mortem lookup; zero the root span id so a
  // second terminal transition can never double-close the tree.
  task.trace.span_id = 0;
}

TaskId VehicularCloud::submit(Task spec) {
  spec.id = TaskId{next_task_id_++};
  spec.state = TaskState::kPending;
  if (spec.created == 0.0) spec.created = net_.simulator().now();
  const TaskId id = spec.id;
  tasks_.emplace(id.value(), std::move(spec));
  task_epoch_[id.value()] = 0;
  pending_.push_back(id);
  ++stats_.submitted;
  if (trace_ != nullptr) {
    Task& t = tasks_.at(id.value());
    trace_task_start(t);
    trace_->record(net_.simulator().now(), obs::TraceCategory::kTask,
                   "task.submit", t.trace,
                   {{"task", static_cast<double>(id.value())},
                    {"work", t.work},
                    {"deadline", t.deadline}});
  }
  dispatch();
  return id;
}

void VehicularCloud::assign(Task& task, WorkerState& worker,
                            VehicleId worker_id, bool charge_input) {
  if (trace_ != nullptr) {
    trace_->record(net_.simulator().now(), obs::TraceCategory::kTask,
                   "task.dispatch", task.trace,
                   {{"task", static_cast<double>(task.id.value())},
                    {"worker", static_cast<double>(worker_id.value())},
                    {"progress", task.progress}});
  }
  task.state = TaskState::kRunning;
  task.worker = worker_id;
  worker.running = task.id;
  trace_open_leg(task, "leg.dispatch",
                 {{"worker", static_cast<double>(worker_id.value())}});
  const std::uint64_t epoch = ++task_epoch_[task.id.value()];
  if (config_.dependability.retry.enabled && charge_input) {
    // The dispatch must be acked over the lossy channel before execution
    // starts; no progress accrues until the worker confirms.
    task.run_started = kNeverStarted;
    attempt_dispatch_send(task.id, epoch, 1);
    return;
  }
  begin_execution(task, worker, charge_input, epoch);
}

void VehicularCloud::begin_execution(Task& task, WorkerState& worker,
                                     bool charge_input, std::uint64_t epoch) {
  const SimTime now = net_.simulator().now();
  const SimTime input_delay =
      charge_input
          ? task.input_mb * 8.0 / std::max(worker.profile.bandwidth_mbps, 0.1)
          : 0.0;
  task.state = TaskState::kRunning;
  task.run_started = now + input_delay;
  // The exec leg starts at the dispatch ack; the leading input transfer is
  // carried as `input_s` so the analyzer re-attributes it to the network.
  trace_open_leg(task, "leg.exec",
                 {{"worker", static_cast<double>(task.worker.value())},
                  {"input_s", input_delay}});

  const SimTime exec = task.remaining() / worker.profile.compute;
  const TaskId tid = task.id;
  net_.simulator().schedule_after(
      input_delay + exec, [this, tid, epoch] { on_complete(tid, epoch); },
      "cloud.task");
}

void VehicularCloud::attempt_dispatch_send(TaskId id, std::uint64_t epoch,
                                           int attempt) {
  auto it = tasks_.find(id.value());
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (task_epoch_[id.value()] != epoch || task.state != TaskState::kRunning) {
    return;
  }
  auto worker_it = workers_.find(task.worker.value());
  if (worker_it == workers_.end() || !(worker_it->second.running == id)) {
    return;
  }

  const VehicleId broker = broker_.current();
  net::Message msg;
  msg.id = net_.next_message_id();
  msg.kind = net::MessageKind::kTaskAssign;
  msg.src = net::Address::vehicle(broker.valid() ? broker : task.worker);
  msg.dst = net::Address::vehicle(task.worker);
  msg.size_bytes = kControlBytes;
  msg.trace = obs::TraceContext{
      task.trace.trace_id,
      task.open_leg != 0 ? task.open_leg : task.trace.span_id};
  if (net_.send(msg)) {
    begin_execution(task, worker_it->second, /*charge_input=*/true, epoch);
    return;
  }

  ++stats_.retries;
  if (trace_ != nullptr) {
    trace_->record(net_.simulator().now(), obs::TraceCategory::kTask,
                   "task.retry", task.trace,
                   {{"task", static_cast<double>(id.value())},
                    {"attempt", static_cast<double>(attempt)},
                    {"kind", 1.0}});  // 1 = dispatch, 2 = result
  }
  const SimTime delay =
      retry_backoff(config_.dependability.retry, attempt, rng_);
  if (attempt >= config_.dependability.retry.max_attempts) {
    // Unreachable worker (dead, partitioned, or unlucky): free it and
    // re-queue; the next dispatch round will try elsewhere.
    worker_it->second.running = TaskId{};
    ++task_epoch_[id.value()];
    task.state = TaskState::kPending;
    task.worker = VehicleId{};
    task.run_started = 0.0;
    pending_.push_back(id);
    trace_open_leg(task, "leg.queue");
    net_.simulator().schedule_after(delay, [this] { dispatch(); },
                                    "cloud.dispatch");
    return;
  }
  net_.simulator().schedule_after(
      delay,
      [this, id, epoch, attempt] { attempt_dispatch_send(id, epoch, attempt + 1); },
      "cloud.retry");
}

void VehicularCloud::attempt_result_send(TaskId id, std::uint64_t epoch,
                                         int attempt) {
  auto it = tasks_.find(id.value());
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (task_epoch_[id.value()] != epoch || task.state != TaskState::kRunning) {
    return;
  }
  // A worker that crashed while holding the result can never deliver it;
  // the failure detector (if any) will eventually trigger a re-execution.
  if (crashed_.count(task.worker.value()) > 0) return;

  const VehicleId broker = broker_.current();
  net::Message msg;
  msg.id = net_.next_message_id();
  msg.kind = net::MessageKind::kTaskResult;
  msg.src = net::Address::vehicle(task.worker);
  msg.dst = net::Address::vehicle(broker.valid() ? broker : task.worker);
  msg.size_bytes = kControlBytes;
  msg.trace = obs::TraceContext{
      task.trace.trace_id,
      task.open_leg != 0 ? task.open_leg : task.trace.span_id};
  if (net_.send(msg)) {
    finalize_completion(task);
    return;
  }

  ++stats_.retries;
  if (trace_ != nullptr) {
    trace_->record(net_.simulator().now(), obs::TraceCategory::kTask,
                   "task.retry", task.trace,
                   {{"task", static_cast<double>(id.value())},
                    {"attempt", static_cast<double>(attempt)},
                    {"kind", 2.0}});
  }
  // The worker holds the result and keeps retrying at capped backoff: the
  // task only completes once the broker hears about it.
  const int capped = std::min(attempt, config_.dependability.retry.max_attempts);
  const SimTime delay = retry_backoff(config_.dependability.retry, capped, rng_);
  net_.simulator().schedule_after(
      delay,
      [this, id, epoch, attempt] { attempt_result_send(id, epoch, attempt + 1); },
      "cloud.retry");
}

void VehicularCloud::dispatch() {
  if (net_.simulator().now() < dispatch_hold_until_) return;
  while (!pending_.empty()) {
    const TaskId tid = pending_.front();
    auto task_it = tasks_.find(tid.value());
    if (task_it == tasks_.end() || task_it->second.terminal()) {
      pending_.pop_front();
      continue;
    }
    Task& task = task_it->second;
    const auto worker_views = views();
    const VehicleId pick = scheduler_->pick(task, worker_views, rng_);
    if (!pick.valid()) return;  // no idle worker: stay queued
    auto worker_it = workers_.find(pick.value());
    if (worker_it == workers_.end() || worker_it->second.running.valid()) {
      return;  // scheduler picked a busy/gone worker: wait for refresh
    }
    pending_.pop_front();
    const SimTime queued = net_.simulator().now() - task.created;
    stats_.queue_delay.add(queued);
    stats_.queue_delay_tail.add(queued);
    assign(task, worker_it->second, pick, /*charge_input=*/true);
    maybe_replicate(task);
  }
}

void VehicularCloud::maybe_replicate(Task& task) {
  const SpeculationConfig& spec = config_.dependability.speculation;
  if (!spec.enabled || task.deadline <= 0.0) return;
  if (replicas_.find(task.id.value()) != replicas_.end()) return;
  if (!pending_.empty()) return;  // speculation must never starve the queue

  const auto worker_views = views();
  std::size_t idle = 0;
  for (const WorkerView& w : worker_views) idle += w.busy ? 0 : 1;
  if (idle <= spec.min_spare_workers) return;

  const VehicleId pick = scheduler_->pick(task, worker_views, rng_);
  if (!pick.valid() || pick == task.worker) return;
  auto worker_it = workers_.find(pick.value());
  if (worker_it == workers_.end() || worker_it->second.running.valid()) return;

  const SimTime now = net_.simulator().now();
  WorkerState& worker = worker_it->second;
  ReplicaState replica;
  replica.worker = pick;
  replica.base_progress = task.progress;
  const SimTime input_delay =
      task.input_mb * 8.0 / std::max(worker.profile.bandwidth_mbps, 0.1);
  replica.run_started = now + input_delay;
  replica.epoch = next_replica_epoch_++;
  worker.running = task.id;
  replicas_[task.id.value()] = replica;
  ++stats_.replicas_launched;
  if (trace_ != nullptr) {
    trace_->record(now, obs::TraceCategory::kTask, "task.replica",
                   task.trace,
                   {{"task", static_cast<double>(task.id.value())},
                    {"worker", static_cast<double>(pick.value())}});
  }

  const SimTime exec =
      (task.work - replica.base_progress) / worker.profile.compute;
  const TaskId tid = task.id;
  const std::uint64_t epoch = replica.epoch;
  net_.simulator().schedule_after(
      input_delay + exec,
      [this, tid, epoch] { on_replica_complete(tid, epoch); }, "cloud.task");
}

// Work units a replica has produced by `now` (bounded by what it set out
// to compute).
double VehicularCloud::earned_by_replica(const ReplicaState& r,
                                         const ResourceProfile& profile,
                                         const Task& task, SimTime now) {
  if (now <= r.run_started) return 0.0;
  return std::min((now - r.run_started) * profile.compute,
                  task.work - r.base_progress);
}

void VehicularCloud::abort_replica(TaskId id) {
  auto rep = replicas_.find(id.value());
  if (rep == replicas_.end()) return;
  const ReplicaState replica = rep->second;
  replicas_.erase(rep);
  auto worker_it = workers_.find(replica.worker.value());
  if (worker_it == workers_.end() || !(worker_it->second.running == id)) {
    return;
  }
  auto task_it = tasks_.find(id.value());
  if (task_it != tasks_.end()) {
    stats_.redundant_work += earned_by_replica(
        replica, worker_it->second.profile, task_it->second,
        net_.simulator().now());
  }
  // A crashed holder stays "busy" — the cloud does not know it is gone.
  if (crashed_.count(replica.worker.value()) == 0) {
    worker_it->second.running = TaskId{};
  }
}

void VehicularCloud::on_replica_complete(TaskId id, std::uint64_t epoch) {
  auto rep = replicas_.find(id.value());
  if (rep == replicas_.end() || rep->second.epoch != epoch) return;
  const ReplicaState replica = rep->second;
  auto task_it = tasks_.find(id.value());
  if (task_it == tasks_.end()) {
    replicas_.erase(id.value());
    return;
  }
  Task& task = task_it->second;
  if (crashed_.count(replica.worker.value()) > 0) {
    // Computed into the void: a crashed worker cannot return its result.
    replicas_.erase(id.value());
    stats_.redundant_work += task.work - replica.base_progress;
    return;
  }
  replicas_.erase(id.value());
  const SimTime now = net_.simulator().now();
  if (task.terminal()) {
    auto worker_it = workers_.find(replica.worker.value());
    if (worker_it != workers_.end() && worker_it->second.running == id) {
      worker_it->second.running = TaskId{};
    }
    return;
  }

  // First finisher wins: the primary (if still assigned) lost the race and
  // its work is redundancy overhead.
  if (task.worker.valid() && task.worker != replica.worker) {
    auto primary_it = workers_.find(task.worker.value());
    if (primary_it != workers_.end()) {
      stats_.redundant_work += std::max(
          0.0,
          earned_progress(task, primary_it->second.profile, now) -
              task.progress);
      if (primary_it->second.running == id) {
        primary_it->second.running = TaskId{};
      }
    }
  }
  ++task_epoch_[id.value()];  // cancel the primary's completion event
  task.worker = replica.worker;
  task.state = TaskState::kRunning;
  finalize_completion(task);
}

void VehicularCloud::on_complete(TaskId id, std::uint64_t epoch) {
  auto it = tasks_.find(id.value());
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (task_epoch_[id.value()] != epoch) return;  // stale completion event
  if (task.state != TaskState::kRunning) return;
  // A crashed worker computes into the void: no result ever returns, and
  // without a failure detector nobody ever learns (§III's collapse case).
  if (crashed_.count(task.worker.value()) > 0) return;

  task.progress = task.work;
  if (config_.dependability.retry.enabled) {
    trace_open_leg(task, "leg.result");
    attempt_result_send(id, epoch, 1);
    return;
  }
  finalize_completion(task);
}

void VehicularCloud::finalize_completion(Task& task) {
  const SimTime now = net_.simulator().now();
  task.progress = task.work;
  task.completed_at = now;
  auto worker_it = workers_.find(task.worker.value());
  if (worker_it != workers_.end() && worker_it->second.running == task.id) {
    worker_it->second.running = TaskId{};
  }
  abort_replica(task.id);  // the losing replica, if one is still computing
  if (task.deadline > 0.0 && now > task.deadline) {
    task.state = TaskState::kExpired;
    ++stats_.expired;
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kTask, "task.expire",
                     task.trace,
                     {{"task", static_cast<double>(task.id.value())}});
    }
    trace_task_end(task, obs::kOutcomeExpired);
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kTask, "task.expire",
                      task.id.value(),
                      task.worker.valid() ? task.worker.value() : 0);
    }
  } else {
    task.state = TaskState::kCompleted;
    ++stats_.completed;
    stats_.latency.add(now - task.created);
    stats_.latency_tail.add(now - task.created);
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kTask, "task.complete",
                     task.trace,
                     {{"task", static_cast<double>(task.id.value())},
                      {"worker", static_cast<double>(task.worker.value())},
                      {"latency", now - task.created}});
    }
    trace_task_end(task, obs::kOutcomeCompleted);
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kTask, "task.complete",
                      task.id.value(), task.worker.value(),
                      now - task.created);
    }
    if (completion_hook_) completion_hook_(task);
  }
  if (oracle_ != nullptr) oracle_->on_terminal(task, now);
  // Last use of `task`: the terminal hook may submit follow-up tasks (DAG
  // children), rehashing tasks_ and invalidating the reference.
  if (terminal_hook_) terminal_hook_(task, now);
  dispatch();
}

void VehicularCloud::interrupt_and_recover(Task& task,
                                           const WorkerState& departed) {
  const SimTime now = net_.simulator().now();
  // Progress earned so far on the departed worker — only when it was
  // actually executing. A task whose MIGRATION TARGET departed mid-transfer
  // is in kMigrating and earned nothing there (and its run_started still
  // refers to the previous worker).
  if (task.state == TaskState::kRunning && now > task.run_started) {
    task.progress = std::min(
        task.work, task.progress + (now - task.run_started) *
                                       departed.profile.compute);
  }
  ++task_epoch_[task.id.value()];  // invalidate the scheduled completion

  if (config_.handover.enabled) {
    // Migrate the encrypted checkpoint to the best idle member.
    const auto worker_views = views();
    const VehicleId target = scheduler_->pick(task, worker_views, rng_);
    auto target_it = target.valid() ? workers_.find(target.value())
                                    : workers_.end();
    if (target_it != workers_.end() && !target_it->second.running.valid()) {
      const SimTime latency =
          migration_latency(task, departed.profile, target_it->second.profile,
                            config_.handover, config_.costs);
      task.state = TaskState::kMigrating;
      task.worker = target;
      ++task.migrations;
      ++stats_.migrations;
      target_it->second.running = task.id;  // reserve the target
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kTask, "task.migrate",
                       task.trace,
                       {{"task", static_cast<double>(task.id.value())},
                        {"to", static_cast<double>(target.value())},
                        {"progress", task.progress}});
      }
      trace_open_leg(task, "leg.migrate",
                     {{"to", static_cast<double>(target.value())}});
      const TaskId tid = task.id;
      const std::uint64_t epoch = task_epoch_[tid.value()];
      net_.simulator().schedule_after(latency, [this, tid, epoch] {
        auto it = tasks_.find(tid.value());
        if (it == tasks_.end()) return;
        Task& t = it->second;
        if (task_epoch_[tid.value()] != epoch ||
            t.state != TaskState::kMigrating) {
          return;
        }
        auto w = workers_.find(t.worker.value());
        if (w == workers_.end()) {
          // Target vanished during the transfer: back to the queue with
          // progress preserved (the checkpoint still exists at the broker).
          t.state = TaskState::kPending;
          pending_.push_back(t.id);
          trace_open_leg(t, "leg.queue");
          dispatch();
          return;
        }
        assign(t, w->second, t.worker, /*charge_input=*/false);
      });
      return;
    }
    // No target: keep the checkpoint, re-queue with progress preserved.
    task.state = TaskState::kPending;
    task.worker = VehicleId{};
    pending_.push_back(task.id);
    trace_open_leg(task, "leg.queue");
    return;
  }

  // No handover: the paper's drop-and-recompute case. Periodic checkpoints
  // (when enabled) still provide a crash-survivable floor at the broker.
  const double resume = config_.dependability.checkpoint.enabled
                            ? std::min(task.checkpoint_progress, task.progress)
                            : 0.0;
  stats_.wasted_work += std::max(0.0, task.progress - resume);
  ++stats_.reallocations;
  task.progress = resume;
  task.state = TaskState::kPending;
  task.worker = VehicleId{};
  pending_.push_back(task.id);
  trace_open_leg(task, "leg.queue");
}

void VehicularCloud::recover_from_crash(Task& task) {
  double resume = 0.0;
  if (task.state == TaskState::kMigrating) {
    // The in-flight checkpoint originated at the broker and survives the
    // target's loss.
    resume = task.progress;
  } else if (config_.dependability.checkpoint.enabled) {
    resume = std::min(task.checkpoint_progress, task.progress);
  }
  stats_.wasted_work += std::max(0.0, task.progress - resume);
  if (resume <= 0.0 && task.progress > 0.0) ++stats_.reallocations;
  task.progress = resume;
  task.state = TaskState::kCrashRecovering;
  task.worker = VehicleId{};
  task.run_started = 0.0;
  if (!config_.dependability.test_drop_crash_requeue) {
    pending_.push_back(task.id);
  }  // else: DELIBERATE test-only bug — the task strands un-queued forever
  // Ends the recover leg opened at the crash: the span's duration is the
  // crash -> declared-dead -> requeued detection latency.
  trace_open_leg(task, "leg.queue");
}

void VehicularCloud::crash_worker(VehicleId v) {
  auto it = workers_.find(v.value());
  if (it == workers_.end() || crashed_.count(v.value()) > 0) return;
  const SimTime now = net_.simulator().now();
  crashed_.insert(v.value());
  crash_time_[v.value()] = now;

  if (!it->second.running.valid()) return;
  auto task_it = tasks_.find(it->second.running.value());
  if (task_it == tasks_.end() || task_it->second.terminal()) return;
  Task& task = task_it->second;
  auto rep = replicas_.find(task.id.value());
  if (rep != replicas_.end() && rep->second.worker == v) {
    // A crashed replica holder: its work to date is sunk redundancy. The
    // bookkeeping entry goes now (so the scheduled completion is inert);
    // the zombie worker itself stays until the detector notices.
    stats_.redundant_work +=
        earned_by_replica(rep->second, it->second.profile, task, now);
    replicas_.erase(rep);
    // If the primary was already lost (replica-inherit: kRunning with no
    // worker), the crashed replica was the task's ONLY executor — without
    // this requeue the task strands kRunning forever. Found by the chaos
    // oracle: broker crash kills the primary, a second broker crash lands
    // on the inheriting replica holder. The state check matters: a task
    // already re-queued (kPending/kCrashRecovering) must NOT be queued
    // again.
    if (task.state == TaskState::kRunning && !task.worker.valid()) {
      recover_from_crash(task);
    }
    return;
  }
  if (task.worker == v && task.state == TaskState::kRunning) {
    // Materialize the progress earned up to the crash instant so detection
    // latency does not credit work the dead worker never did.
    task.progress = earned_progress(task, it->second.profile, now);
    task.run_started = kNeverStarted;
    // The exec (or dispatch) leg dies with the worker; the recover leg runs
    // until the failure detector declares the zombie dead and requeues.
    trace_close_leg(task, {{"crashed", 1.0}});
    trace_open_leg(task, "leg.recover",
                   {{"worker", static_cast<double>(v.value())}});
  }
}

void VehicularCloud::handle_worker_loss(VehicleId v,
                                        const WorkerState& state) {
  if (!state.running.valid()) return;
  auto it = tasks_.find(state.running.value());
  if (it == tasks_.end() || it->second.terminal()) return;
  Task& task = it->second;
  const SimTime now = net_.simulator().now();

  auto rep = replicas_.find(task.id.value());
  if (rep != replicas_.end() && rep->second.worker == v) {
    // Lost a replica: discard its work; the primary carries on. Only a
    // replica-inherit task (kRunning, no worker) needs the requeue — a task
    // already back in the queue would end up queued twice (chaos oracle).
    stats_.redundant_work +=
        earned_by_replica(rep->second, state.profile, task, now);
    replicas_.erase(rep);
    if (task.state == TaskState::kRunning && !task.worker.valid()) {
      recover_from_crash(task);  // it was the last executor
    }
    return;
  }
  if (task.worker != v) return;

  const double earned = earned_progress(task, state.profile, now);
  ++task_epoch_[task.id.value()];  // the primary's events are now stale
  if (replicas_.find(task.id.value()) != replicas_.end()) {
    // A replica is still computing: the dead primary's work is redundancy
    // and the replica inherits the task.
    stats_.redundant_work += std::max(0.0, earned - task.progress);
    task.worker = VehicleId{};
    task.run_started = kNeverStarted;
    return;
  }
  task.progress = earned;
  recover_from_crash(task);
}

void VehicularCloud::declare_dead(VehicleId v) {
  detector_.forget(v);
  auto it = workers_.find(v.value());
  if (it == workers_.end()) return;
  const SimTime now = net_.simulator().now();
  if (crashed_.erase(v.value()) > 0) {
    ++stats_.crash_kills;
    auto ct = crash_time_.find(v.value());
    if (ct != crash_time_.end()) {
      stats_.detection_latency.add(now - ct->second);
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kCloud, "cloud.worker.dead",
                       {{"worker", static_cast<double>(v.value())},
                        {"crashed", 1.0},
                        {"latency", now - ct->second}});
      }
      if (flight_ != nullptr) {
        flight_->record(now, obs::FlightCategory::kDetector, "detector.evict",
                        v.value(), 1, now - ct->second);
      }
      crash_time_.erase(ct);
    }
  } else {
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "cloud.worker.dead",
                     {{"worker", static_cast<double>(v.value())},
                      {"crashed", 0.0}});
    }
    // The worker is alive — its beats were eaten by the channel. Killing
    // it anyway is the price of bounded detection latency.
    ++stats_.false_positive_kills;
    if (flight_ != nullptr) {
      flight_->record(now, obs::FlightCategory::kDetector, "detector.evict",
                      v.value(), 0);
    }
  }
  const WorkerState state = it->second;
  workers_.erase(it);
  handle_worker_loss(v, state);
  dispatch();
}

void VehicularCloud::heartbeat_round() {
  if (!config_.dependability.detector.enabled) return;
  const SimTime now = net_.simulator().now();
  const VehicleId broker = broker_.current();
  if (!broker.valid()) return;
  // Sorted ids: heartbeat sends consume shared RNG, order must be stable.
  for (const std::uint64_t vid : sorted_worker_ids()) {
    const VehicleId v{vid};
    if (!detector_.tracked(v)) detector_.track(v, now);
    if (crashed_.count(vid) > 0) continue;  // dead radios do not beat
    if (v == broker) {
      detector_.observe(v, now);  // the broker trivially hears itself
      if (heartbeat_hook_) heartbeat_hook_(v, now);
      continue;
    }
    net::Message beat;
    beat.id = net_.next_message_id();
    beat.kind = net::MessageKind::kHeartbeat;
    beat.src = net::Address::vehicle(v);
    beat.dst = net::Address::vehicle(broker);
    beat.size_bytes = config_.dependability.detector.heartbeat_bytes;
    if (net_.send(beat)) {
      detector_.observe(v, now);
      if (heartbeat_rtt_enabled_) {
        // Modeled round trip (beat + implicit ack) at the channel's hop
        // delay for this beat's size and the worker's local contention —
        // the same model bootstrap registration uses. Gated: the density
        // lookup is a spatial query undisturbed runs must not pay.
        const auto pos = net_.position_of(net::Address::vehicle(v));
        const std::size_t density =
            pos.has_value() ? net_.local_density(*pos) : 0;
        stats_.heartbeat_rtt_tail.add(
            2.0 * net_.channel().hop_delay(beat.size_bytes, density));
      }
      if (heartbeat_hook_) heartbeat_hook_(v, now);
    }
  }
  for (const VehicleId dead : detector_.sweep(now)) declare_dead(dead);
}

void VehicularCloud::checkpoint_round() {
  if (!config_.dependability.checkpoint.enabled) return;
  const SimTime now = net_.simulator().now();
  for (auto& [tid, task] : tasks_) {
    if (task.state != TaskState::kRunning || !task.worker.valid()) continue;
    if (crashed_.count(task.worker.value()) > 0) continue;  // silent worker
    auto worker_it = workers_.find(task.worker.value());
    if (worker_it == workers_.end()) continue;
    const double earned = earned_progress(task, worker_it->second.profile, now);
    if (earned <= task.checkpoint_progress) continue;
    task.checkpoint_progress = earned;
    ++stats_.checkpoints;
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "cloud.ckpt",
                     task.trace,
                     {{"task", static_cast<double>(tid)},
                      {"progress", earned}});
    }
    // Cost accounting reuses the handover checkpoint model: the snapshot
    // shipped to the broker grows with completed work.
    Task snapshot = task;
    snapshot.progress = earned;
    stats_.checkpoint_mb += checkpoint_mb(snapshot, config_.handover);
  }
}

void VehicularCloud::refresh() {
  const SimTime now = net_.simulator().now();
  const std::vector<VehicleId> members = membership_fn_();
  std::unordered_map<std::uint64_t, bool> present;
  for (const VehicleId v : members) present[v.value()] = true;

  // Departures first: their tasks need recovery before dispatch reuses the
  // freed capacity. Crashed workers are NOT departures — nobody told the
  // cloud they left; they stay as zombies until the failure detector (if
  // any) declares them dead.
  std::vector<std::uint64_t> departed;
  for (const auto& [vid, w] : workers_) {
    if (present.find(vid) != present.end()) continue;
    if (crashed_.count(vid) > 0) continue;
    departed.push_back(vid);
  }
  for (const std::uint64_t vid : departed) {
    const VehicleId v{vid};
    WorkerState state = workers_[vid];
    workers_.erase(vid);
    detector_.forget(v);
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "cloud.member.leave",
                     {{"worker", static_cast<double>(vid)},
                      {"members", static_cast<double>(workers_.size())}});
    }
    if (state.running.valid()) {
      auto it = tasks_.find(state.running.value());
      if (it != tasks_.end() && !it->second.terminal()) {
        Task& task = it->second;
        auto rep = replicas_.find(task.id.value());
        if (rep != replicas_.end() && rep->second.worker == v) {
          // A replica holder left gracefully: the hedge is gone. Requeue
          // only from replica-inherit (kRunning, no worker) — an already
          // queued task must not be queued a second time (chaos oracle).
          stats_.redundant_work +=
              earned_by_replica(rep->second, state.profile, task, now);
          replicas_.erase(rep);
          if (task.state == TaskState::kRunning && !task.worker.valid()) {
            recover_from_crash(task);
          }
        } else if (task.worker == v) {
          interrupt_and_recover(task, state);
        }
      }
    }
  }

  // Arrivals. With admission control wired, refresh consults the RSU-side
  // CRL view: a revoked-and-visible identity never re-enters membership.
  for (const VehicleId v : members) {
    if (workers_.find(v.value()) != workers_.end()) continue;
    const mobility::VehicleState* s = net_.traffic().find(v);
    if (s == nullptr) continue;
    if (admission_ != nullptr && !admission_->allow_arrival(v, now)) continue;
    workers_.emplace(v.value(),
                     WorkerState{profile_for(s->automation), TaskId{}});
    detector_.track(v, now);
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "cloud.member.join",
                     {{"worker", static_cast<double>(v.value())},
                      {"members", static_cast<double>(workers_.size())}});
    }
  }

  // Revocation eviction sweep: a member whose fresh CRL entry became
  // visible to the RSUs is evicted NOW — before broker election, so a
  // revoked broker is replaced in the same round. Held work re-queues
  // through the ordinary loss path (requeue, replica-inherit, checkpoint
  // floor), not lost.
  if (admission_ != nullptr) {
    for (const std::uint64_t vid : sorted_worker_ids()) {
      const VehicleId v{vid};
      if (!admission_->should_evict(v, now)) continue;
      const WorkerState state = workers_[vid];
      workers_.erase(vid);
      detector_.forget(v);
      crashed_.erase(vid);
      crash_time_.erase(vid);
      admission_->note_evicted(v, now);
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kCloud,
                       "cloud.member.revoked",
                       {{"worker", static_cast<double>(vid)},
                        {"members", static_cast<double>(workers_.size())}});
      }
      if (!admission_->config().test_drop_revoked_requeue) {
        handle_worker_loss(v, state);
      }
      // else: DELIBERATE test-only bug — the held task strands kRunning on
      // a worker the cloud no longer has (task-conservation catches it).
    }
  }

  // Broker re-election. A change means the new broker must re-sync the
  // queued/running task metadata: dispatch pauses for the configured
  // window and every worker gets a fresh heartbeat grace period.
  const VehicleId prev_broker = broker_.current();
  broker_.elect(views());
  if (prev_broker.valid() && broker_.current() != prev_broker) {
    ++stats_.broker_resyncs;
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceCategory::kCloud, "cloud.broker.change",
                     {{"from", static_cast<double>(prev_broker.value())},
                      {"to", static_cast<double>(broker_.current().value())}});
    }
    detector_.reset_all(now);
    const SimTime delay = config_.dependability.broker_resync_delay;
    if (delay > 0.0) {
      dispatch_hold_until_ = std::max(dispatch_hold_until_, now + delay);
      net_.simulator().schedule_after(delay, [this] { dispatch(); },
                                      "cloud.dispatch");
    }
  }

  // Expire pending tasks past their deadlines. Terminal-hook calls are
  // deferred past both expiry loops: the hook may submit follow-up tasks
  // (DAG children), which would invalidate the deque/map iterators here.
  std::vector<TaskId> reaped;
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto task_it = tasks_.find(it->value());
    if (task_it != tasks_.end() && task_it->second.deadline > 0.0 &&
        now > task_it->second.deadline) {
      task_it->second.state = TaskState::kExpired;
      ++stats_.expired;
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kTask, "task.expire",
                       task_it->second.trace,
                       {{"task", static_cast<double>(task_it->first)}});
      }
      trace_task_end(task_it->second, obs::kOutcomeExpired);
      if (flight_ != nullptr) {
        flight_->record(now, obs::FlightCategory::kTask, "task.expire",
                        task_it->first);
      }
      abort_replica(task_it->second.id);
      if (oracle_ != nullptr) oracle_->on_terminal(task_it->second, now);
      if (terminal_hook_) reaped.push_back(task_it->second.id);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Abort running/migrating tasks past their deadlines: finishing them
  // late has no value and blocks the worker.
  for (auto& [tid, task] : tasks_) {
    if (task.terminal() || task.deadline <= 0.0 || now <= task.deadline) {
      continue;
    }
    if (task.state == TaskState::kRunning ||
        task.state == TaskState::kMigrating) {
      ++task_epoch_[tid];  // invalidate completion/migration events
      abort_replica(task.id);
      auto worker_it = workers_.find(task.worker.value());
      if (worker_it != workers_.end() &&
          worker_it->second.running == task.id) {
        worker_it->second.running = TaskId{};
      }
      task.state = TaskState::kExpired;
      ++stats_.expired;
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceCategory::kTask, "task.expire",
                       task.trace,
                       {{"task", static_cast<double>(tid)}});
      }
      trace_task_end(task, obs::kOutcomeExpired);
      if (flight_ != nullptr) {
        flight_->record(now, obs::FlightCategory::kTask, "task.expire", tid,
                        task.worker.valid() ? task.worker.value() : 0);
      }
      if (oracle_ != nullptr) oracle_->on_terminal(task, now);
      if (terminal_hook_) reaped.push_back(task.id);
    }
  }
  for (const TaskId id : reaped) {
    const auto task_it = tasks_.find(id.value());
    if (task_it != tasks_.end()) terminal_hook_(task_it->second, now);
  }

  dispatch();
  // Post-round maintenance (storage lease bookkeeping + repair) runs after
  // membership and dispatch settle but before the oracle scan, so its
  // invariants (leases ⊆ membership) are quiesced by check time.
  if (refresh_hook_) refresh_hook_(now);
  // End-of-round scan: membership, broker election and deadline reaping
  // have all quiesced — this is the instant the structural invariants are
  // contractually true.
  if (oracle_ != nullptr) oracle_->check(*this, now);
}

bool VehicularCloud::offer_join(VehicleId v, bool fabricated) {
  const SimTime now = net_.simulator().now();
  if (workers_.find(v.value()) != workers_.end()) return true;
  if (admission_ != nullptr &&
      admission_->offer_claim(v, fabricated, now) !=
          AdmissionControl::ClaimOutcome::kAdmitted) {
    return false;  // quarantined or rejected: capacity, not correctness
  }
  const mobility::VehicleState* s = net_.traffic().find(v);
  // A fabricated identity has no vehicle behind it; the forged join
  // advertises a baseline profile.
  workers_.emplace(
      v.value(),
      WorkerState{s != nullptr
                      ? profile_for(s->automation)
                      : profile_for(mobility::AutomationLevel::kNoAutomation),
                  TaskId{}});
  detector_.track(v, now);
  if (trace_ != nullptr) {
    trace_->record(now, obs::TraceCategory::kCloud, "cloud.member.join",
                   {{"worker", static_cast<double>(v.value())},
                    {"claimed", 1.0},
                    {"members", static_cast<double>(workers_.size())}});
  }
  return true;
}

void VehicularCloud::replayed_heartbeat(VehicleId v) {
  auto it = workers_.find(v.value());
  if (it == workers_.end()) return;
  const SimTime now = net_.simulator().now();
  // The replayed beat is indistinguishable from a genuine one past the
  // (bypassed) freshness gate: it refreshes detector liveness — keeping a
  // crashed zombie off the detector's books — and fires the heartbeat hook
  // (lease renewals), exactly the §IV harm.
  if (detector_.tracked(v)) detector_.observe(v, now);
  if (heartbeat_hook_) heartbeat_hook_(v, now);
}

bool VehicularCloud::worker_in_traffic(VehicleId v) const {
  return net_.traffic().find(v) != nullptr;
}

void VehicularCloud::register_metrics(obs::MetricsRegistry& metrics) {
  metrics.gauge("cloud.member.count",
                [this] { return static_cast<double>(workers_.size()); });
  metrics.gauge("cloud.task.pending",
                [this] { return static_cast<double>(pending_.size()); });
  metrics.gauge("cloud.task.submitted",
                [this] { return static_cast<double>(stats_.submitted); });
  metrics.gauge("cloud.task.completed",
                [this] { return static_cast<double>(stats_.completed); });
  metrics.gauge("cloud.task.expired",
                [this] { return static_cast<double>(stats_.expired); });
  metrics.gauge("cloud.task.retries",
                [this] { return static_cast<double>(stats_.retries); });
  metrics.gauge("cloud.broker.changes",
                [this] { return static_cast<double>(broker_.changes()); });
  metrics.gauge("cloud.work.wasted", [this] { return stats_.wasted_work; });
  metrics.gauge("cloud.detect.latency_mean",
                [this] { return stats_.detection_latency.mean(); });
  metrics.gauge("cloud.queue.delay_mean",
                [this] { return stats_.queue_delay.mean(); });
  // Tail sketches: sampled as .count/.p50/.p99/.p999 columns and exported
  // in full to sketches.json.
  metrics.sketch_view("cloud.task.e2e", stats_.latency_tail);
  metrics.sketch_view("cloud.queue.delay", stats_.queue_delay_tail);
  metrics.sketch_view("cloud.heartbeat.rtt", stats_.heartbeat_rtt_tail);
  heartbeat_rtt_enabled_ = true;
}

// ---- architecture factories --------------------------------------------------

VehicularCloud::MembershipFn stationary_membership(
    const mobility::TrafficModel& traffic, geo::Vec2 center, double radius) {
  return [&traffic, center, radius] {
    std::vector<VehicleId> out;
    for (const auto& [vid, v] : traffic.vehicles()) {
      if (v.parked && geo::distance(v.pos, center) <= radius) {
        out.push_back(v.id);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
}

VehicularCloud::RegionFn fixed_region(geo::Vec2 center, double radius) {
  return [center, radius] { return CloudRegion{center, radius}; };
}

VehicularCloud::MembershipFn rsu_membership(const net::Network& net,
                                            RsuId rsu) {
  return [&net, rsu] {
    std::vector<VehicleId> out;
    const net::Rsu* r = net.rsus().find(rsu);
    if (r == nullptr || !r->online) return out;
    for (const auto& [vid, v] : net.traffic().vehicles()) {
      if (geo::distance(v.pos, r->pos) <= r->range) out.push_back(v.id);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
}

VehicularCloud::RegionFn rsu_region(const net::Network& net, RsuId rsu) {
  return [&net, rsu] {
    const net::Rsu* r = net.rsus().find(rsu);
    if (r == nullptr || !r->online) return CloudRegion{{0, 0}, 0.0};
    return CloudRegion{r->pos, r->range};
  };
}

VehicularCloud::MembershipFn largest_cluster_membership(
    const cluster::ClusterManager& manager) {
  return [&manager] {
    std::vector<VehicleId> best;
    for (const auto& [head, members] : manager.clusters()) {
      if (members.size() > best.size()) best = members;
    }
    return best;
  };
}

VehicularCloud::RegionFn members_centroid_region(
    const mobility::TrafficModel& traffic,
    VehicularCloud::MembershipFn membership, double radius) {
  return [&traffic, membership = std::move(membership), radius] {
    const std::vector<VehicleId> members = membership();
    if (members.empty()) return CloudRegion{{0, 0}, 0.0};
    geo::Vec2 centroid;
    std::size_t n = 0;
    for (const VehicleId v : members) {
      const mobility::VehicleState* s = traffic.find(v);
      if (s == nullptr) continue;
      centroid += s->pos;
      ++n;
    }
    if (n == 0) return CloudRegion{{0, 0}, 0.0};
    return CloudRegion{centroid / static_cast<double>(n), radius};
  };
}

}  // namespace vcl::vcloud
