// Task-to-worker scheduling policies (paper §III.A / E8).
#pragma once

#include <vector>

#include "util/rng.h"
#include "vcloud/resource.h"
#include "vcloud/task.h"

namespace vcl::vcloud {

struct WorkerView {
  VehicleId id;
  ResourceProfile profile;
  bool busy = false;
  double dwell_seconds = 0.0;  // estimated remaining time in the cloud
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  // Picks a worker for the task among idle candidates; invalid id = defer.
  [[nodiscard]] virtual VehicleId pick(const Task& task,
                                       const std::vector<WorkerView>& workers,
                                       Rng& rng) const = 0;
};

// Uniform choice among idle workers (the conventional-cloud baseline: any
// node is as good as any other).
class RandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "random"; }
  [[nodiscard]] VehicleId pick(const Task& task,
                               const std::vector<WorkerView>& workers,
                               Rng& rng) const override;
};

// Fastest idle worker, ignoring mobility.
class GreedyResourceScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "greedy"; }
  [[nodiscard]] VehicleId pick(const Task& task,
                               const std::vector<WorkerView>& workers,
                               Rng& rng) const override;
};

// Dwell-aware: among idle workers predicted to stay long enough to finish
// the task (execution + a safety margin), pick the fastest; if none
// qualifies, fall back to the longest-staying worker.
class DwellAwareScheduler final : public Scheduler {
 public:
  explicit DwellAwareScheduler(double safety_margin = 1.25)
      : margin_(safety_margin) {}
  [[nodiscard]] const char* name() const override { return "dwell_aware"; }
  [[nodiscard]] VehicleId pick(const Task& task,
                               const std::vector<WorkerView>& workers,
                               Rng& rng) const override;

 private:
  double margin_;
};

}  // namespace vcl::vcloud
