// InvariantOracle: machine-checked global safety for the vehicular cloud
// (DESIGN.md §9).
//
// The dependability benches measure *how well* the cloud performs under
// faults; nothing verified that it stays *correct* — a task silently
// dropped on a crash path would only show up as a small completion-rate
// drift no test asserts on. The oracle closes that gap: it is hooked into
// VehicularCloud::refresh() (end-of-round scan) and every task terminal
// transition, and checks structural invariants that must hold no matter
// which faults fired:
//
//  * task-conservation — every submitted task is accounted for: terminal,
//    running/migrating on a live worker entry, or queued; every
//    kPending/kCrashRecovering task sits in the dispatch queue exactly
//    once, and queue entries reference existing tasks.
//  * terminal-once — a terminal state is absorbing: no task reaches a
//    second terminal transition or mutates its terminal state afterwards.
//  * stats-consistency — CloudStats counters equal a census of task
//    states (submitted/completed/expired/failed).
//  * broker-uniqueness — at refresh end the elected broker is a current
//    member (or invalid only when the cloud has no members).
//  * checkpoint-monotonicity — a task's crash-survivable floor never
//    regresses and stays within [0, work].
//  * detector-subset — the failure detector tracks only current workers
//    (a forgotten forget() would mass-kill future joiners).
//
// Inertness contract (same style as telemetry): the cloud holds a nullable
// `InvariantOracle*`; with no oracle set the only cost is one branch per
// would-be check and runs are byte-identical to an oracle-free build. The
// oracle never mutates the cloud — all accessors it uses are const.
//
// A violation is a structured record carrying {invariant, detail, sim
// time, offending task, episode seed}. The fault schedule that produced it
// lives one layer up (core::chaos / tools/vcl_chaos) — vcloud cannot
// depend on fault — which pairs the violation with the replayable plan.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/ids.h"
#include "util/time.h"
#include "vcloud/task.h"

namespace vcl::vcloud {

class VehicularCloud;

struct InvariantViolation {
  std::string invariant;  // e.g. "task-conservation"
  std::string detail;     // human-readable specifics
  SimTime at = 0.0;       // sim time of the failing check
  TaskId task;            // offending task (invalid when not task-scoped)
  std::uint64_t seed = 0;  // episode seed (0 when the harness set none)

  [[nodiscard]] std::string to_string() const;
};

class InvariantOracle {
 public:
  // `seed` is stamped into every violation so a record is self-describing
  // even after it leaves the episode that produced it.
  explicit InvariantOracle(std::uint64_t seed = 0) : seed_(seed) {}

  // Full structural scan; the cloud calls this at the end of refresh()
  // (several invariants only quiesce there — e.g. broker membership is
  // transiently stale between a detector kill and the next election).
  void check(const VehicularCloud& cloud, SimTime now);

  // Terminal-transition hook: records first terminal states and flags a
  // second terminal transition of the same task.
  void on_terminal(const Task& task, SimTime now);

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  // Total violations seen (storage caps at kMaxStored; the count does not).
  [[nodiscard]] std::size_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] std::size_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  static constexpr std::size_t kMaxStored = 64;

 private:
  void report(const std::string& invariant, const std::string& detail,
              SimTime at, TaskId task = TaskId{});

  std::uint64_t seed_;
  std::vector<InvariantViolation> violations_;
  std::size_t violation_count_ = 0;
  std::size_t checks_run_ = 0;
  // First observed terminal state per task id (terminal-once).
  std::unordered_map<std::uint64_t, TaskState> terminal_state_;
  // Last observed checkpoint floor per task id (monotonicity).
  std::unordered_map<std::uint64_t, double> checkpoint_floor_;
};

}  // namespace vcl::vcloud
