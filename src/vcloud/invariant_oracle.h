// InvariantOracle: machine-checked global safety for the vehicular cloud
// (DESIGN.md §9).
//
// The dependability benches measure *how well* the cloud performs under
// faults; nothing verified that it stays *correct* — a task silently
// dropped on a crash path would only show up as a small completion-rate
// drift no test asserts on. The oracle closes that gap: it is hooked into
// VehicularCloud::refresh() (end-of-round scan) and every task terminal
// transition, and checks structural invariants that must hold no matter
// which faults fired:
//
//  * task-conservation — every submitted task is accounted for: terminal,
//    running/migrating on a live worker entry, or queued; every
//    kPending/kCrashRecovering task sits in the dispatch queue exactly
//    once, and queue entries reference existing tasks.
//  * terminal-once — a terminal state is absorbing: no task reaches a
//    second terminal transition or mutates its terminal state afterwards.
//  * stats-consistency — CloudStats counters equal a census of task
//    states (submitted/completed/expired/failed).
//  * broker-uniqueness — at refresh end the elected broker is a current
//    member (or invalid only when the cloud has no members).
//  * checkpoint-monotonicity — a task's crash-survivable floor never
//    regresses and stays within [0, work].
//  * detector-subset — the failure detector tracks only current workers
//    (a forgotten forget() would mass-kill future joiners).
//
// When a storage service registers itself (set_storage, an abstract
// StorageIntrospection so vcloud never depends on storage), the same scan
// additionally checks the storage-layer invariants:
//
//  * storage-durability — no acknowledged write is lost while the holder
//    crash budget is within what the write quorum tolerates: an acked
//    object with zero live up-to-date copies is a violation unless more
//    than min(N−W, W−1) of its durable holders physically died since the
//    last ack / full-health instant. (Deleting copies without deaths — a
//    broken repair path — is exactly what this catches.)
//  * storage-monotonic-reads — per (client, object), quorum reads never
//    return an older version than an earlier quorum read. Degraded reads
//    are flagged stale-risk by contract and exempt.
//  * storage-replica-bounds — replica placement never exceeds N, and an
//    acknowledged object never has an empty placement (repair swaps, it
//    does not discard).
//  * storage-lease-membership — every currently-held lease belongs to a
//    current cloud member.
//
// Inertness contract (same style as telemetry): the cloud holds a nullable
// `InvariantOracle*`; with no oracle set the only cost is one branch per
// would-be check and runs are byte-identical to an oracle-free build. The
// oracle never mutates the cloud — all accessors it uses are const.
//
// A violation is a structured record carrying {invariant, detail, sim
// time, offending task, episode seed}. The fault schedule that produced it
// lives one layer up (core::chaos / tools/vcl_chaos) — vcloud cannot
// depend on fault — which pairs the violation with the replayable plan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/time.h"
#include "vcloud/task.h"

namespace vcl::vcloud {

class AdmissionControl;
class VehicularCloud;

// Read-only storage-layer view for the oracle's storage invariants. The
// concrete store lives in src/storage (which depends on vcloud, not the
// other way around), so the oracle sees it through this interface.
struct StorageReplicaView {
  VehicleId holder;
  std::uint64_t version = 0;  // physical copy version (0 = no data yet)
  bool alive = false;         // vehicle exists in traffic and has not crashed
  bool lease_held = false;    // unexpired lease at view time
};

struct StorageObjectView {
  FileId object;
  std::uint64_t acked_version = 0;  // highest version acked to a client
  std::vector<StorageReplicaView> replicas;  // current placement
};

class StorageIntrospection {
 public:
  virtual ~StorageIntrospection() = default;
  // Objects in ascending id order (deterministic violation ordering).
  virtual void for_each_object(
      const std::function<void(const StorageObjectView&)>& fn) const = 0;
  [[nodiscard]] virtual std::size_t replica_target() const = 0;  // N
  [[nodiscard]] virtual std::size_t write_quorum() const = 0;    // W
};

// Read-only DAG-scheduler view for the oracle's DAG invariants. The
// concrete scheduler lives in src/dag (which depends on vcloud, not the
// other way around), so the oracle sees it through this interface — the
// same pattern as StorageIntrospection.
struct DagNodeStateView {
  bool submitted = false;   // at least one attempt handed to the broker
  bool succeeded = false;   // a winning attempt completed
  std::size_t live_attempts = 0;  // attempts not yet terminal
  std::vector<std::size_t> parents;  // dependency node indices
};

struct DagGraphView {
  std::uint64_t id = 0;
  bool terminal = false;   // completed or failed
  bool completed = false;  // every node succeeded
  std::size_t intermediates_held = 0;  // parent outputs parked at the broker
  const std::vector<DagNodeStateView>* nodes = nullptr;
};

class DagIntrospection {
 public:
  virtual ~DagIntrospection() = default;
  // Graphs in ascending id order (deterministic violation ordering).
  virtual void for_each_graph(
      const std::function<void(const DagGraphView&)>& fn) const = 0;
};

struct InvariantViolation {
  std::string invariant;  // e.g. "task-conservation"
  std::string detail;     // human-readable specifics
  SimTime at = 0.0;       // sim time of the failing check
  TaskId task;            // offending task (invalid when not task-scoped)
  std::uint64_t seed = 0;  // episode seed (0 when the harness set none)

  [[nodiscard]] std::string to_string() const;
};

class InvariantOracle {
 public:
  // `seed` is stamped into every violation so a record is self-describing
  // even after it leaves the episode that produced it.
  explicit InvariantOracle(std::uint64_t seed = 0) : seed_(seed) {}

  // Full structural scan; the cloud calls this at the end of refresh()
  // (several invariants only quiesce there — e.g. broker membership is
  // transiently stale between a detector kill and the next election).
  void check(const VehicularCloud& cloud, SimTime now);

  // Terminal-transition hook: records first terminal states and flags a
  // second terminal transition of the same task.
  void on_terminal(const Task& task, SimTime now);

  // --- storage invariants (active only after set_storage) --------------------
  // Registers the storage service; its objects join every check() scan.
  void set_storage(const StorageIntrospection* storage) { storage_ = storage; }
  // A write was acknowledged to a client: `holders` is the replica set that
  // made the quorum. Resets the object's durable set and crash budget.
  void on_storage_ack(FileId object, std::uint64_t version,
                      const std::vector<VehicleId>& holders, SimTime now);
  // A read returned to `client`. Quorum reads feed the per-(client, object)
  // monotonicity floor; degraded (stale-risk) reads are exempt by contract.
  void on_storage_read(std::uint64_t client, FileId object,
                       std::uint64_t version, bool degraded, SimTime now);

  // --- DAG invariants (active only after set_dag) ----------------------------
  // Registers the DAG scheduler; its graphs join every check() scan:
  //  * dag-dependency-order — a submitted node's parents all succeeded (no
  //    node runs before every parent reached terminal success);
  //  * dag-completion-subset — a completed graph has every node succeeded,
  //    and a succeeded node was submitted (completed ⊆ submitted);
  //  * dag-node-liveness — on a live graph, a submitted-but-unsucceeded
  //    node keeps at least one live attempt (a dropped resubmit strands
  //    the node, and the whole graph, forever);
  //  * dag-no-orphaned-intermediates — a terminal graph holds no parked
  //    parent outputs.
  void set_dag(const DagIntrospection* dag) { dag_ = dag; }
  // A node's success was committed (children unlocked, intermediate
  // parked). A second commit for the same (graph, node) is the DAG
  // terminal-once violation.
  void on_dag_node_terminal(std::uint64_t graph, std::size_t node,
                            SimTime now);

  // --- auth/admission invariants (active only after set_admission) -----------
  // Registers the admission control whose defenses the scan audits:
  //  * auth-revoked-membership — no identity stays a member past its
  //    per-RSU CRL horizon (inside the horizon the propagation race is
  //    legal; past it, eviction was contractually due);
  //  * auth-revoked-holder — no task, lease or replica is held by an
  //    identity that is revoked past its horizon, or fabricated and never
  //    admitted under the verification policy;
  //  * auth-sybil-admission — fabricated identities among current members
  //    never exceed the configured unverified-admission tolerance (0 under
  //    the strict policy: quarantine, never membership);
  //  * membership-census — every worker is traffic-backed, a known crashed
  //    zombie, or an explicitly admitted claim (nothing joins membership
  //    without an accounted-for path).
  void set_admission(const AdmissionControl* admission) {
    admission_ = admission;
  }

  // Fires on EVERY reported violation, at the instant report() runs —
  // before control returns to the subsystem that tripped the check. The
  // incident-forensics layer (core::chaos) installs a capture here so the
  // bundle snapshots the system in the exact offending state, not the
  // drained end-of-episode state. The hook must only read (const
  // accessors); it runs inside cloud refresh/terminal paths.
  using ViolationHook = std::function<void(const InvariantViolation&)>;
  void set_violation_hook(ViolationHook hook) {
    violation_hook_ = std::move(hook);
  }

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  // Total violations seen (storage caps at kMaxStored; the count does not).
  [[nodiscard]] std::size_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] std::size_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  static constexpr std::size_t kMaxStored = 64;

 private:
  void report(const std::string& invariant, const std::string& detail,
              SimTime at, TaskId task = TaskId{});
  void check_storage(const VehicularCloud& cloud, SimTime now);
  void check_dag(SimTime now);
  void check_admission(const VehicularCloud& cloud, SimTime now);

  // Durability bookkeeping per object: the holders that carried the acked
  // version at the last reset (ack or full health) and how many of them
  // have physically died since. A loss is only a violation while the death
  // count is within what the write quorum contractually tolerates.
  struct StorageTracking {
    std::uint64_t acked_version = 0;
    std::unordered_set<std::uint64_t> durable;  // holders of the acked copy
    std::size_t crash_budget = 0;               // durable holders dead since reset
    bool loss_reported = false;                 // one report per acked epoch
  };

  std::uint64_t seed_;
  ViolationHook violation_hook_;
  std::vector<InvariantViolation> violations_;
  std::size_t violation_count_ = 0;
  std::size_t checks_run_ = 0;
  // First observed terminal state per task id (terminal-once).
  std::unordered_map<std::uint64_t, TaskState> terminal_state_;
  // Last observed checkpoint floor per task id (monotonicity).
  std::unordered_map<std::uint64_t, double> checkpoint_floor_;
  const StorageIntrospection* storage_ = nullptr;
  std::unordered_map<std::uint64_t, StorageTracking> storage_track_;
  // Highest version returned by a quorum read, per (client, object).
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> read_floor_;
  const DagIntrospection* dag_ = nullptr;
  // (graph, node) pairs whose success was committed (DAG terminal-once).
  std::set<std::pair<std::uint64_t, std::size_t>> dag_node_done_;
  const AdmissionControl* admission_ = nullptr;
};

}  // namespace vcl::vcloud
