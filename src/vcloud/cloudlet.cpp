#include "vcloud/cloudlet.h"

namespace vcl::vcloud {

CloudletGrid::CloudletGrid(net::Network& net, CloudletConfig config, Rng rng)
    : net_(net), config_(config), rng_(rng) {}

void CloudletGrid::attach() {
  if (attached_) return;
  attached_ = true;
  for (const net::Rsu& rsu : net_.rsus().all()) {
    auto cloud = std::make_unique<VehicularCloud>(
        CloudId{rsu.id.value() + 1000}, net_,
        rsu_membership(net_, rsu.id), rsu_region(net_, rsu.id),
        std::make_unique<DwellAwareScheduler>(), config_.cloud,
        rng_.fork(rsu.id.value()));
    cloud->attach();
    cloud->refresh();
    clouds_.push_back(std::move(cloud));
  }
  net_.simulator().schedule_every(config_.roam_check_period,
                                  [this] { roam_check(); });
}

VehicularCloud* CloudletGrid::cloudlet_for(VehicleId v) {
  const net::Rsu* rsu = net_.reachable_rsu(v);
  if (rsu == nullptr) return nullptr;
  const std::uint64_t cloud_id = rsu->id.value() + 1000;
  for (auto& c : clouds_) {
    if (c->id().value() == cloud_id) return c.get();
  }
  return nullptr;
}

void CloudletGrid::roam_check() {
  for (const auto& [vid, v] : net_.traffic().vehicles()) {
    const net::Rsu* rsu = net_.rsus().covering(v.pos);
    const std::uint64_t now_at =
        rsu == nullptr ? UINT64_MAX : rsu->id.value();
    auto it = current_cloudlet_.find(vid);
    if (it == current_cloudlet_.end()) {
      current_cloudlet_[vid] = now_at;
      continue;
    }
    if (it->second != now_at) {
      // Entering coverage from the void is an attach, not a handoff;
      // switching between two cloudlets is the handoff Yu et al. manage.
      if (it->second != UINT64_MAX && now_at != UINT64_MAX) {
        ++handoffs_;
      } else if (now_at != UINT64_MAX) {
        ++attaches_;
      }
      it->second = now_at;
    }
  }
  // Forget departed vehicles.
  for (auto it = current_cloudlet_.begin(); it != current_cloudlet_.end();) {
    if (net_.traffic().find(VehicleId{it->first}) == nullptr) {
      it = current_cloudlet_.erase(it);
    } else {
      ++it;
    }
  }
}

CloudletGrid::SubmitResult CloudletGrid::submit(VehicleId requester,
                                                Task task) {
  SubmitResult result;
  VehicularCloud* local = cloudlet_for(requester);
  if (local != nullptr) {
    result.cloudlet = local->id();
    result.id = local->submit(std::move(task));
    return result;
  }
  // Central fallback: WAN round trip + datacenter execution; the central
  // cloud has effectively unbounded parallelism, so no queueing is modeled.
  result.to_central = true;
  ++central_.submitted;
  const SimTime created = net_.simulator().now();
  const SimTime exec = task.work / config_.central_compute;
  const SimTime done_at = created + config_.wan_rtt + exec;
  const SimTime deadline = task.deadline;
  net_.simulator().schedule_after(
      config_.wan_rtt + exec, [this, created, done_at, deadline] {
        if (deadline > 0.0 && done_at > deadline) return;  // expired
        ++central_.completed;
        central_.latency.add(done_at - created);
      });
  return result;
}

std::size_t CloudletGrid::cloudlet_completed() const {
  std::size_t n = 0;
  for (const auto& c : clouds_) n += c->stats().completed;
  return n;
}

}  // namespace vcl::vcloud
