// Task model and workload generation for vehicular cloud computing.
//
// Lifecycle: kPending -> kRunning -> kCompleted, with three detours.
// A *graceful* worker departure (membership drops the worker while the
// vehicle is still reachable) moves the task to kMigrating while its
// encrypted checkpoint travels to a successor (handover.h). A worker
// *crash* (no handover opportunity; detected only via missed heartbeats)
// moves it to kCrashRecovering: progress rolls back to the last periodic
// checkpoint the broker holds — zero when checkpointing is off — and the
// task re-queues for dispatch. Tasks past their deadline end kExpired;
// tasks with no recovery path end kFailed.
#pragma once

#include <vector>

#include "obs/trace.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::vcloud {

enum class TaskState : std::uint8_t {
  kPending,          // queued at the broker
  kRunning,
  kMigrating,        // checkpoint in flight to a new worker (graceful path)
  kCrashRecovering,  // worker crashed/declared dead; re-queued from the last
                     // broker-held checkpoint (crash path)
  kCompleted,
  kFailed,           // worker lost, no handover possible
  kExpired,          // missed its deadline
};

const char* to_string(TaskState s);

struct Task {
  TaskId id;
  double work = 10.0;       // total work units
  double input_mb = 1.0;    // shipped to the worker at dispatch
  double output_mb = 0.1;   // shipped back on completion
  SimTime created = 0.0;
  SimTime deadline = 0.0;   // absolute; 0 = none

  TaskState state = TaskState::kPending;
  VehicleId worker;         // current assignee (when running/migrating)
  double progress = 0.0;    // completed work units
  // Work units persisted at the broker by periodic checkpointing — the
  // crash-survivable floor progress rolls back to (0 = nothing persisted).
  double checkpoint_progress = 0.0;
  SimTime run_started = 0.0;
  int migrations = 0;
  SimTime completed_at = 0.0;

  // Causal tracing (DESIGN.md §8): stamped at submission when tracing is
  // on, zero otherwise. `trace` holds {trace_id, root span id}; the cloud
  // keeps exactly one `leg.*` child span open at any time so the legs
  // partition the task's lifetime (queue / dispatch / exec / recover / ...).
  obs::TraceContext trace;
  std::uint64_t open_leg = 0;        // span id of the open leg (0 = none)
  const char* open_leg_name = "";    // its name (string literal)

  [[nodiscard]] double remaining() const { return work - progress; }
  [[nodiscard]] bool terminal() const {
    return state == TaskState::kCompleted || state == TaskState::kFailed ||
           state == TaskState::kExpired;
  }
};

struct WorkloadConfig {
  double mean_work = 20.0;        // exponential
  double mean_input_mb = 2.0;
  double mean_output_mb = 0.5;
  SimTime relative_deadline = 60.0;  // 0 = no deadlines
};

// Draws task specs (ids are assigned by the cloud on submit).
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, Rng rng)
      : config_(config), rng_(rng) {}

  [[nodiscard]] Task next(SimTime now);
  [[nodiscard]] std::vector<Task> batch(SimTime now, std::size_t n);

 private:
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace vcl::vcloud
