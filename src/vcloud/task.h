// Task model and workload generation for vehicular cloud computing.
#pragma once

#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::vcloud {

enum class TaskState : std::uint8_t {
  kPending,    // queued at the broker
  kRunning,
  kMigrating,  // checkpoint in flight to a new worker
  kCompleted,
  kFailed,     // worker lost, no handover possible
  kExpired,    // missed its deadline
};

const char* to_string(TaskState s);

struct Task {
  TaskId id;
  double work = 10.0;       // total work units
  double input_mb = 1.0;    // shipped to the worker at dispatch
  double output_mb = 0.1;   // shipped back on completion
  SimTime created = 0.0;
  SimTime deadline = 0.0;   // absolute; 0 = none

  TaskState state = TaskState::kPending;
  VehicleId worker;         // current assignee (when running/migrating)
  double progress = 0.0;    // completed work units
  SimTime run_started = 0.0;
  int migrations = 0;
  SimTime completed_at = 0.0;

  [[nodiscard]] double remaining() const { return work - progress; }
  [[nodiscard]] bool terminal() const {
    return state == TaskState::kCompleted || state == TaskState::kFailed ||
           state == TaskState::kExpired;
  }
};

struct WorkloadConfig {
  double mean_work = 20.0;        // exponential
  double mean_input_mb = 2.0;
  double mean_output_mb = 0.5;
  SimTime relative_deadline = 60.0;  // 0 = no deadlines
};

// Draws task specs (ids are assigned by the cloud on submit).
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, Rng rng)
      : config_(config), rng_(rng) {}

  [[nodiscard]] Task next(SimTime now);
  [[nodiscard]] std::vector<Task> batch(SimTime now, std::size_t n);

 private:
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace vcl::vcloud
