// Task handover cost model (paper §III.A open problem: "how [can] the
// vehicle hand over the unfinished, encrypted task to some other vehicles
// ... without bringing too much overhead").
//
// A checkpoint grows with the work already completed; migrating it costs
// transfer time (checkpoint over the V2V link) plus sealing/unsealing
// (KEM encapsulation at the source, decapsulation at the target) charged at
// production-crypto rates via the CostModel.
#pragma once

#include "crypto/cost_model.h"
#include "vcloud/resource.h"
#include "vcloud/task.h"

namespace vcl::vcloud {

struct HandoverConfig {
  bool enabled = true;
  double checkpoint_mb_base = 0.5;      // minimum checkpoint size
  double checkpoint_mb_per_work = 0.1;  // grows with completed work
  bool encrypted = true;                // seal checkpoints (costs crypto ops)
};

// Checkpoint size for a task's current progress, MB.
double checkpoint_mb(const Task& task, const HandoverConfig& config);

// End-to-end migration latency: seal + transfer + unseal.
SimTime migration_latency(const Task& task, const ResourceProfile& from,
                          const ResourceProfile& to,
                          const HandoverConfig& config,
                          const crypto::CostModel& costs);

}  // namespace vcl::vcloud
