// Hierarchical roadside cloudlets (after Yu et al. [45] in the survey):
// one transient VehicularCloud per RSU, plus a central cloud reachable over
// the wired backhaul.
//
// Moving vehicles "keep selecting new nearby roadside cloudlets" — the grid
// tracks each vehicle's current cloudlet and counts handoffs. Task
// submission prefers the requester's local cloudlet (cheap, close) and
// falls back to the central cloud (always available, but behind a WAN
// round-trip) when the vehicle is uncovered — the locality/availability
// trade the hierarchical architecture exists to make.
#pragma once

#include <memory>

#include "vcloud/cloud.h"

namespace vcl::vcloud {

struct CloudletConfig {
  CloudConfig cloud;                 // per-cloudlet settings
  double central_compute = 200.0;    // work-units/s at the datacenter
  SimTime wan_rtt = 80 * kMilliseconds;  // backhaul + WAN to central
  SimTime roam_check_period = 1.0;
};

struct CentralStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  Accumulator latency;
};

class CloudletGrid {
 public:
  CloudletGrid(net::Network& net, CloudletConfig config, Rng rng);

  // Builds one cloud per (online) RSU and starts roaming checks.
  void attach();

  // The cloudlet covering the vehicle right now; nullptr when uncovered.
  [[nodiscard]] VehicularCloud* cloudlet_for(VehicleId v);
  [[nodiscard]] const std::vector<std::unique_ptr<VehicularCloud>>&
  cloudlets() const {
    return clouds_;
  }

  struct SubmitResult {
    bool to_central = false;
    TaskId id;          // valid for cloudlet submissions
    CloudId cloudlet;   // which cloudlet took it
  };
  // Submits on behalf of `requester`: local cloudlet when covered, central
  // cloud otherwise.
  SubmitResult submit(VehicleId requester, Task task);

  // Roaming bookkeeping.
  [[nodiscard]] std::size_t handoffs() const { return handoffs_; }
  // void -> covered transitions (re-entering coverage after a gap).
  [[nodiscard]] std::size_t attaches() const { return attaches_; }
  [[nodiscard]] const CentralStats& central() const { return central_; }
  // Aggregated cloudlet stats.
  [[nodiscard]] std::size_t cloudlet_completed() const;

  void roam_check();  // public for tests

 private:
  net::Network& net_;
  CloudletConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<VehicularCloud>> clouds_;
  std::unordered_map<std::uint64_t, std::uint64_t> current_cloudlet_;
  std::size_t handoffs_ = 0;
  std::size_t attaches_ = 0;
  CentralStats central_;
  bool attached_ = false;
};

}  // namespace vcl::vcloud
