// Broker election for dynamic v-clouds (paper §IV.A.2: "vehicles are
// selected in order to serve as the cloud brokers").
//
// The broker mediates task allocation; a good broker is both capable and
// likely to stay. Score = compute x min(dwell, cap); elections re-run each
// refresh, with hysteresis so a marginally-better challenger does not churn
// the brokership (every change re-syncs cloud state).
#pragma once

#include "vcloud/scheduler.h"

namespace vcl::vcloud {

struct BrokerConfig {
  double dwell_cap = 120.0;  // seconds of dwell that saturate the score
  double hysteresis = 1.25;  // challenger must beat incumbent by this factor
};

class BrokerElection {
 public:
  explicit BrokerElection(BrokerConfig config = {}) : config_(config) {}

  // Elects (or re-elects) from the member views; invalid id when empty.
  VehicleId elect(const std::vector<WorkerView>& members);

  [[nodiscard]] VehicleId current() const { return current_; }
  [[nodiscard]] std::size_t changes() const { return changes_; }

 private:
  [[nodiscard]] double score(const WorkerView& w) const;

  BrokerConfig config_;
  VehicleId current_;
  std::size_t changes_ = 0;
};

}  // namespace vcl::vcloud
