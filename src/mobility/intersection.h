// Intersection signal control.
//
// Intersections (nodes with more than two incoming links) gate entry by
// approach group: links are classified east-west or north-south by their
// direction vector, and a controller decides which group holds the green.
// `FixedCycleController` is the conventional infrastructure baseline: a
// dumb timer alternating the groups. The V2V alternative (virtual traffic
// lights, after Tonguz's line of work the paper grows out of) lives in
// core/vtl.h because it needs the network layer.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "geo/road_network.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace vcl::mobility {

enum class ApproachGroup : std::uint8_t { kEastWest, kNorthSouth };

// Classifies a link's approach by its dominant axis.
ApproachGroup approach_group(const geo::RoadNetwork& net, LinkId link);

// Shared helpers for signal controllers.
class IntersectionMap {
 public:
  explicit IntersectionMap(const geo::RoadNetwork& net);

  // Nodes that need control (more than two incoming links).
  [[nodiscard]] const std::vector<NodeId>& signalized() const {
    return signalized_;
  }
  [[nodiscard]] bool is_signalized(NodeId node) const {
    return signalized_set_.count(node.value()) != 0;
  }
  [[nodiscard]] const geo::RoadNetwork& network() const { return net_; }

 private:
  const geo::RoadNetwork& net_;
  std::vector<NodeId> signalized_;
  std::unordered_set<std::uint64_t> signalized_set_;
};

// Conventional fixed-cycle signals: every intersection alternates EW/NS on
// a common timer (offset by node id so the grid does not pulse in
// lockstep).
class FixedCycleController {
 public:
  FixedCycleController(const geo::RoadNetwork& net, sim::Simulator& sim,
                       SimTime phase = 15.0);

  // Right-of-way oracle to plug into TrafficModel::set_right_of_way.
  [[nodiscard]] bool can_enter(LinkId link, VehicleId v) const;

  [[nodiscard]] const IntersectionMap& intersections() const { return map_; }

 private:
  [[nodiscard]] ApproachGroup green_group(NodeId node) const;

  IntersectionMap map_;
  sim::Simulator& sim_;
  SimTime phase_;
};

}  // namespace vcl::mobility
