// Trip generation: keeps a target vehicle population alive on the network.
//
// Vehicles spawn with Poisson arrivals at random origins, drive a shortest
// path to a random destination, and either despawn or are re-routed on
// arrival (`keep_alive`). `keep_alive` mode maintains a stable population,
// which the v-cloud experiments need for controlled density sweeps.
#pragma once

#include <vector>

#include "mobility/traffic.h"
#include "util/rng.h"

namespace vcl::mobility {

struct TripGeneratorConfig {
  int target_population = 100;
  double arrival_rate = 2.0;  // vehicles per second while below target
  bool keep_alive = true;     // re-route vehicles on arrival
  double min_trip_links = 3;  // reject degenerate trips
  // Mix of automation levels, indexed by AutomationLevel; weights.
  std::vector<double> automation_weights = {0.05, 0.15, 0.3, 0.3, 0.15, 0.05};
};

class TripGenerator {
 public:
  TripGenerator(TrafficModel& traffic, TripGeneratorConfig config, Rng rng);

  // Spawns vehicles up to the target population immediately.
  void prefill();
  // Registers periodic arrivals plus the arrival handler with the traffic
  // model.
  void attach(sim::Simulator& sim);

  // Generates a random route of at least `min_trip_links` links starting at
  // `from` (or a random node when invalid). Empty when none found.
  [[nodiscard]] std::vector<LinkId> random_route(NodeId from = NodeId{});

  [[nodiscard]] int spawned() const { return spawned_; }

 private:
  void maybe_spawn_arrivals(double dt);
  AutomationLevel sample_automation();

  TrafficModel& traffic_;
  TripGeneratorConfig config_;
  Rng rng_;
  int spawned_ = 0;
};

}  // namespace vcl::mobility
