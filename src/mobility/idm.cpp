#include "mobility/idm.h"

#include <algorithm>
#include <cmath>

namespace vcl::mobility {

double idm_acceleration(double speed, double approach_rate, double gap,
                        const IdmParams& p) {
  const double v0 = std::max(p.desired_speed, 0.1);
  const double free_term = 1.0 - std::pow(speed / v0, p.exponent);
  double interaction = 0.0;
  if (std::isfinite(gap)) {
    const double safe_gap = std::max(gap, 0.01);
    const double s_star =
        p.min_gap + std::max(0.0, speed * p.time_headway +
                                      speed * approach_rate /
                                          (2.0 * std::sqrt(p.max_accel *
                                                           p.comfort_decel)));
    interaction = (s_star / safe_gap) * (s_star / safe_gap);
  }
  // Clamp: IDM can command unbounded braking when the gap collapses; real
  // vehicles cannot exceed emergency deceleration.
  const double accel = p.max_accel * (free_term - interaction);
  return std::clamp(accel, -3.0 * p.comfort_decel, p.max_accel);
}

}  // namespace vcl::mobility
