#include "mobility/traffic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace vcl::mobility {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t lane_key(LinkId link, int lane) {
  return (link.value() << 8) | static_cast<std::uint64_t>(lane & 0xff);
}

}  // namespace

TrafficModel::TrafficModel(const geo::RoadNetwork& net, Rng rng)
    : net_(net), rng_(rng) {}

VehicleId TrafficModel::spawn(std::vector<LinkId> route, double initial_speed,
                              AutomationLevel automation,
                              double speed_factor) {
  assert(!route.empty());
  const VehicleId id{next_vehicle_id_++};
  VehicleState v;
  v.id = id;
  v.route = std::move(route);
  v.route_index = 0;
  v.link = v.route.front();
  v.lane = 0;
  v.offset = 0.0;
  v.speed = initial_speed;
  v.automation = automation;
  v.speed_factor = speed_factor;
  v.spawn_time = now_;
  refresh_world_frame(v);
  vehicles_.emplace(id.value(), std::move(v));
  return id;
}

VehicleId TrafficModel::spawn_parked(LinkId link, double offset) {
  const VehicleId id{next_vehicle_id_++};
  VehicleState v;
  v.id = id;
  v.link = link;
  v.route = {link};
  v.offset = offset;
  v.speed = 0.0;
  v.parked = true;
  v.spawn_time = now_;
  refresh_world_frame(v);
  vehicles_.emplace(id.value(), std::move(v));
  return id;
}

void TrafficModel::despawn(VehicleId id) { vehicles_.erase(id.value()); }

void TrafficModel::set_arrival_handler(ArrivalHandler handler) {
  arrival_handler_ = std::move(handler);
}

void TrafficModel::set_right_of_way(RightOfWayFn fn) {
  right_of_way_ = std::move(fn);
}

const VehicleState* TrafficModel::find(VehicleId id) const {
  auto it = vehicles_.find(id.value());
  return it == vehicles_.end() ? nullptr : &it->second;
}

VehicleState* TrafficModel::find_mutable(VehicleId id) {
  auto it = vehicles_.find(id.value());
  return it == vehicles_.end() ? nullptr : &it->second;
}

void TrafficModel::refresh_world_frame(VehicleState& v) const {
  v.pos = net_.position_on_link(v.link, v.offset);
  const geo::Vec2 dir = net_.link_direction(v.link);
  v.vel = dir * v.speed;
  // Offset parallel lanes laterally so the radio model sees distinct
  // positions (3.5 m lane width, perpendicular to travel direction).
  const geo::Vec2 normal{-dir.y, dir.x};
  v.pos += normal * (3.5 * v.lane);
}

void TrafficModel::rebuild_lane_index() {
  lane_index_.clear();
  for (auto& [vid, v] : vehicles_) {
    // Parked vehicles sit curbside (stalls/shoulder), not in the travel
    // lane: they radio-participate but do not block traffic.
    if (v.parked) continue;
    lane_index_[lane_key(v.link, v.lane)].push_back(v.id);
  }
  for (auto& [key, ids] : lane_index_) {
    std::sort(ids.begin(), ids.end(), [this](VehicleId a, VehicleId b) {
      const double oa = vehicles_.at(a.value()).offset;
      const double ob = vehicles_.at(b.value()).offset;
      if (oa != ob) return oa > ob;  // leader (largest offset) first
      return a.value() < b.value();
    });
  }
}

void TrafficModel::advance_vehicle(VehicleState& v, double dt,
                                   const std::vector<VehicleId>& lane_order,
                                   std::size_t pos_in_lane) {
  const geo::RoadLink& link = net_.link(v.link);
  IdmParams p = idm_;
  p.desired_speed = link.speed_limit * v.speed_factor;

  double gap = kInf;
  double approach = 0.0;
  if (pos_in_lane > 0) {
    const VehicleState& leader =
        vehicles_.at(lane_order[pos_in_lane - 1].value());
    gap = leader.offset - leader.length - v.offset;
    approach = v.speed - leader.speed;
  }

  // Simple lane change: if blocked (small gap, slower leader) and an
  // adjacent lane exists, hop over with a modest probability. Gap checks on
  // the target lane are approximated by the lane being less crowded.
  if (gap < 10.0 && link.lanes > 1 && rng_.bernoulli(0.1)) {
    const int target = v.lane + (v.lane + 1 < link.lanes ? 1 : -1);
    const auto it = lane_index_.find(lane_key(v.link, target));
    const std::size_t target_n = it == lane_index_.end() ? 0 : it->second.size();
    if (target_n + 1 < lane_order.size()) {
      v.lane = target;
      gap = kInf;  // treat as free after the hop; corrected next step
      approach = 0.0;
    }
  }

  // Signalized intersection: a red light is a standing obstacle at the
  // stop line (the link end).
  bool blocked_by_signal = false;
  if (right_of_way_ && v.has_more_links()) {
    const double dist_to_end = link.length - v.offset;
    if (dist_to_end < 100.0 && !right_of_way_(v.link, v.id)) {
      blocked_by_signal = true;
      const double stop_gap = dist_to_end;  // phantom car at the stop line
      if (stop_gap < gap) {
        gap = stop_gap;
        approach = v.speed;
      }
    }
  }

  v.accel = idm_acceleration(v.speed, approach, gap, p);
  v.speed = std::max(0.0, v.speed + v.accel * dt);
  v.offset += v.speed * dt;

  // Hard stop at the line: IDM brakes smoothly, but numerics can overshoot
  // a freshly-red signal; never let a blocked vehicle enter the junction.
  if (blocked_by_signal && v.offset >= net_.link(v.link).length) {
    v.offset = net_.link(v.link).length - 0.5;
    v.speed = 0.0;
  }

  // Advance across link boundaries (can cross several short links per step).
  while (v.offset >= net_.link(v.link).length) {
    if (v.has_more_links()) {
      v.offset -= net_.link(v.link).length;
      ++v.route_index;
      v.link = v.route[v.route_index];
      v.lane = std::min(v.lane, net_.link(v.link).lanes - 1);
      continue;
    }
    // Route exhausted: ask the owner what to do.
    std::optional<std::vector<LinkId>> next;
    if (arrival_handler_) next = arrival_handler_(v);
    if (next && !next->empty()) {
      v.route = std::move(*next);
      v.route_index = 0;
      v.link = v.route.front();
      v.offset = 0.0;
      v.lane = 0;
    } else {
      v.offset = net_.link(v.link).length;  // hold at end; despawned below
      v.parked = true;                      // marks "trip over"
      break;
    }
  }
}

void TrafficModel::step(double dt) {
  now_ += dt;
  rebuild_lane_index();
  std::vector<VehicleId> finished;
  for (auto& [key, ids] : lane_index_) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      auto it = vehicles_.find(ids[i].value());
      if (it == vehicles_.end()) continue;
      VehicleState& v = it->second;
      if (v.parked) continue;
      advance_vehicle(v, dt, ids, i);
      if (v.parked) finished.push_back(v.id);  // trip ended this step
    }
  }
  for (const VehicleId id : finished) vehicles_.erase(id.value());
  for (auto& [vid, v] : vehicles_) refresh_world_frame(v);
}

void TrafficModel::attach(sim::Simulator& sim, double dt) {
  sim.schedule_every(dt, [this, dt] { step(dt); }, -1.0, "mobility.step");
}

double TrafficModel::route_time_to_exit(const VehicleState& v,
                                        geo::Vec2 center, double radius,
                                        bool use_speed_limits) const {
  if (v.parked) return kInf;
  const double fallback_speed = std::max(v.speed, 1.0);
  double t = 0.0;
  double offset = v.offset;
  const double probe_step = 10.0;  // meters
  for (std::size_t ri = v.route_index; ri < v.route.size(); ++ri) {
    const LinkId lid = v.route[ri];
    const geo::RoadLink& link = net_.link(lid);
    const double speed =
        use_speed_limits ? std::max(link.speed_limit, 1.0) : fallback_speed;
    while (offset < link.length) {
      const geo::Vec2 p = net_.position_on_link(lid, offset);
      if (geo::distance(p, center) > radius) return t;
      const double advance = std::min(probe_step, link.length - offset);
      offset += advance;
      t += advance / speed;
    }
    offset = 0.0;
  }
  return kInf;  // never leaves the disc along the known route
}

double TrafficModel::predict_time_to_exit(VehicleId id, geo::Vec2 center,
                                          double radius) const {
  const VehicleState* v = find(id);
  if (v == nullptr) return 0.0;
  return route_time_to_exit(*v, center, radius, /*use_speed_limits=*/false);
}

double TrafficModel::oracle_time_to_exit(VehicleId id, geo::Vec2 center,
                                         double radius) const {
  const VehicleState* v = find(id);
  if (v == nullptr) return 0.0;
  return route_time_to_exit(*v, center, radius, /*use_speed_limits=*/true);
}

}  // namespace vcl::mobility
