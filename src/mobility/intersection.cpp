#include "mobility/intersection.h"

#include <cmath>

namespace vcl::mobility {

ApproachGroup approach_group(const geo::RoadNetwork& net, LinkId link) {
  const geo::Vec2 dir = net.link_direction(link);
  return std::abs(dir.x) >= std::abs(dir.y) ? ApproachGroup::kEastWest
                                            : ApproachGroup::kNorthSouth;
}

IntersectionMap::IntersectionMap(const geo::RoadNetwork& net) : net_(net) {
  for (const geo::RoadNode& node : net.nodes()) {
    if (node.in_links.size() > 2) {
      signalized_.push_back(node.id);
      signalized_set_.insert(node.id.value());
    }
  }
}

FixedCycleController::FixedCycleController(const geo::RoadNetwork& net,
                                           sim::Simulator& sim, SimTime phase)
    : map_(net), sim_(sim), phase_(phase) {}

ApproachGroup FixedCycleController::green_group(NodeId node) const {
  // Phase-offset by node id so adjacent intersections are not synchronized.
  const double t = sim_.now() + static_cast<double>(node.value() % 2) * phase_;
  const auto cycle = static_cast<std::uint64_t>(t / phase_);
  return (cycle % 2 == 0) ? ApproachGroup::kEastWest
                          : ApproachGroup::kNorthSouth;
}

bool FixedCycleController::can_enter(LinkId link, VehicleId /*v*/) const {
  const NodeId node = map_.network().link(link).to;
  if (!map_.is_signalized(node)) return true;
  return approach_group(map_.network(), link) == green_group(node);
}

}  // namespace vcl::mobility
