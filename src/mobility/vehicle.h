// Per-vehicle kinematic and capability state.
#pragma once

#include <vector>

#include "geo/vec2.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::mobility {

// SAE J3016 automation levels (paper Fig. 1). Higher levels carry richer
// on-board equipment and therefore contribute more resources to a v-cloud.
enum class AutomationLevel {
  kNoAutomation = 0,
  kDriverAssistance = 1,
  kPartialAutomation = 2,
  kConditionalAutomation = 3,
  kHighAutomation = 4,
  kFullAutomation = 5,
};

struct VehicleState {
  VehicleId id;

  // Position on the road network.
  LinkId link;
  int lane = 0;
  double offset = 0.0;  // meters from link start
  double speed = 0.0;   // m/s
  double accel = 0.0;   // m/s^2
  double length = 4.5;  // meters

  // Route as a sequence of links; `route_index` points at `link`.
  std::vector<LinkId> route;
  std::size_t route_index = 0;

  bool parked = false;
  // Desired-speed multiplier relative to the speed limit (driver style).
  double speed_factor = 1.0;
  AutomationLevel automation = AutomationLevel::kConditionalAutomation;

  SimTime spawn_time = 0.0;

  // World-frame position/velocity, refreshed by TrafficModel each step.
  geo::Vec2 pos;
  geo::Vec2 vel;

  [[nodiscard]] bool has_more_links() const {
    return route_index + 1 < route.size();
  }
};

}  // namespace vcl::mobility
