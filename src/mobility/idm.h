// Intelligent Driver Model (Treiber et al.) car-following acceleration.
#pragma once

namespace vcl::mobility {

struct IdmParams {
  double desired_speed = 30.0;     // v0, m/s
  double time_headway = 1.5;       // T, s
  double max_accel = 1.5;          // a, m/s^2
  double comfort_decel = 2.0;      // b, m/s^2
  double min_gap = 2.0;            // s0, m
  double exponent = 4.0;           // delta
};

// Acceleration for a follower at `speed` with closing speed `approach_rate`
// (= follower speed - leader speed) and bumper-to-bumper `gap` to the leader.
// Pass an infinite gap for a free road.
double idm_acceleration(double speed, double approach_rate, double gap,
                        const IdmParams& p);

}  // namespace vcl::mobility
