#include "mobility/trip_generator.h"

#include <numeric>

namespace vcl::mobility {

TripGenerator::TripGenerator(TrafficModel& traffic, TripGeneratorConfig config,
                             Rng rng)
    : traffic_(traffic), config_(std::move(config)), rng_(rng) {}

AutomationLevel TripGenerator::sample_automation() {
  const auto& w = config_.automation_weights;
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  double r = rng_.uniform(0.0, total);
  for (std::size_t i = 0; i < w.size(); ++i) {
    r -= w[i];
    if (r <= 0.0) return static_cast<AutomationLevel>(i);
  }
  return AutomationLevel::kConditionalAutomation;
}

std::vector<LinkId> TripGenerator::random_route(NodeId from) {
  const auto& net = traffic_.network();
  if (net.node_count() < 2) return {};
  for (int attempt = 0; attempt < 32; ++attempt) {
    const NodeId origin =
        from.valid() ? from : NodeId{static_cast<std::uint64_t>(rng_.index(
                                  net.node_count()))};
    const NodeId dest{static_cast<std::uint64_t>(rng_.index(net.node_count()))};
    if (dest == origin) continue;
    auto path = net.shortest_path(origin, dest);
    if (path && path->size() >= static_cast<std::size_t>(config_.min_trip_links)) {
      return *path;
    }
  }
  return {};
}

void TripGenerator::prefill() {
  while (traffic_.vehicle_count() <
         static_cast<std::size_t>(config_.target_population)) {
    auto route = random_route();
    if (route.empty()) return;
    const auto& net = traffic_.network();
    const double limit = net.link(route.front()).speed_limit;
    const VehicleId id = traffic_.spawn(std::move(route),
                                        rng_.uniform(0.5, 0.9) * limit,
                                        sample_automation(),
                                        rng_.uniform(0.85, 1.15));
    // Scatter initial offsets so the prefilled fleet is not bunched at link
    // starts.
    if (VehicleState* v = traffic_.find_mutable(id)) {
      v->offset = rng_.uniform(0.0, net.link(v->link).length * 0.9);
    }
    ++spawned_;
  }
}

void TripGenerator::maybe_spawn_arrivals(double dt) {
  if (traffic_.vehicle_count() >=
      static_cast<std::size_t>(config_.target_population)) {
    return;
  }
  const int arrivals = rng_.poisson(config_.arrival_rate * dt);
  for (int i = 0; i < arrivals; ++i) {
    auto route = random_route();
    if (route.empty()) return;
    const double limit = traffic_.network().link(route.front()).speed_limit;
    traffic_.spawn(std::move(route), rng_.uniform(0.3, 0.7) * limit,
                   sample_automation(), rng_.uniform(0.85, 1.15));
    ++spawned_;
  }
}

void TripGenerator::attach(sim::Simulator& sim) {
  traffic_.set_arrival_handler(
      [this](const VehicleState& v) -> std::optional<std::vector<LinkId>> {
        if (!config_.keep_alive) return std::nullopt;
        const NodeId end = traffic_.network().link(v.link).to;
        auto route = random_route(end);
        if (route.empty()) return std::nullopt;
        return route;
      });
  sim.schedule_every(1.0, [this] { maybe_spawn_arrivals(1.0); }, -1.0,
                     "mobility.spawn");
}

}  // namespace vcl::mobility
