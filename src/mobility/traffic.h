// TrafficModel: advances all vehicles on a road network.
//
// Fixed-step kinematics (default 100 ms): per (link, lane) vehicles follow
// the Intelligent Driver Model behind their leader, advance along their
// route at link ends, and optionally change lanes when the neighbor lane
// offers a clearly better gap. Arrived vehicles are either removed or
// re-routed by the owner via the arrival callback.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/road_network.h"
#include "mobility/idm.h"
#include "mobility/vehicle.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vcl::mobility {

class TrafficModel {
 public:
  // Called when a vehicle reaches the end of its route. Return a new route
  // (list of links starting at the vehicle's end node) to keep it alive, or
  // nullopt to despawn it.
  using ArrivalHandler =
      std::function<std::optional<std::vector<LinkId>>(const VehicleState&)>;
  // Right-of-way oracle for signalized intersections: called for a vehicle
  // nearing the end of `link`; returning false makes it stop at the stop
  // line (the link end) until the signal clears.
  using RightOfWayFn = std::function<bool(LinkId, VehicleId)>;

  TrafficModel(const geo::RoadNetwork& net, Rng rng);

  // Spawns a moving vehicle at the start of `route` (must be non-empty).
  VehicleId spawn(std::vector<LinkId> route, double initial_speed,
                  AutomationLevel automation =
                      AutomationLevel::kConditionalAutomation,
                  double speed_factor = 1.0);
  // Spawns a parked vehicle at a fixed offset on a link.
  VehicleId spawn_parked(LinkId link, double offset);
  void despawn(VehicleId id);

  void set_arrival_handler(ArrivalHandler handler);
  void set_right_of_way(RightOfWayFn fn);

  // Advances all vehicles by dt seconds.
  void step(double dt);
  // Registers the periodic step with a simulator.
  void attach(sim::Simulator& sim, double dt = 0.1);

  [[nodiscard]] const VehicleState* find(VehicleId id) const;
  [[nodiscard]] VehicleState* find_mutable(VehicleId id);
  [[nodiscard]] std::size_t vehicle_count() const { return vehicles_.size(); }
  [[nodiscard]] const std::unordered_map<std::uint64_t, VehicleState>&
  vehicles() const {
    return vehicles_;
  }
  [[nodiscard]] const geo::RoadNetwork& network() const { return net_; }
  [[nodiscard]] SimTime now() const { return now_; }

  // Predicted seconds until the vehicle exits the disc (center, radius),
  // walking its remaining route at current speed. Returns +inf for parked
  // vehicles or when the route never leaves the disc. This is the dwell-time
  // estimator used by the v-cloud scheduler (paper §III.A).
  [[nodiscard]] double predict_time_to_exit(VehicleId id, geo::Vec2 center,
                                            double radius) const;

  // Oracle variant for ablations: walks the route at per-link speed limits.
  [[nodiscard]] double oracle_time_to_exit(VehicleId id, geo::Vec2 center,
                                           double radius) const;

  IdmParams& idm_params() { return idm_; }

 private:
  void refresh_world_frame(VehicleState& v) const;
  void advance_vehicle(VehicleState& v, double dt,
                       const std::vector<VehicleId>& lane_order,
                       std::size_t pos_in_lane);
  void rebuild_lane_index();
  [[nodiscard]] double route_time_to_exit(const VehicleState& v,
                                          geo::Vec2 center, double radius,
                                          bool use_speed_limits) const;

  const geo::RoadNetwork& net_;
  Rng rng_;
  IdmParams idm_;
  std::unordered_map<std::uint64_t, VehicleState> vehicles_;
  // (link, lane) -> vehicle ids sorted by decreasing offset (leader first).
  std::unordered_map<std::uint64_t, std::vector<VehicleId>> lane_index_;
  std::uint64_t next_vehicle_id_ = 0;
  ArrivalHandler arrival_handler_;
  RightOfWayFn right_of_way_;
  SimTime now_ = 0.0;
};

}  // namespace vcl::mobility
