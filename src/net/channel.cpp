#include "net/channel.h"

#include <algorithm>
#include <cmath>

namespace vcl::net {

std::uint64_t Channel::add_blackout(BlackoutRegion region) {
  const std::uint64_t token = next_blackout_token_++;
  blackouts_.emplace_back(token, region);
  return token;
}

void Channel::remove_blackout(std::uint64_t token) {
  std::erase_if(blackouts_,
                [token](const auto& entry) { return entry.first == token; });
}

bool Channel::blacked_out(geo::Vec2 pos) const {
  for (const auto& [token, region] : blackouts_) {
    if (geo::distance(pos, region.center) <= region.radius) return true;
  }
  return false;
}

double Channel::reception_probability(geo::Vec2 from, geo::Vec2 to,
                                      std::size_t local_density) const {
  const double d = geo::distance(from, to);
  if (d > config_.max_range) return 0.0;
  if (!blackouts_.empty() && (blacked_out(from) || blacked_out(to))) {
    return 0.0;
  }
  double p = 1.0 - config_.base_loss;
  if (d > config_.reference_range) {
    // Log-distance fade: success decays with (d/ref)^(-alpha), smoothed so
    // p -> ~0 at the cutoff. Shadowing sigma widens the transition band.
    const double ratio =
        (d - config_.reference_range) /
        std::max(config_.max_range - config_.reference_range, 1.0);
    const double fade =
        std::pow(1.0 - ratio, config_.path_loss_exponent / 2.0);
    p *= std::clamp(fade + 0.02 * config_.shadowing_sigma * (1.0 - ratio),
                    0.0, 1.0);
  }
  // CSMA contention: every concurrent transmitter in range erodes success.
  p *= std::max(0.0, 1.0 - config_.contention_per_neighbor *
                               static_cast<double>(local_density));
  return std::clamp(p, 0.0, 1.0);
}

SimTime Channel::hop_delay(std::size_t size_bytes,
                           std::size_t local_density) const {
  const SimTime tx_time =
      static_cast<double>(size_bytes) * 8.0 / config_.data_rate_bps;
  // Expected backoff grows with contenders (simplified binary backoff).
  const SimTime backoff =
      config_.slot_time * (1.0 + static_cast<double>(local_density) * 0.5);
  return tx_time + backoff;
}

ReceptionResult Channel::attempt(geo::Vec2 from, geo::Vec2 to,
                                 std::size_t size_bytes,
                                 std::size_t local_density, Rng& rng) const {
  ReceptionResult r;
  ++counters_.attempts;
  if (!blackouts_.empty() && (blacked_out(from) || blacked_out(to))) {
    ++counters_.blackout_drops;
  }
  const double p = reception_probability(from, to, local_density);
  if (!rng.bernoulli(p)) return r;
  r.received = true;
  ++counters_.delivered;
  // Jitter the deterministic delay by up to one extra backoff round.
  r.delay = hop_delay(size_bytes, local_density) *
            rng.uniform(1.0, 1.5);
  return r;
}

}  // namespace vcl::net
