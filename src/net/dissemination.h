// RSU downlink data dissemination scheduling (after Wu et al. [42]: "robust
// data scheduling for vehicular networks" — stability and FAIRNESS in
// allocating the shared channel).
//
// Vehicles under an RSU request content items; each broadcast slot the RSU
// serves one item, satisfying every pending requester of that item at once
// (broadcast efficiency). Policies:
//   * kFifo:          oldest outstanding request first (baseline)
//   * kMostRequested: maximize requests served per slot (throughput-greedy;
//                     starves unpopular items)
//   * kDeficitFair:   deficit round-robin over items — every item
//                     accumulates credit each slot and the largest-credit
//                     item is served, bounding starvation (the paper's
//                     stability+fairness point)
// Metrics: service ratio, mean wait, and Jain's fairness index over
// per-item mean waits.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/stats.h"
#include "util/time.h"

namespace vcl::net {

enum class DisseminationPolicy : std::uint8_t {
  kFifo,
  kMostRequested,
  kDeficitFair,
};

const char* to_string(DisseminationPolicy p);

class DisseminationScheduler {
 public:
  explicit DisseminationScheduler(DisseminationPolicy policy)
      : policy_(policy) {}

  // A vehicle asks for a content item.
  void request(VehicleId requester, FileId item, SimTime now);

  // One broadcast slot: picks an item per the policy, satisfies all its
  // pending requests. Returns the served item (invalid when idle).
  FileId serve_slot(SimTime now);

  [[nodiscard]] std::size_t pending_requests() const;
  [[nodiscard]] std::size_t served_requests() const { return served_; }
  [[nodiscard]] const Accumulator& wait_time() const { return wait_; }
  // Jain's fairness index over per-item mean waits (1.0 = perfectly fair).
  [[nodiscard]] double jain_fairness() const;

 private:
  struct Pending {
    VehicleId requester;
    SimTime at;
  };

  DisseminationPolicy policy_;
  std::unordered_map<std::uint64_t, std::deque<Pending>> queues_;  // per item
  std::unordered_map<std::uint64_t, double> deficit_;
  std::unordered_map<std::uint64_t, Accumulator> item_wait_;
  std::size_t served_ = 0;
  Accumulator wait_;
};

}  // namespace vcl::net
