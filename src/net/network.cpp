#include "net/network.h"

#include <algorithm>

namespace vcl::net {

Network::Network(sim::Simulator& sim, mobility::TrafficModel& traffic,
                 ChannelConfig channel_cfg, Rng rng)
    : sim_(sim),
      traffic_(traffic),
      channel_(channel_cfg),
      rng_(rng),
      index_(channel_cfg.max_range) {}

void Network::set_handler(Address addr, Handler handler) {
  handlers_[addr.key()] = std::move(handler);
}

void Network::clear_handler(Address addr) { handlers_.erase(addr.key()); }

void Network::start_beacons(SimTime period) {
  refresh();
  sim_.schedule_every(period, [this] { beacon_round(); }, -1.0,
                      "net.beacon");
}

void Network::refresh() {
  rebuild_index();
  beacon_round_tables();
}

void Network::rebuild_index() {
  index_.clear();
  for (const auto& [vid, v] : traffic_.vehicles()) {
    index_.insert(v.id, v.pos);
  }
}

void Network::beacon_round() {
  rebuild_index();
  beacon_round_tables();
}

void Network::beacon_round_tables() {
  const double range = channel_.config().max_range;
  const SimTime now = sim_.now();
  std::vector<VehicleId> nearby;

  // Drop tables of departed vehicles.
  for (auto it = neighbor_tables_.begin(); it != neighbor_tables_.end();) {
    if (traffic_.find(VehicleId{it->first}) == nullptr) {
      it = neighbor_tables_.erase(it);
    } else {
      ++it;
    }
  }

  for (const auto& [vid, v] : traffic_.vehicles()) {
    index_.query(v.pos, range, nearby);
    auto& table = neighbor_tables_[v.id.value()];
    const std::size_t density = nearby.size();
    for (const VehicleId nid : nearby) {
      if (nid == v.id) continue;
      const mobility::VehicleState* n = traffic_.find(nid);
      if (n == nullptr) continue;
      // Sample beacon reception from neighbor -> v; refresh on success.
      if (!rng_.bernoulli(
              channel_.reception_probability(n->pos, v.pos, density))) {
        continue;
      }
      auto existing =
          std::find_if(table.begin(), table.end(),
                       [nid](const NeighborEntry& e) { return e.id == nid; });
      if (existing != table.end()) {
        *existing = NeighborEntry{n->id, n->pos, n->vel, now};
      } else {
        table.push_back(NeighborEntry{n->id, n->pos, n->vel, now});
      }
    }
    // Expire stale entries and entries for departed or out-of-range-departed
    // vehicles.
    std::erase_if(table, [&](const NeighborEntry& e) {
      if (now - e.last_heard > neighbor_ttl_) return true;
      return traffic_.find(e.id) == nullptr;
    });
  }
}

const std::vector<NeighborEntry>& Network::neighbors(VehicleId v) const {
  auto it = neighbor_tables_.find(v.value());
  return it == neighbor_tables_.end() ? empty_ : it->second;
}

const Rsu* Network::reachable_rsu(VehicleId v) const {
  const mobility::VehicleState* s = traffic_.find(v);
  if (s == nullptr) return nullptr;
  return rsus_.covering(s->pos);
}

std::optional<geo::Vec2> Network::position_of(Address addr) const {
  if (addr.is_vehicle()) {
    const mobility::VehicleState* s = traffic_.find(addr.as_vehicle());
    if (s == nullptr) return std::nullopt;
    return s->pos;
  }
  if (addr.is_rsu()) {
    const Rsu* r = rsus_.find(addr.as_rsu());
    if (r == nullptr || !r->online) return std::nullopt;
    return r->pos;
  }
  return std::nullopt;
}

std::size_t Network::local_density(geo::Vec2 pos) const {
  std::vector<VehicleId> nearby;
  index_.query(pos, channel_.config().reference_range, nearby);
  double extra = 0.0;
  if (!extra_load_.empty()) {
    for (const VehicleId v : nearby) {
      auto it = extra_load_.find(v.value());
      if (it != extra_load_.end()) extra += it->second;
    }
  }
  return nearby.size() + static_cast<std::size_t>(extra);
}

void Network::set_extra_load(VehicleId v, double load) {
  if (load <= 0.0) {
    extra_load_.erase(v.value());
  } else {
    extra_load_[v.value()] = load;
  }
}

void Network::set_default_vehicle_handler(VehicleHandler handler) {
  vehicle_default_handler_ = std::move(handler);
}

void Network::deliver(const Message& msg, Address to, SimTime delay) {
  Message delivered = msg;
  delivered.hops += 1;
  auto it = handlers_.find(to.key());
  if (it != handlers_.end()) {
    const Handler& handler = it->second;
    sim_.schedule_after(delay, [handler, delivered] { handler(delivered); },
                        "net.deliver");
    return;
  }
  if (to.is_vehicle() && vehicle_default_handler_) {
    const VehicleId self = to.as_vehicle();
    sim_.schedule_after(
        delay,
        [this, self, delivered] {
          if (vehicle_default_handler_) vehicle_default_handler_(self, delivered);
        },
        "net.deliver");
  }
}

bool Network::transmit(const Message& msg, Address to_addr) {
  ++stats_.unicast_sent;
  stats_.bytes_sent += msg.size_bytes;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), obs::TraceCategory::kNet, "net.tx", msg.trace,
                   {{"src", static_cast<double>(msg.src.key())},
                    {"dst", static_cast<double>(to_addr.key())},
                    {"bytes", static_cast<double>(msg.size_bytes)}});
  }
  const auto from = position_of(msg.src);
  const auto to = position_of(to_addr);
  if (!from || !to) {
    ++stats_.dropped;
    // reason: 1 = endpoint gone, 2 = out of range, 3 = channel loss
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), obs::TraceCategory::kNet, "net.drop",
                     msg.trace,
                     {{"dst", static_cast<double>(to_addr.key())},
                      {"reason", 1.0}});
    }
    return false;
  }
  // RSUs have stronger radios: use the RSU's own range for either endpoint.
  double range_bonus = 1.0;
  if (msg.src.is_rsu() || to_addr.is_rsu()) {
    const Rsu* r = msg.src.is_rsu() ? rsus_.find(msg.src.as_rsu())
                                    : rsus_.find(to_addr.as_rsu());
    if (r != nullptr) {
      range_bonus = r->range / channel_.config().max_range;
    }
  }
  const double dist = geo::distance(*from, *to);
  if (dist > channel_.config().max_range * range_bonus) {
    ++stats_.dropped;
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), obs::TraceCategory::kNet, "net.drop",
                     msg.trace,
                     {{"dst", static_cast<double>(to_addr.key())},
                      {"reason", 2.0},
                      {"dist", dist}});
    }
    return false;
  }
  // Scale position difference so the channel sees an equivalent distance
  // within its nominal range.
  geo::Vec2 eff_to = *from + (*to - *from) / range_bonus;
  const ReceptionResult r = channel_.attempt(
      *from, eff_to, msg.size_bytes, local_density(*from), rng_);
  if (!r.received) {
    ++stats_.dropped;
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), obs::TraceCategory::kNet, "net.drop",
                     msg.trace,
                     {{"dst", static_cast<double>(to_addr.key())},
                      {"reason", 3.0},
                      {"dist", dist}});
    }
    return false;
  }
  ++stats_.unicast_delivered;
  stats_.hop_delay.add(r.delay);
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), obs::TraceCategory::kNet, "net.rx", msg.trace,
                   {{"dst", static_cast<double>(to_addr.key())},
                    {"delay", r.delay},
                    {"bytes", static_cast<double>(msg.size_bytes)}});
  }
  deliver(msg, to_addr, r.delay);
  return true;
}

bool Network::send(Message msg) { return transmit(msg, msg.dst); }

bool Network::send_via(const Message& msg, Address next_hop) {
  return transmit(msg, next_hop);
}

std::size_t Network::broadcast(Message msg) {
  ++stats_.broadcast_sent;
  stats_.bytes_sent += msg.size_bytes;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), obs::TraceCategory::kNet, "net.broadcast",
                   {{"src", static_cast<double>(msg.src.key())},
                    {"bytes", static_cast<double>(msg.size_bytes)}});
  }
  const auto from = position_of(msg.src);
  if (!from) return 0;
  const std::size_t density = local_density(*from);

  std::size_t reached = 0;
  std::vector<VehicleId> nearby;
  index_.query(*from, channel_.config().max_range, nearby);
  for (const VehicleId nid : nearby) {
    const Address addr = Address::vehicle(nid);
    if (addr == msg.src) continue;
    const mobility::VehicleState* n = traffic_.find(nid);
    if (n == nullptr) continue;
    const ReceptionResult r =
        channel_.attempt(*from, n->pos, msg.size_bytes, density, rng_);
    if (!r.received) continue;
    ++reached;
    ++stats_.broadcast_receptions;
    deliver(msg, addr, r.delay);
  }
  // RSUs in range also hear broadcasts.
  for (const Rsu& rsu : rsus_.all()) {
    if (!rsu.online) continue;
    if (geo::distance(rsu.pos, *from) > rsu.range) continue;
    const ReceptionResult r =
        channel_.attempt(*from, *from, msg.size_bytes, density, rng_);
    if (!r.received) continue;
    ++reached;
    deliver(msg, Address::rsu(rsu.id), r.delay);
  }
  return reached;
}

void Network::register_metrics(obs::MetricsRegistry& metrics) const {
  metrics.gauge("net.unicast.sent",
                [this] { return static_cast<double>(stats_.unicast_sent); });
  metrics.gauge("net.unicast.delivered", [this] {
    return static_cast<double>(stats_.unicast_delivered);
  });
  metrics.gauge("net.broadcast.sent",
                [this] { return static_cast<double>(stats_.broadcast_sent); });
  metrics.gauge("net.packet.dropped",
                [this] { return static_cast<double>(stats_.dropped); });
  metrics.gauge("net.bytes.sent",
                [this] { return static_cast<double>(stats_.bytes_sent); });
  metrics.gauge("net.loss.rate", [this] {
    const double attempts = static_cast<double>(stats_.unicast_sent);
    return attempts > 0.0 ? static_cast<double>(stats_.dropped) / attempts
                          : 0.0;
  });
  metrics.gauge("net.hop.delay_mean", [this] { return stats_.hop_delay.mean(); });
  metrics.gauge("chan.attempt.count", [this] {
    return static_cast<double>(channel_.counters().attempts);
  });
  metrics.gauge("chan.attempt.delivered", [this] {
    return static_cast<double>(channel_.counters().delivered);
  });
  metrics.gauge("chan.blackout.dropped", [this] {
    return static_cast<double>(channel_.counters().blackout_drops);
  });
}

void Network::send_backhaul(RsuId from, RsuId to, Message msg) {
  const Rsu* src = rsus_.find(from);
  const Rsu* dst = rsus_.find(to);
  if (src == nullptr || dst == nullptr || !src->online || !dst->online) {
    ++stats_.dropped;
    return;
  }
  stats_.bytes_sent += msg.size_bytes;
  deliver(msg, Address::rsu(to), backhaul_latency_);
}

}  // namespace vcl::net
