#include "net/dissemination.h"

#include <algorithm>

namespace vcl::net {

const char* to_string(DisseminationPolicy p) {
  switch (p) {
    case DisseminationPolicy::kFifo: return "fifo";
    case DisseminationPolicy::kMostRequested: return "most_requested";
    case DisseminationPolicy::kDeficitFair: return "deficit_fair";
  }
  return "unknown";
}

void DisseminationScheduler::request(VehicleId requester, FileId item,
                                     SimTime now) {
  queues_[item.value()].push_back(Pending{requester, now});
}

std::size_t DisseminationScheduler::pending_requests() const {
  std::size_t n = 0;
  for (const auto& [item, q] : queues_) n += q.size();
  return n;
}

FileId DisseminationScheduler::serve_slot(SimTime now) {
  // Deficit accrual happens every slot regardless of policy (cheap, and
  // keeps switching policies mid-run well-defined).
  for (auto& [item, q] : queues_) {
    if (!q.empty()) deficit_[item] += 1.0;
  }

  std::uint64_t best = 0;
  bool found = false;
  switch (policy_) {
    case DisseminationPolicy::kFifo: {
      SimTime oldest = 1e300;
      for (const auto& [item, q] : queues_) {
        if (!q.empty() && q.front().at < oldest) {
          oldest = q.front().at;
          best = item;
          found = true;
        }
      }
      break;
    }
    case DisseminationPolicy::kMostRequested: {
      std::size_t most = 0;
      for (const auto& [item, q] : queues_) {
        if (q.size() > most || (q.size() == most && found && item < best)) {
          if (q.empty()) continue;
          most = q.size();
          best = item;
          found = true;
        }
      }
      break;
    }
    case DisseminationPolicy::kDeficitFair: {
      double top = -1.0;
      for (const auto& [item, q] : queues_) {
        if (q.empty()) continue;
        const double d = deficit_[item];
        if (d > top || (d == top && found && item < best)) {
          top = d;
          best = item;
          found = true;
        }
      }
      break;
    }
  }
  if (!found) return FileId{};

  auto& q = queues_[best];
  for (const Pending& p : q) {
    ++served_;
    const double w = now - p.at;
    wait_.add(w);
    item_wait_[best].add(w);
  }
  q.clear();
  deficit_[best] = 0.0;
  return FileId{best};
}

double DisseminationScheduler::jain_fairness() const {
  // Jain over per-item mean waits, inverted so that "fair" means items see
  // SIMILAR service (index of 1/(mean wait) values).
  std::vector<double> rates;
  for (const auto& [item, acc] : item_wait_) {
    if (acc.count() == 0) continue;
    rates.push_back(1.0 / std::max(acc.mean(), 1e-6));
  }
  if (rates.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double r : rates) {
    sum += r;
    sum_sq += r * r;
  }
  return (sum * sum) /
         (static_cast<double>(rates.size()) * sum_sq);
}

}  // namespace vcl::net
