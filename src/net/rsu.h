// Road-side units: fixed infrastructure nodes with a wired backhaul.
#pragma once

#include <vector>

#include "geo/road_network.h"
#include "geo/vec2.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::net {

struct Rsu {
  RsuId id;
  geo::Vec2 pos;
  double range = 500.0;  // radio range, meters (better antenna than OBUs)
  bool online = true;
};

// Owns the RSU population; placement helpers cover the common deployments.
class RsuField {
 public:
  RsuId add(geo::Vec2 pos, double range = 500.0);

  [[nodiscard]] const Rsu* find(RsuId id) const;
  [[nodiscard]] const std::vector<Rsu>& all() const { return rsus_; }
  [[nodiscard]] std::size_t count() const { return rsus_.size(); }
  [[nodiscard]] std::size_t online_count() const;

  void set_online(RsuId id, bool online);
  // Takes every RSU offline (disaster scenario, paper §IV.A.2 / §V.A).
  void fail_all();
  void restore_all();

  // Nearest online RSU whose range covers `pos`; nullptr when uncovered.
  [[nodiscard]] const Rsu* covering(geo::Vec2 pos) const;

  // Places RSUs on a regular grid over the road network's bounding box.
  void place_grid(const geo::RoadNetwork& net, double spacing,
                  double range = 500.0);

 private:
  std::vector<Rsu> rsus_;
};

}  // namespace vcl::net
