// Message and addressing types for the V2V/V2I fabric.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec2.h"
#include "obs/trace.h"
#include "util/ids.h"
#include "util/time.h"

namespace vcl::net {

enum class AddressType : std::uint8_t { kVehicle, kRsu, kBroadcast };

// A network endpoint: a vehicle, an RSU, or the local broadcast address.
struct Address {
  AddressType type = AddressType::kBroadcast;
  std::uint64_t id = 0;

  static Address vehicle(VehicleId v) {
    return {AddressType::kVehicle, v.value()};
  }
  static Address rsu(RsuId r) { return {AddressType::kRsu, r.value()}; }
  static Address broadcast() { return {AddressType::kBroadcast, 0}; }

  [[nodiscard]] bool is_vehicle() const {
    return type == AddressType::kVehicle;
  }
  [[nodiscard]] bool is_rsu() const { return type == AddressType::kRsu; }
  [[nodiscard]] bool is_broadcast() const {
    return type == AddressType::kBroadcast;
  }
  [[nodiscard]] VehicleId as_vehicle() const { return VehicleId{id}; }
  [[nodiscard]] RsuId as_rsu() const { return RsuId{id}; }

  friend bool operator==(Address a, Address b) {
    return a.type == b.type && a.id == b.id;
  }
  friend bool operator!=(Address a, Address b) { return !(a == b); }

  // Packed key for hashing.
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(type) << 62) | (id & ((1ULL << 62) - 1));
  }
};

enum class MessageKind : std::uint8_t {
  kBeacon,       // periodic safety/cooperative-awareness message
  kData,         // application payload
  kControl,      // cluster / cloud management
  kAuth,         // authentication handshake
  kTaskAssign,   // v-cloud task dispatch
  kTaskResult,   // v-cloud result return
  kTaskMigrate,  // encrypted checkpoint handover
  kEventReport,     // trust module: observed physical event
  kHeartbeat,       // worker liveness beat to the cloud broker
  kStorageWrite,    // storage service: replica write (object payload)
  kStorageRead,     // storage service: replica read probe
  kStorageRepair,   // storage service: re-replication copy between holders
};

// Human-readable kind label for traces and tables.
const char* to_string(MessageKind kind);

struct Message {
  MessageId id;
  Address src;
  Address dst;
  MessageKind kind = MessageKind::kData;
  std::size_t size_bytes = 256;
  SimTime created = 0.0;
  int hops = 0;
  int ttl = 8;
  // Geographic destination for position-based routing (optional).
  geo::Vec2 dst_pos;
  bool has_dst_pos = false;
  // Opaque payload tag: modules attach meaning via their own side tables
  // keyed by message id; `payload_word` covers the common small cases.
  std::uint64_t payload_word = 0;
  std::vector<std::uint8_t> payload;
  // Causal tracing context (zero = untraced): a message sent on behalf of a
  // traced task carries the task's {trace_id, span_id} so net.tx/rx/drop
  // events attach to the task's causal tree across hops and retries.
  obs::TraceContext trace;
};

}  // namespace vcl::net
