// Radio channel model for DSRC-class V2V/V2I links.
//
// Reception combines (1) a deterministic range cutoff, (2) log-distance path
// loss with log-normal shadowing mapped to a reception probability, and
// (3) a CSMA-style contention penalty that grows with local transmitter
// density. Per-hop delay is transmission time (size / data rate) plus a
// density-dependent channel-access backoff. This reproduces the phenomena
// the paper's challenges hinge on — lossy links, density collapse, hop
// latency — without a bit-level PHY (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/vec2.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::net {

struct ChannelConfig {
  double max_range = 300.0;        // hard cutoff, meters (DSRC-class)
  double reference_range = 150.0;  // distance where loss starts to bite
  double path_loss_exponent = 2.7;
  double shadowing_sigma = 3.0;    // dB
  double data_rate_bps = 6e6;      // 802.11p nominal 6 Mbit/s
  SimTime slot_time = 50 * kMicroseconds;
  double contention_per_neighbor = 0.004;  // loss added per local transmitter
  double base_loss = 0.02;                 // irreducible packet error rate
};

struct ReceptionResult {
  bool received = false;
  SimTime delay = 0.0;  // valid when received
};

// PHY-level tallies, kept by the channel itself so observability reaches
// below Network's accounting (a drop here distinguishes radio loss from
// there being no handler). Registered as gauges by the telemetry layer.
struct ChannelCounters {
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t blackout_drops = 0;  // attempts with an endpoint blacked out
};

// A circular region where radio reception is dead (jamming, tunnel, urban
// canyon, post-disaster partition). While active, any transmission with an
// endpoint inside the region fails.
struct BlackoutRegion {
  geo::Vec2 center;
  double radius = 0.0;
};

class Channel {
 public:
  explicit Channel(ChannelConfig config = {}) : config_(config) {}

  // Probability that a packet from `from` reaches `to` given `local_density`
  // concurrent transmitters in range (deterministic; no RNG).
  [[nodiscard]] double reception_probability(geo::Vec2 from, geo::Vec2 to,
                                             std::size_t local_density) const;

  // Samples one transmission attempt.
  [[nodiscard]] ReceptionResult attempt(geo::Vec2 from, geo::Vec2 to,
                                        std::size_t size_bytes,
                                        std::size_t local_density,
                                        Rng& rng) const;

  // Deterministic per-hop latency (used for expectation-style accounting).
  [[nodiscard]] SimTime hop_delay(std::size_t size_bytes,
                                  std::size_t local_density) const;

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  ChannelConfig& config() { return config_; }

  // Radio blackout windows (fault injection): while any region covers
  // either endpoint, reception probability is forced to 0. Returns a token
  // for removal when the window ends.
  std::uint64_t add_blackout(BlackoutRegion region);
  void remove_blackout(std::uint64_t token);
  void clear_blackouts() { blackouts_.clear(); }
  [[nodiscard]] bool blacked_out(geo::Vec2 pos) const;
  [[nodiscard]] std::size_t blackout_count() const { return blackouts_.size(); }

  [[nodiscard]] const ChannelCounters& counters() const { return counters_; }

 private:
  ChannelConfig config_;
  std::vector<std::pair<std::uint64_t, BlackoutRegion>> blackouts_;
  std::uint64_t next_blackout_token_ = 1;
  // attempt() is logically const (sampling does not change the model);
  // the tallies are bookkeeping on the side.
  mutable ChannelCounters counters_;
};

}  // namespace vcl::net
