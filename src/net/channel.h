// Radio channel model for DSRC-class V2V/V2I links.
//
// Reception combines (1) a deterministic range cutoff, (2) log-distance path
// loss with log-normal shadowing mapped to a reception probability, and
// (3) a CSMA-style contention penalty that grows with local transmitter
// density. Per-hop delay is transmission time (size / data rate) plus a
// density-dependent channel-access backoff. This reproduces the phenomena
// the paper's challenges hinge on — lossy links, density collapse, hop
// latency — without a bit-level PHY (see DESIGN.md substitutions).
#pragma once

#include "geo/vec2.h"
#include "util/rng.h"
#include "util/time.h"

namespace vcl::net {

struct ChannelConfig {
  double max_range = 300.0;        // hard cutoff, meters (DSRC-class)
  double reference_range = 150.0;  // distance where loss starts to bite
  double path_loss_exponent = 2.7;
  double shadowing_sigma = 3.0;    // dB
  double data_rate_bps = 6e6;      // 802.11p nominal 6 Mbit/s
  SimTime slot_time = 50 * kMicroseconds;
  double contention_per_neighbor = 0.004;  // loss added per local transmitter
  double base_loss = 0.02;                 // irreducible packet error rate
};

struct ReceptionResult {
  bool received = false;
  SimTime delay = 0.0;  // valid when received
};

class Channel {
 public:
  explicit Channel(ChannelConfig config = {}) : config_(config) {}

  // Probability that a packet from `from` reaches `to` given `local_density`
  // concurrent transmitters in range (deterministic; no RNG).
  [[nodiscard]] double reception_probability(geo::Vec2 from, geo::Vec2 to,
                                             std::size_t local_density) const;

  // Samples one transmission attempt.
  [[nodiscard]] ReceptionResult attempt(geo::Vec2 from, geo::Vec2 to,
                                        std::size_t size_bytes,
                                        std::size_t local_density,
                                        Rng& rng) const;

  // Deterministic per-hop latency (used for expectation-style accounting).
  [[nodiscard]] SimTime hop_delay(std::size_t size_bytes,
                                  std::size_t local_density) const;

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  ChannelConfig& config() { return config_; }

 private:
  ChannelConfig config_;
};

}  // namespace vcl::net
