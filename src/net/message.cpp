#include "net/message.h"

namespace vcl::net {

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kBeacon: return "beacon";
    case MessageKind::kData: return "data";
    case MessageKind::kControl: return "control";
    case MessageKind::kAuth: return "auth";
    case MessageKind::kTaskAssign: return "task_assign";
    case MessageKind::kTaskResult: return "task_result";
    case MessageKind::kTaskMigrate: return "task_migrate";
    case MessageKind::kEventReport: return "event_report";
    case MessageKind::kHeartbeat: return "heartbeat";
    case MessageKind::kStorageWrite: return "storage_write";
    case MessageKind::kStorageRead: return "storage_read";
    case MessageKind::kStorageRepair: return "storage_repair";
  }
  return "unknown";
}

}  // namespace vcl::net
