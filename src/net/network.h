// Network fabric: binds mobility, the radio channel and RSUs into a
// message-passing substrate with beaconing and neighbor tables.
//
// Model:
//  * Beacon rounds. Every `beacon_period` the fabric rebuilds the spatial
//    index and refreshes each vehicle's neighbor table by sampling beacon
//    reception from every in-range transmitter (an aggregate of per-beacon
//    MAC behaviour; beacons themselves are not individually evented, which
//    keeps a 1000-vehicle scenario tractable).
//  * Data messages. `send`/`broadcast` are per-message: reception is
//    sampled on the live channel and delivery callbacks fire after the
//    sampled hop delay. Vehicles and RSUs register handlers by address.
//  * RSU backhaul. RSU-to-RSU delivery is wired and reliable with a fixed
//    small latency.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "geo/spatial_grid.h"
#include "mobility/traffic.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/rsu.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace vcl::net {

struct NeighborEntry {
  VehicleId id;
  geo::Vec2 pos;
  geo::Vec2 vel;
  SimTime last_heard = 0.0;
};

struct NetStats {
  std::size_t unicast_sent = 0;
  std::size_t unicast_delivered = 0;
  std::size_t broadcast_sent = 0;       // transmissions
  std::size_t broadcast_receptions = 0;
  std::size_t dropped = 0;
  std::size_t bytes_sent = 0;
  Accumulator hop_delay{/*keep_samples=*/false};
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& sim, mobility::TrafficModel& traffic,
          ChannelConfig channel_cfg, Rng rng);

  // --- wiring ---------------------------------------------------------------
  RsuField& rsus() { return rsus_; }
  [[nodiscard]] const RsuField& rsus() const { return rsus_; }
  Channel& channel() { return channel_; }
  sim::Simulator& simulator() { return sim_; }
  mobility::TrafficModel& traffic() { return traffic_; }
  [[nodiscard]] const mobility::TrafficModel& traffic() const {
    return traffic_;
  }

  void set_handler(Address addr, Handler handler);
  void clear_handler(Address addr);

  // Fallback handler invoked for any vehicle without a specific handler —
  // routing protocols use this to run the same forwarding logic on every
  // vehicle without registering per-spawn.
  using VehicleHandler = std::function<void(VehicleId, const Message&)>;
  void set_default_vehicle_handler(VehicleHandler handler);

  // Starts beacon rounds (and keeps the spatial index fresh). Neighbor
  // entries persist across rounds and expire after `neighbor_ttl` — a
  // single lost beacon does not evict a neighbor, matching real CAM
  // processing.
  void start_beacons(SimTime period = 1.0);
  void set_neighbor_ttl(SimTime ttl) { neighbor_ttl_ = ttl; }
  // Forces an immediate index + neighbor-table refresh.
  void refresh();

  // --- queries ----------------------------------------------------------------
  [[nodiscard]] const std::vector<NeighborEntry>& neighbors(VehicleId v) const;
  // Nearest online RSU covering the vehicle, nullptr if none.
  [[nodiscard]] const Rsu* reachable_rsu(VehicleId v) const;
  // Position of any addressable endpoint (vehicles pulled live from traffic).
  [[nodiscard]] std::optional<geo::Vec2> position_of(Address addr) const;
  // Number of transmitters within contention range of a position, plus any
  // registered extra channel load (e.g. DoS flooders).
  [[nodiscard]] std::size_t local_density(geo::Vec2 pos) const;

  // Extra contention units a vehicle puts on the channel (junk traffic).
  // Measured in equivalent-transmitter units; 0 clears.
  void set_extra_load(VehicleId v, double load);
  void clear_extra_loads() { extra_load_.clear(); }

  // --- transmission -----------------------------------------------------------
  // Allocates a fresh message id.
  MessageId next_message_id() { return MessageId{next_msg_id_++}; }

  // One-hop unicast; returns false when the destination is out of range or
  // reception failed (caller sees only asynchronous delivery, the return
  // value is for accounting/tests).
  bool send(Message msg);
  // One-hop unicast to `next_hop` while leaving msg.dst (the final
  // destination) untouched — the forwarding primitive for multi-hop routing.
  bool send_via(const Message& msg, Address next_hop);
  // One-hop broadcast to everything in radio range of the source.
  // Returns the number of endpoints the transmission reached.
  std::size_t broadcast(Message msg);
  // Wired RSU-to-RSU transfer (reliable).
  void send_backhaul(RsuId from, RsuId to, Message msg);

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  NetStats& stats() { return stats_; }

  // --- telemetry (off by default: null recorder = one branch per event) -------
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  // Registers the fabric's gauges (net.* / chan.*) with the sampler.
  void register_metrics(obs::MetricsRegistry& metrics) const;

  [[nodiscard]] SimTime backhaul_latency() const { return backhaul_latency_; }
  void set_backhaul_latency(SimTime s) { backhaul_latency_ = s; }

 private:
  void beacon_round();
  void beacon_round_tables();
  void rebuild_index();
  void deliver(const Message& msg, Address to, SimTime delay);
  bool transmit(const Message& msg, Address to);

  sim::Simulator& sim_;
  mobility::TrafficModel& traffic_;
  Channel channel_;
  Rng rng_;
  RsuField rsus_;
  geo::SpatialGrid<VehicleId> index_;
  std::unordered_map<std::uint64_t, std::vector<NeighborEntry>> neighbor_tables_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  VehicleHandler vehicle_default_handler_;
  std::uint64_t next_msg_id_ = 1;
  SimTime backhaul_latency_ = 2 * kMilliseconds;
  SimTime neighbor_ttl_ = 3.0;
  std::unordered_map<std::uint64_t, double> extra_load_;
  NetStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  std::vector<NeighborEntry> empty_;
};

}  // namespace vcl::net
