#include "net/rsu.h"

#include <limits>

namespace vcl::net {

RsuId RsuField::add(geo::Vec2 pos, double range) {
  const RsuId id{rsus_.size()};
  rsus_.push_back(Rsu{id, pos, range, true});
  return id;
}

const Rsu* RsuField::find(RsuId id) const {
  if (id.value() >= rsus_.size()) return nullptr;
  return &rsus_[id.value()];
}

std::size_t RsuField::online_count() const {
  std::size_t n = 0;
  for (const Rsu& r : rsus_) n += r.online ? 1 : 0;
  return n;
}

void RsuField::set_online(RsuId id, bool online) {
  if (id.value() < rsus_.size()) rsus_[id.value()].online = online;
}

void RsuField::fail_all() {
  for (Rsu& r : rsus_) r.online = false;
}

void RsuField::restore_all() {
  for (Rsu& r : rsus_) r.online = true;
}

const Rsu* RsuField::covering(geo::Vec2 pos) const {
  const Rsu* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const Rsu& r : rsus_) {
    if (!r.online) continue;
    const double d = geo::distance(r.pos, pos);
    if (d <= r.range && d < best_d) {
      best = &r;
      best_d = d;
    }
  }
  return best;
}

void RsuField::place_grid(const geo::RoadNetwork& net, double spacing,
                          double range) {
  const auto [lo, hi] = net.bounding_box();
  for (double x = lo.x; x <= hi.x + 1e-9; x += spacing) {
    for (double y = lo.y; y <= hi.y + 1e-9; y += spacing) {
      add({x, y}, range);
    }
  }
}

}  // namespace vcl::net
