// Secure data sharing: sticky data-policy packages in a v-cloud (paper
// §V.C).
//
// A lender vehicle shares its lidar capture with the cloud under the policy
// "cluster heads in zone a3, or any two of {level-4 automation, lidar
// sensing, fleet membership}". The policy travels WITH the data: access is
// enforced by ABE decryption wherever the package goes, and every attempt
// lands on the package's tamper-evident audit log.
#include <iostream>

#include "access/role_manager.h"
#include "access/sticky_package.h"
#include "util/table.h"

int main() {
  using namespace vcl;
  using namespace vcl::access;

  AbeAuthority authority(2024);
  crypto::Drbg drbg(std::uint64_t{42});
  const crypto::Bytes owner_key = drbg.generate(32);

  // The shared data item.
  const crypto::Bytes lidar_frame = drbg.generate(2048);

  const auto policy = Policy::parse(
      "(role:head & zone:a3) | 2of(level:high, sensor:lidar, fleet:acme)");
  crypto::OpCounts ops;
  StickyPackage package(authority, lidar_frame, policy->clone(), owner_key,
                        /*object_id=*/7001, drbg, ops);
  std::cout << "Sealed lidar frame under policy:\n  " << package.policy_text()
            << "\n\n";

  // Requesters with different contexts (attributes derive from context via
  // the RoleManager — §III.C's context-dependent roles).
  RoleManager roles;
  struct Requester {
    const char* label;
    std::uint64_t credential;
    VehicleContext ctx;
    std::vector<Attribute> extra;
  };
  std::vector<Requester> requesters;
  {
    Requester head{"cluster head in a3", 9001, {}, {}};
    head.ctx.is_cluster_head = true;
    head.ctx.zone = "a3";
    requesters.push_back(head);

    Requester rich{"L4 vehicle with lidar", 9002, {}, {"sensor:lidar"}};
    rich.ctx.automation = mobility::AutomationLevel::kHighAutomation;
    requesters.push_back(rich);

    Requester member{"ordinary member", 9003, {}, {}};
    member.ctx.zone = "b7";
    requesters.push_back(member);
  }

  Table table("access attempts", {"requester", "attributes", "granted"});
  for (const Requester& r : requesters) {
    AttributeSet attrs = roles.attributes_for(r.ctx);
    for (const Attribute& a : r.extra) attrs.add(a);
    const AbeUserKey key = authority.keygen(attrs);
    const auto data = package.access(key, attrs, r.credential, 10.0, ops);

    std::string attr_list;
    for (const auto& a : attrs.all()) attr_list += a + " ";
    table.add_row({r.label, attr_list, data.has_value() ? "YES" : "no"});

    if (data.has_value() && *data != lidar_frame) {
      std::cerr << "integrity failure!\n";
      return 1;
    }
  }
  table.print(std::cout);

  // The audit trail traveled with the package.
  Table log_table("package audit log (hash-chained)",
                  {"time", "credential", "granted"});
  for (const AuditRecord& rec : package.log().records()) {
    log_table.add_row({Table::num(rec.time, 1), std::to_string(rec.accessor),
                       rec.granted ? "yes" : "no"});
  }
  log_table.print(std::cout);
  std::cout << "audit chain verifies: "
            << (package.log().verify_chain() ? "yes" : "NO") << "\n";

  // Tampering with the policy text is detected by the owner's envelope MAC.
  package.tamper_policy_text("anyone");
  std::cout << "after policy tamper, envelope verifies: "
            << (package.verify_envelope(owner_key) ? "yes" : "NO (detected)")
            << "\n";
  return 0;
}
