// Fleet compute: the full lifecycle — cold fleet boots into the system,
// forms a dynamic cloud, and runs a split-run-combine aggregation job.
//
//   1. Vehicles join via the bootstrap protocol (RSU or neighbor relay),
//      obtaining pseudonym pools and DH session keys (§V.A initialization).
//   2. A dynamic v-cloud forms over the moving-zone clusters.
//   3. A map-style job (e.g. "build the HD-map diff for this district")
//      splits into 12 parts; the broker aggregates results into a
//      Merkle-rooted combined output the submitter can verify.
#include <iostream>

#include "core/bootstrap.h"
#include "core/system.h"
#include "util/table.h"
#include "vcloud/aggregate.h"

int main() {
  using namespace vcl;

  core::SystemConfig cfg;
  cfg.scenario.vehicles = 70;
  cfg.scenario.seed = 3;
  cfg.scenario.rsu_spacing = 800.0;  // sparse infrastructure
  cfg.architecture = core::CloudArchitecture::kDynamic;
  core::VehicularCloudSystem system(cfg);
  system.start();

  // Phase 1: bootstrap.
  core::BootstrapProtocol bootstrap(system.scenario().network(),
                                    system.authority());
  bootstrap.attach(1.0);
  system.run_for(30.0);
  std::cout << "after 30 s: " << bootstrap.joined_count() << "/"
            << system.scenario().traffic().vehicle_count()
            << " vehicles joined (" << bootstrap.via_rsu_count()
            << " via RSU, " << bootstrap.via_relay_count()
            << " relayed), mean join latency "
            << Table::num(bootstrap.join_latency().mean(), 2) << " s\n";

  // Phase 2: the dynamic cloud is already live; show what it pooled.
  const auto pool = system.cloud().pool();
  std::cout << "dynamic cloud: " << pool.members << " members pooling "
            << Table::num(pool.compute, 1) << " work-units/s\n\n";

  // Phase 3: aggregation job.
  vcloud::Aggregator aggregator(system.cloud());
  aggregator.attach(system.scenario().simulator(), 1.0);
  vcloud::AggregateJobSpec job_spec;
  job_spec.total_work = 120.0;
  job_spec.parts = 12;
  job_spec.deadline = system.scenario().simulator().now() + 240.0;
  const TaskId job = aggregator.submit(job_spec);
  std::cout << "submitted aggregate job (" << job_spec.parts << " parts, "
            << job_spec.total_work << " work units total)\n";

  system.run_for(240.0);

  const auto* status = aggregator.status(job);
  Table table("fleet compute job result", {"metric", "value"});
  table.add_row({"parts completed",
                 std::to_string(status->parts_completed) + "/" +
                     std::to_string(status->parts_total)});
  table.add_row({"job state", status->completed ? "COMPLETED"
                              : status->failed  ? "FAILED"
                                                : "in progress"});
  if (status->completed) {
    table.add_row({"completed at (s)", Table::num(status->completed_at, 1)});
    table.add_row({"result Merkle root",
                   crypto::to_hex(status->result_root).substr(0, 16) + "…"});
  }
  table.add_row({"task migrations (handover)",
                 std::to_string(system.cloud().stats().migrations)});
  table.print(std::cout);

  std::cout << "The Merkle root lets the submitter verify each part's\n"
               "contribution to the combined result — result aggregation\n"
               "with integrity, per paper §III.A.\n";
  return status->completed ? 0 : 1;
}
