// Disaster response: the paper's motivating scenario for dynamic v-clouds.
//
// A city runs an infrastructure-based cloud anchored to RSUs. At t=120 s an
// earthquake takes the RSUs down; the emergency controller flips the region
// into emergency mode and a dynamic (pure-V2V) cloud carries the load until
// the all-clear. The log shows the infrastructure cloud collapsing and the
// dynamic cloud continuing to complete tasks.
#include <iostream>

#include "core/emergency.h"
#include "core/system.h"
#include "util/table.h"

int main() {
  using namespace vcl;

  core::SystemConfig infra_cfg;
  infra_cfg.scenario.vehicles = 80;
  infra_cfg.scenario.seed = 21;
  infra_cfg.scenario.rsu_spacing = 500.0;
  infra_cfg.architecture = core::CloudArchitecture::kInfrastructureBased;

  core::VehicularCloudSystem system(infra_cfg);
  system.start();
  auto& scenario = system.scenario();

  // A second, dynamic cloud over the same vehicles (the fallback).
  auto membership = vcloud::largest_cluster_membership(system.clusters());
  vcloud::VehicularCloud dynamic_cloud(
      CloudId{99}, scenario.network(), membership,
      vcloud::members_centroid_region(scenario.traffic(), membership, 300.0),
      std::make_unique<vcloud::DwellAwareScheduler>(), vcloud::CloudConfig{},
      scenario.fork_rng(101));
  dynamic_cloud.attach();
  dynamic_cloud.refresh();

  core::EmergencyController emergency(scenario.network());
  emergency.add_listener([&](core::OperatingMode mode, geo::Vec2, double) {
    std::cout << "[t=" << scenario.simulator().now()
              << "s] mode switched to " << core::to_string(mode) << "\n";
  });

  vcloud::WorkloadGenerator workload({10.0, 1.0, 0.2, 90.0},
                                     scenario.fork_rng(55));
  // Feed both clouds the same steady task stream.
  scenario.simulator().schedule_every(5.0, [&] {
    system.cloud().submit(workload.next(scenario.simulator().now()));
    dynamic_cloud.submit(workload.next(scenario.simulator().now()));
  });

  std::cout << "Phase 1: normal operation (RSUs online: "
            << scenario.network().rsus().online_count() << ")\n";
  system.run_for(120.0);
  const auto infra_before = system.cloud().stats().completed;
  const auto dynamic_before = dynamic_cloud.stats().completed;

  const auto [lo, hi] = scenario.road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  std::cout << "\nPhase 2: earthquake — RSUs in a 2 km radius fail\n";
  emergency.declare_emergency(center, 2000.0);
  system.run_for(180.0);
  const auto infra_during = system.cloud().stats().completed - infra_before;
  const auto dynamic_during =
      dynamic_cloud.stats().completed - dynamic_before;

  std::cout << "\nPhase 3: all clear\n";
  emergency.all_clear();
  system.run_for(120.0);

  Table table("disaster response: tasks completed per phase",
              {"cloud", "normal (0-120s)", "disaster (120-300s)", "total"});
  table.add_row({"infrastructure-based", std::to_string(infra_before),
                 std::to_string(infra_during),
                 std::to_string(system.cloud().stats().completed)});
  table.add_row({"dynamic (pure V2V)", std::to_string(dynamic_before),
                 std::to_string(dynamic_during),
                 std::to_string(dynamic_cloud.stats().completed)});
  table.print(std::cout);

  std::cout << "The dynamic cloud keeps completing tasks through the outage;"
               "\nthe infrastructure cloud stalls until the all-clear —"
               "\nthe availability argument of paper §IV.A.2.\n";
  return 0;
}
