// Traffic-alert trustworthiness: content validation under attack (paper
// §III.D / §V.D).
//
// Vehicles near a real ice patch report it; an attacker fabricates a fake
// accident elsewhere and — with Sybil credentials — floods denials of the
// real ice. The message classifier groups reports into events and each
// validator scores them; the run shows sender-blind majority voting being
// fooled where distance-weighted and Bayesian content validation hold up.
#include <iostream>

#include "attack/false_data.h"
#include "attack/sybil.h"
#include "trust/classifier.h"
#include "trust/dempster_shafer.h"
#include "trust/validators.h"
#include "util/table.h"

int main() {
  using namespace vcl;
  using namespace vcl::trust;

  Rng rng(2025);

  // Ground truth: one real ice patch at (500, 0). No accident anywhere.
  GroundTruthEvent ice;
  ice.id = EventId{1};
  ice.type = EventType::kIce;
  ice.location = {500, 0};
  ice.real = true;

  std::vector<Report> air;  // everything on the air

  // 12 honest witnesses drive past the ice and report it.
  for (int i = 0; i < 12; ++i) {
    Report r;
    r.type = EventType::kIce;
    r.location = ice.location +
                 geo::Vec2{rng.uniform(-15, 15), rng.uniform(-15, 15)};
    r.time = rng.uniform(0.0, 8.0);
    r.positive = true;
    r.reporter_credential = static_cast<std::uint64_t>(100 + i);
    r.reporter_pos = ice.location + geo::Vec2{rng.uniform(-40, 40), 0};
    r.truth_event = ice.id;
    air.push_back(r);
  }

  // One compromised vehicle with 15 Sybil identities denies the ice and
  // fabricates an accident 3 km away.
  const auto sybils = attack::SybilFactory::credentials({VehicleId{666}}, 15);
  attack::FalseDataAttacker attacker(sybils, rng.fork(1));
  for (auto& r : attacker.deny(ice, 4.0, 15)) {
    r.reporter_pos = ice.location + geo::Vec2{700, 0};  // claims from afar
    air.push_back(r);
  }
  for (auto& r : attacker.fabricate(EventType::kAccident, {3000, 0}, 5.0, 15)) {
    air.push_back(r);
  }

  // Classify the air into event clusters.
  MessageClassifier classifier;
  const auto clusters = classifier.classify(air);
  std::cout << "classified " << air.size() << " reports into "
            << clusters.size() << " event clusters\n\n";

  const MajorityVote majority;
  const DistanceWeightedVote weighted;
  const BayesianInference bayes(0.8);
  const DempsterShafer ds;

  Table table("per-event validator decisions (ground truth in brackets)",
              {"event", "reports", "majority", "dist_weighted", "bayesian",
               "dempster_shafer"});
  for (const EventCluster& c : clusters) {
    const bool real = !c.reports.empty() && c.reports.front().truth_event ==
                                                ice.id;
    std::string label = std::string(to_string(c.type)) + " @(" +
                        Table::num(c.centroid.x, 0) + "," +
                        Table::num(c.centroid.y, 0) + ") [" +
                        (real ? "REAL" : "FAKE") + "]";
    auto cell = [&](const Validator& v) {
      const TrustDecision d = v.evaluate(c);
      return std::string(d.accepted ? "accept " : "reject ") +
             Table::num(d.score, 2);
    };
    table.add_row({label, std::to_string(c.reports.size()), cell(majority),
                   cell(weighted), cell(bayes), cell(ds)});
  }
  table.print(std::cout);

  std::cout
      << "Distance weighting discounts the attacker's far-away denials of\n"
         "the real ice, while plain majority voting is swamped by Sybil\n"
         "identities — the content-vs-sender argument of paper §III.D.\n"
         "Note the fabricated accident: with no honest witnesses to\n"
         "contradict it, every content validator accepts it — which is why\n"
         "the paper pairs trust evaluation with Sybil-resistant\n"
         "authentication (one enrollment per physical vehicle).\n";
  return 0;
}
