// Smart intersections: virtual traffic lights run by the vehicles
// themselves (paper §III.A: "a vehicle may serve at a certain time as one
// of a group-decision-makers when crossing an intersection").
//
// The same rush-hour city runs three ways — uncontrolled, conventional
// fixed-cycle signals, and VTL (a leader elected among the approaching
// vehicles acts as the light) — and prints the fleet's speed and stopped
// time under each regime, plus how often the VTL decision role changed
// hands.
#include <iostream>

#include "core/scenario.h"
#include "core/vtl.h"
#include "mobility/intersection.h"
#include "util/table.h"

int main() {
  using namespace vcl;

  Table table("rush hour under three intersection regimes (120 vehicles, "
              "4x4 grid, 180 s)",
              {"regime", "mean_speed_m/s", "time_stopped", "decision_makers"});

  for (const std::string regime : {"uncontrolled", "fixed signals",
                                   "virtual traffic lights"}) {
    core::ScenarioConfig cfg;
    cfg.vehicles = 120;
    cfg.seed = 5;
    cfg.grid_rows = 4;
    cfg.grid_cols = 4;
    core::Scenario scenario(cfg);
    scenario.start();

    std::unique_ptr<mobility::FixedCycleController> fixed;
    std::unique_ptr<core::VtlController> vtl;
    if (regime == "fixed signals") {
      fixed = std::make_unique<mobility::FixedCycleController>(
          scenario.road(), scenario.simulator(), 15.0);
      scenario.traffic().set_right_of_way(
          [&f = *fixed](LinkId l, VehicleId v) { return f.can_enter(l, v); });
    } else if (regime == "virtual traffic lights") {
      vtl = std::make_unique<core::VtlController>(scenario.network());
      vtl->attach();
      scenario.traffic().set_right_of_way(
          [&v = *vtl](LinkId l, VehicleId id) { return v.can_enter(l, id); });
    }

    core::StopMeter meter(scenario.traffic());
    meter.attach(scenario.simulator());
    scenario.run_for(180.0);

    table.add_row(
        {regime, Table::num(meter.mean_speed(), 2),
         Table::num(meter.stopped_fraction() * 100.0, 1) + "%",
         vtl ? std::to_string(vtl->leader_changes()) + " leader handoffs"
             : (fixed ? "roadside hardware" : "none (unsafe)")});
  }
  table.print(std::cout);

  std::cout
      << "VTL recovers most of the uncontrolled flow without any roadside\n"
         "hardware: the vehicles at each junction elect their own decision\n"
         "maker, and the role hands off every time a leader crosses — the\n"
         "paper's dynamic role assignment, visible as a traffic light.\n";
  return 0;
}
