// Quickstart: stand up a dynamic vehicular cloud on a city grid, submit a
// task workload, and read the results.
//
//   $ ./example_quickstart
//
// Walks the core API end to end: ScenarioConfig -> VehicularCloudSystem ->
// submit_workload -> stats.
#include <iostream>

#include "core/system.h"
#include "util/table.h"

int main() {
  using namespace vcl;

  // 1. Describe the world: a 6x6 Manhattan grid with 80 vehicles.
  core::SystemConfig config;
  config.scenario.environment = core::Environment::kCity;
  config.scenario.vehicles = 80;
  config.scenario.seed = 7;

  // 2. Pick the cloud architecture and scheduling policy. The dynamic
  //    architecture self-organizes over V2V clusters — no infrastructure.
  config.architecture = core::CloudArchitecture::kDynamic;
  config.scheduler = core::SchedulerKind::kDwellAware;
  config.cloud.handover.enabled = true;

  core::VehicularCloudSystem system(config);
  system.start();

  std::cout << "Cloud formed: " << system.cloud().member_count()
            << " members, broker vehicle " << system.cloud().broker()
            << "\n";
  const auto pool = system.cloud().pool();
  std::cout << "Pooled resources: " << pool.compute << " work-units/s, "
            << pool.storage_mb / 1024.0 << " GB storage, "
            << pool.sensor_count << " sensors\n\n";

  // 3. Submit 30 tasks and run for five simulated minutes.
  vcloud::WorkloadConfig workload;
  workload.mean_work = 15.0;
  workload.relative_deadline = 120.0;
  system.submit_workload(workload, 30);
  system.run_for(300.0);

  // 4. Read the outcome.
  const auto& stats = system.cloud().stats();
  Table table("quickstart: dynamic v-cloud after 300 s",
              {"metric", "value"});
  table.add_row({"tasks submitted", std::to_string(stats.submitted)});
  table.add_row({"completed", std::to_string(stats.completed)});
  table.add_row({"expired (deadline)", std::to_string(stats.expired)});
  table.add_row({"migrations (handover)", std::to_string(stats.migrations)});
  table.add_row({"mean latency (s)", Table::num(stats.latency.mean(), 2)});
  table.add_row({"p95 latency (s)",
                 Table::num(stats.latency_tail.percentile(95), 2)});
  table.add_row({"broker re-elections",
                 std::to_string(system.cloud().broker_changes())});
  table.print(std::cout);
  return 0;
}
