# Empty dependencies file for bench_trust_validation.
# This may be replaced when dependencies are built.
