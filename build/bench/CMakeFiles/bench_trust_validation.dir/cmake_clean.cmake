file(REMOVE_RECURSE
  "CMakeFiles/bench_trust_validation.dir/bench_trust_validation.cpp.o"
  "CMakeFiles/bench_trust_validation.dir/bench_trust_validation.cpp.o.d"
  "bench_trust_validation"
  "bench_trust_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trust_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
