# Empty dependencies file for bench_cloudlets.
# This may be replaced when dependencies are built.
