file(REMOVE_RECURSE
  "CMakeFiles/bench_cloudlets.dir/bench_cloudlets.cpp.o"
  "CMakeFiles/bench_cloudlets.dir/bench_cloudlets.cpp.o.d"
  "bench_cloudlets"
  "bench_cloudlets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloudlets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
