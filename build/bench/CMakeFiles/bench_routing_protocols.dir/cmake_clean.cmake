file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_protocols.dir/bench_routing_protocols.cpp.o"
  "CMakeFiles/bench_routing_protocols.dir/bench_routing_protocols.cpp.o.d"
  "bench_routing_protocols"
  "bench_routing_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
