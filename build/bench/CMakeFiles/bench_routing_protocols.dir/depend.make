# Empty dependencies file for bench_routing_protocols.
# This may be replaced when dependencies are built.
