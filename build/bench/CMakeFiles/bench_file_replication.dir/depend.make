# Empty dependencies file for bench_file_replication.
# This may be replaced when dependencies are built.
