file(REMOVE_RECURSE
  "CMakeFiles/bench_file_replication.dir/bench_file_replication.cpp.o"
  "CMakeFiles/bench_file_replication.dir/bench_file_replication.cpp.o.d"
  "bench_file_replication"
  "bench_file_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
