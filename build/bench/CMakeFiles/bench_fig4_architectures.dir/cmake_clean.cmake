file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_architectures.dir/bench_fig4_architectures.cpp.o"
  "CMakeFiles/bench_fig4_architectures.dir/bench_fig4_architectures.cpp.o.d"
  "bench_fig4_architectures"
  "bench_fig4_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
