# Empty dependencies file for bench_fig4_architectures.
# This may be replaced when dependencies are built.
