# Empty compiler generated dependencies file for bench_emergency_mode.
# This may be replaced when dependencies are built.
