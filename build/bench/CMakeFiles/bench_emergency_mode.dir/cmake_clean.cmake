file(REMOVE_RECURSE
  "CMakeFiles/bench_emergency_mode.dir/bench_emergency_mode.cpp.o"
  "CMakeFiles/bench_emergency_mode.dir/bench_emergency_mode.cpp.o.d"
  "bench_emergency_mode"
  "bench_emergency_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emergency_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
