# Empty dependencies file for bench_fig2_cloud_comparison.
# This may be replaced when dependencies are built.
