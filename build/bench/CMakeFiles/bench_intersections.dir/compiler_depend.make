# Empty compiler generated dependencies file for bench_intersections.
# This may be replaced when dependencies are built.
