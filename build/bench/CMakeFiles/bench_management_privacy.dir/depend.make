# Empty dependencies file for bench_management_privacy.
# This may be replaced when dependencies are built.
