file(REMOVE_RECURSE
  "CMakeFiles/bench_management_privacy.dir/bench_management_privacy.cpp.o"
  "CMakeFiles/bench_management_privacy.dir/bench_management_privacy.cpp.o.d"
  "bench_management_privacy"
  "bench_management_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_management_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
