file(REMOVE_RECURSE
  "CMakeFiles/bench_dissemination.dir/bench_dissemination.cpp.o"
  "CMakeFiles/bench_dissemination.dir/bench_dissemination.cpp.o.d"
  "bench_dissemination"
  "bench_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
