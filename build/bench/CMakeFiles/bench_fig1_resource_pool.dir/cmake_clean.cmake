file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_resource_pool.dir/bench_fig1_resource_pool.cpp.o"
  "CMakeFiles/bench_fig1_resource_pool.dir/bench_fig1_resource_pool.cpp.o.d"
  "bench_fig1_resource_pool"
  "bench_fig1_resource_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_resource_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
