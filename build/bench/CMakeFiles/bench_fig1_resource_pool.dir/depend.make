# Empty dependencies file for bench_fig1_resource_pool.
# This may be replaced when dependencies are built.
