# Empty compiler generated dependencies file for bench_attack_resilience.
# This may be replaced when dependencies are built.
