file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_resilience.dir/bench_attack_resilience.cpp.o"
  "CMakeFiles/bench_attack_resilience.dir/bench_attack_resilience.cpp.o.d"
  "bench_attack_resilience"
  "bench_attack_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
