# Empty dependencies file for bench_task_allocation.
# This may be replaced when dependencies are built.
