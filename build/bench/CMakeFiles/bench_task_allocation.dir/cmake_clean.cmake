file(REMOVE_RECURSE
  "CMakeFiles/bench_task_allocation.dir/bench_task_allocation.cpp.o"
  "CMakeFiles/bench_task_allocation.dir/bench_task_allocation.cpp.o.d"
  "bench_task_allocation"
  "bench_task_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
