# Empty compiler generated dependencies file for bench_fig5_auth_protocols.
# This may be replaced when dependencies are built.
