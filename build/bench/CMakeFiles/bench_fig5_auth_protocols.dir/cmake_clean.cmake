file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_auth_protocols.dir/bench_fig5_auth_protocols.cpp.o"
  "CMakeFiles/bench_fig5_auth_protocols.dir/bench_fig5_auth_protocols.cpp.o.d"
  "bench_fig5_auth_protocols"
  "bench_fig5_auth_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_auth_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
