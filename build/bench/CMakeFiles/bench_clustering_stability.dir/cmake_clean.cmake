file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_stability.dir/bench_clustering_stability.cpp.o"
  "CMakeFiles/bench_clustering_stability.dir/bench_clustering_stability.cpp.o.d"
  "bench_clustering_stability"
  "bench_clustering_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
