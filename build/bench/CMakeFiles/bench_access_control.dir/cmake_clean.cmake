file(REMOVE_RECURSE
  "CMakeFiles/bench_access_control.dir/bench_access_control.cpp.o"
  "CMakeFiles/bench_access_control.dir/bench_access_control.cpp.o.d"
  "bench_access_control"
  "bench_access_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
