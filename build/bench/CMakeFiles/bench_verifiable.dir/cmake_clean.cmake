file(REMOVE_RECURSE
  "CMakeFiles/bench_verifiable.dir/bench_verifiable.cpp.o"
  "CMakeFiles/bench_verifiable.dir/bench_verifiable.cpp.o.d"
  "bench_verifiable"
  "bench_verifiable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verifiable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
