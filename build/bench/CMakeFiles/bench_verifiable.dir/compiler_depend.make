# Empty compiler generated dependencies file for bench_verifiable.
# This may be replaced when dependencies are built.
