# Empty dependencies file for test_bus_ferry.
# This may be replaced when dependencies are built.
