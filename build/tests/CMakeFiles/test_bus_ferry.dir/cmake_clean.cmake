file(REMOVE_RECURSE
  "CMakeFiles/test_bus_ferry.dir/bus_ferry_test.cpp.o"
  "CMakeFiles/test_bus_ferry.dir/bus_ferry_test.cpp.o.d"
  "test_bus_ferry"
  "test_bus_ferry.pdb"
  "test_bus_ferry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_ferry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
