# Empty dependencies file for test_vcloud.
# This may be replaced when dependencies are built.
