file(REMOVE_RECURSE
  "CMakeFiles/test_vcloud.dir/vcloud_test.cpp.o"
  "CMakeFiles/test_vcloud.dir/vcloud_test.cpp.o.d"
  "test_vcloud"
  "test_vcloud.pdb"
  "test_vcloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
