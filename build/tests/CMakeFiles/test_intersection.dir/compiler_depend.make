# Empty compiler generated dependencies file for test_intersection.
# This may be replaced when dependencies are built.
