file(REMOVE_RECURSE
  "CMakeFiles/test_intersection.dir/intersection_test.cpp.o"
  "CMakeFiles/test_intersection.dir/intersection_test.cpp.o.d"
  "test_intersection"
  "test_intersection.pdb"
  "test_intersection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
