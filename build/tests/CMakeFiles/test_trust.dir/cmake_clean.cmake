file(REMOVE_RECURSE
  "CMakeFiles/test_trust.dir/trust_test.cpp.o"
  "CMakeFiles/test_trust.dir/trust_test.cpp.o.d"
  "test_trust"
  "test_trust.pdb"
  "test_trust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
