file(REMOVE_RECURSE
  "CMakeFiles/test_threats.dir/threats_test.cpp.o"
  "CMakeFiles/test_threats.dir/threats_test.cpp.o.d"
  "test_threats"
  "test_threats.pdb"
  "test_threats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
