# Empty compiler generated dependencies file for test_threats.
# This may be replaced when dependencies are built.
