file(REMOVE_RECURSE
  "CMakeFiles/test_verifiable.dir/verifiable_test.cpp.o"
  "CMakeFiles/test_verifiable.dir/verifiable_test.cpp.o.d"
  "test_verifiable"
  "test_verifiable.pdb"
  "test_verifiable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verifiable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
