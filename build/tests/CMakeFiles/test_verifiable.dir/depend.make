# Empty dependencies file for test_verifiable.
# This may be replaced when dependencies are built.
