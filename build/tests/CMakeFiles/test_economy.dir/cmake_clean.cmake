file(REMOVE_RECURSE
  "CMakeFiles/test_economy.dir/economy_test.cpp.o"
  "CMakeFiles/test_economy.dir/economy_test.cpp.o.d"
  "test_economy"
  "test_economy.pdb"
  "test_economy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_economy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
