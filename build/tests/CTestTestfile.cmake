# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_auth[1]_include.cmake")
include("/root/repo/build/tests/test_access[1]_include.cmake")
include("/root/repo/build/tests/test_trust[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_vcloud[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_threats[1]_include.cmake")
include("/root/repo/build/tests/test_intersection[1]_include.cmake")
include("/root/repo/build/tests/test_economy[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_verifiable[1]_include.cmake")
include("/root/repo/build/tests/test_bus_ferry[1]_include.cmake")
include("/root/repo/build/tests/test_misbehavior[1]_include.cmake")
