# Empty compiler generated dependencies file for example_fleet_compute.
# This may be replaced when dependencies are built.
