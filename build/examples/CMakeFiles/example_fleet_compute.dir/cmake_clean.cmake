file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_compute.dir/fleet_compute.cpp.o"
  "CMakeFiles/example_fleet_compute.dir/fleet_compute.cpp.o.d"
  "example_fleet_compute"
  "example_fleet_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
