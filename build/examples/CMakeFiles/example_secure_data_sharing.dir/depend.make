# Empty dependencies file for example_secure_data_sharing.
# This may be replaced when dependencies are built.
