file(REMOVE_RECURSE
  "CMakeFiles/example_secure_data_sharing.dir/secure_data_sharing.cpp.o"
  "CMakeFiles/example_secure_data_sharing.dir/secure_data_sharing.cpp.o.d"
  "example_secure_data_sharing"
  "example_secure_data_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_data_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
