# Empty compiler generated dependencies file for example_smart_intersection.
# This may be replaced when dependencies are built.
