file(REMOVE_RECURSE
  "CMakeFiles/example_smart_intersection.dir/smart_intersection.cpp.o"
  "CMakeFiles/example_smart_intersection.dir/smart_intersection.cpp.o.d"
  "example_smart_intersection"
  "example_smart_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smart_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
