file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_alert_trust.dir/traffic_alert_trust.cpp.o"
  "CMakeFiles/example_traffic_alert_trust.dir/traffic_alert_trust.cpp.o.d"
  "example_traffic_alert_trust"
  "example_traffic_alert_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_alert_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
