# Empty dependencies file for example_traffic_alert_trust.
# This may be replaced when dependencies are built.
