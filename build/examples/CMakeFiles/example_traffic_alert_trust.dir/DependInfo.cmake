
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/traffic_alert_trust.cpp" "examples/CMakeFiles/example_traffic_alert_trust.dir/traffic_alert_trust.cpp.o" "gcc" "examples/CMakeFiles/example_traffic_alert_trust.dir/traffic_alert_trust.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_vcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_access.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
