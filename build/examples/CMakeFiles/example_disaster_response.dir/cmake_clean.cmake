file(REMOVE_RECURSE
  "CMakeFiles/example_disaster_response.dir/disaster_response.cpp.o"
  "CMakeFiles/example_disaster_response.dir/disaster_response.cpp.o.d"
  "example_disaster_response"
  "example_disaster_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_disaster_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
