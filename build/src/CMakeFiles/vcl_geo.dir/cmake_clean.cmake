file(REMOVE_RECURSE
  "CMakeFiles/vcl_geo.dir/geo/road_network.cpp.o"
  "CMakeFiles/vcl_geo.dir/geo/road_network.cpp.o.d"
  "libvcl_geo.a"
  "libvcl_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
