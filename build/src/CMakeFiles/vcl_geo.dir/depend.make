# Empty dependencies file for vcl_geo.
# This may be replaced when dependencies are built.
