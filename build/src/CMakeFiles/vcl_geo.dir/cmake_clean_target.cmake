file(REMOVE_RECURSE
  "libvcl_geo.a"
)
