file(REMOVE_RECURSE
  "CMakeFiles/vcl_crypto.dir/crypto/chaum_pedersen.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/chaum_pedersen.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/cost_model.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/cost_model.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/drbg.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/drbg.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/elgamal.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/elgamal.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/group.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/group.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/merkle.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/merkle.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/modmath.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/modmath.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/schnorr.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/schnorr.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/vcl_crypto.dir/crypto/shamir.cpp.o"
  "CMakeFiles/vcl_crypto.dir/crypto/shamir.cpp.o.d"
  "libvcl_crypto.a"
  "libvcl_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
