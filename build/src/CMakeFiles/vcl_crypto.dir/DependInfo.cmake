
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/chaum_pedersen.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/chaum_pedersen.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/chaum_pedersen.cpp.o.d"
  "/root/repo/src/crypto/cost_model.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/cost_model.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/cost_model.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/drbg.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/drbg.cpp.o.d"
  "/root/repo/src/crypto/elgamal.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/elgamal.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/elgamal.cpp.o.d"
  "/root/repo/src/crypto/group.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/group.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/group.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/merkle.cpp.o.d"
  "/root/repo/src/crypto/modmath.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/modmath.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/modmath.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/schnorr.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/CMakeFiles/vcl_crypto.dir/crypto/shamir.cpp.o" "gcc" "src/CMakeFiles/vcl_crypto.dir/crypto/shamir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
