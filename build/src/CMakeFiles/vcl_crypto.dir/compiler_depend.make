# Empty compiler generated dependencies file for vcl_crypto.
# This may be replaced when dependencies are built.
