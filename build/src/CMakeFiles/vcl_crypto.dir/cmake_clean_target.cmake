file(REMOVE_RECURSE
  "libvcl_crypto.a"
)
