file(REMOVE_RECURSE
  "CMakeFiles/vcl_net.dir/net/channel.cpp.o"
  "CMakeFiles/vcl_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/vcl_net.dir/net/dissemination.cpp.o"
  "CMakeFiles/vcl_net.dir/net/dissemination.cpp.o.d"
  "CMakeFiles/vcl_net.dir/net/message.cpp.o"
  "CMakeFiles/vcl_net.dir/net/message.cpp.o.d"
  "CMakeFiles/vcl_net.dir/net/network.cpp.o"
  "CMakeFiles/vcl_net.dir/net/network.cpp.o.d"
  "CMakeFiles/vcl_net.dir/net/rsu.cpp.o"
  "CMakeFiles/vcl_net.dir/net/rsu.cpp.o.d"
  "libvcl_net.a"
  "libvcl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
