file(REMOVE_RECURSE
  "libvcl_net.a"
)
