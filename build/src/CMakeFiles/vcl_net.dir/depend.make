# Empty dependencies file for vcl_net.
# This may be replaced when dependencies are built.
