
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/vcl_net.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/vcl_net.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/dissemination.cpp" "src/CMakeFiles/vcl_net.dir/net/dissemination.cpp.o" "gcc" "src/CMakeFiles/vcl_net.dir/net/dissemination.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/vcl_net.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/vcl_net.dir/net/message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/vcl_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/vcl_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/rsu.cpp" "src/CMakeFiles/vcl_net.dir/net/rsu.cpp.o" "gcc" "src/CMakeFiles/vcl_net.dir/net/rsu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
