file(REMOVE_RECURSE
  "CMakeFiles/vcl_access.dir/access/abe.cpp.o"
  "CMakeFiles/vcl_access.dir/access/abe.cpp.o.d"
  "CMakeFiles/vcl_access.dir/access/attribute.cpp.o"
  "CMakeFiles/vcl_access.dir/access/attribute.cpp.o.d"
  "CMakeFiles/vcl_access.dir/access/audit_log.cpp.o"
  "CMakeFiles/vcl_access.dir/access/audit_log.cpp.o.d"
  "CMakeFiles/vcl_access.dir/access/policy.cpp.o"
  "CMakeFiles/vcl_access.dir/access/policy.cpp.o.d"
  "CMakeFiles/vcl_access.dir/access/role_manager.cpp.o"
  "CMakeFiles/vcl_access.dir/access/role_manager.cpp.o.d"
  "CMakeFiles/vcl_access.dir/access/sticky_package.cpp.o"
  "CMakeFiles/vcl_access.dir/access/sticky_package.cpp.o.d"
  "libvcl_access.a"
  "libvcl_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
