
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/abe.cpp" "src/CMakeFiles/vcl_access.dir/access/abe.cpp.o" "gcc" "src/CMakeFiles/vcl_access.dir/access/abe.cpp.o.d"
  "/root/repo/src/access/attribute.cpp" "src/CMakeFiles/vcl_access.dir/access/attribute.cpp.o" "gcc" "src/CMakeFiles/vcl_access.dir/access/attribute.cpp.o.d"
  "/root/repo/src/access/audit_log.cpp" "src/CMakeFiles/vcl_access.dir/access/audit_log.cpp.o" "gcc" "src/CMakeFiles/vcl_access.dir/access/audit_log.cpp.o.d"
  "/root/repo/src/access/policy.cpp" "src/CMakeFiles/vcl_access.dir/access/policy.cpp.o" "gcc" "src/CMakeFiles/vcl_access.dir/access/policy.cpp.o.d"
  "/root/repo/src/access/role_manager.cpp" "src/CMakeFiles/vcl_access.dir/access/role_manager.cpp.o" "gcc" "src/CMakeFiles/vcl_access.dir/access/role_manager.cpp.o.d"
  "/root/repo/src/access/sticky_package.cpp" "src/CMakeFiles/vcl_access.dir/access/sticky_package.cpp.o" "gcc" "src/CMakeFiles/vcl_access.dir/access/sticky_package.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
