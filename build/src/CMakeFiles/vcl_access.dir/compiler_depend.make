# Empty compiler generated dependencies file for vcl_access.
# This may be replaced when dependencies are built.
