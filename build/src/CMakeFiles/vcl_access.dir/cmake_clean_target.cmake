file(REMOVE_RECURSE
  "libvcl_access.a"
)
