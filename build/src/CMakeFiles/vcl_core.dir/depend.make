# Empty dependencies file for vcl_core.
# This may be replaced when dependencies are built.
