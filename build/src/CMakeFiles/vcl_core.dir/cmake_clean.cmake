file(REMOVE_RECURSE
  "CMakeFiles/vcl_core.dir/core/bootstrap.cpp.o"
  "CMakeFiles/vcl_core.dir/core/bootstrap.cpp.o.d"
  "CMakeFiles/vcl_core.dir/core/emergency.cpp.o"
  "CMakeFiles/vcl_core.dir/core/emergency.cpp.o.d"
  "CMakeFiles/vcl_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/vcl_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/vcl_core.dir/core/scenario.cpp.o"
  "CMakeFiles/vcl_core.dir/core/scenario.cpp.o.d"
  "CMakeFiles/vcl_core.dir/core/snapshot.cpp.o"
  "CMakeFiles/vcl_core.dir/core/snapshot.cpp.o.d"
  "CMakeFiles/vcl_core.dir/core/system.cpp.o"
  "CMakeFiles/vcl_core.dir/core/system.cpp.o.d"
  "CMakeFiles/vcl_core.dir/core/vtl.cpp.o"
  "CMakeFiles/vcl_core.dir/core/vtl.cpp.o.d"
  "libvcl_core.a"
  "libvcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
