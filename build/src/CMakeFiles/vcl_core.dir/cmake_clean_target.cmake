file(REMOVE_RECURSE
  "libvcl_core.a"
)
