file(REMOVE_RECURSE
  "CMakeFiles/vcl_util.dir/util/rng.cpp.o"
  "CMakeFiles/vcl_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/vcl_util.dir/util/stats.cpp.o"
  "CMakeFiles/vcl_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/vcl_util.dir/util/table.cpp.o"
  "CMakeFiles/vcl_util.dir/util/table.cpp.o.d"
  "libvcl_util.a"
  "libvcl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
