file(REMOVE_RECURSE
  "libvcl_util.a"
)
