# Empty compiler generated dependencies file for vcl_util.
# This may be replaced when dependencies are built.
