# Empty compiler generated dependencies file for vcl_cluster.
# This may be replaced when dependencies are built.
