file(REMOVE_RECURSE
  "libvcl_cluster.a"
)
