
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_manager.cpp" "src/CMakeFiles/vcl_cluster.dir/cluster/cluster_manager.cpp.o" "gcc" "src/CMakeFiles/vcl_cluster.dir/cluster/cluster_manager.cpp.o.d"
  "/root/repo/src/cluster/fuzzy_clustering.cpp" "src/CMakeFiles/vcl_cluster.dir/cluster/fuzzy_clustering.cpp.o" "gcc" "src/CMakeFiles/vcl_cluster.dir/cluster/fuzzy_clustering.cpp.o.d"
  "/root/repo/src/cluster/moving_zone.cpp" "src/CMakeFiles/vcl_cluster.dir/cluster/moving_zone.cpp.o" "gcc" "src/CMakeFiles/vcl_cluster.dir/cluster/moving_zone.cpp.o.d"
  "/root/repo/src/cluster/passive_clustering.cpp" "src/CMakeFiles/vcl_cluster.dir/cluster/passive_clustering.cpp.o" "gcc" "src/CMakeFiles/vcl_cluster.dir/cluster/passive_clustering.cpp.o.d"
  "/root/repo/src/cluster/speed_clustering.cpp" "src/CMakeFiles/vcl_cluster.dir/cluster/speed_clustering.cpp.o" "gcc" "src/CMakeFiles/vcl_cluster.dir/cluster/speed_clustering.cpp.o.d"
  "/root/repo/src/cluster/stability.cpp" "src/CMakeFiles/vcl_cluster.dir/cluster/stability.cpp.o" "gcc" "src/CMakeFiles/vcl_cluster.dir/cluster/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
