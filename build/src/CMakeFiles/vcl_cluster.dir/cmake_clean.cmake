file(REMOVE_RECURSE
  "CMakeFiles/vcl_cluster.dir/cluster/cluster_manager.cpp.o"
  "CMakeFiles/vcl_cluster.dir/cluster/cluster_manager.cpp.o.d"
  "CMakeFiles/vcl_cluster.dir/cluster/fuzzy_clustering.cpp.o"
  "CMakeFiles/vcl_cluster.dir/cluster/fuzzy_clustering.cpp.o.d"
  "CMakeFiles/vcl_cluster.dir/cluster/moving_zone.cpp.o"
  "CMakeFiles/vcl_cluster.dir/cluster/moving_zone.cpp.o.d"
  "CMakeFiles/vcl_cluster.dir/cluster/passive_clustering.cpp.o"
  "CMakeFiles/vcl_cluster.dir/cluster/passive_clustering.cpp.o.d"
  "CMakeFiles/vcl_cluster.dir/cluster/speed_clustering.cpp.o"
  "CMakeFiles/vcl_cluster.dir/cluster/speed_clustering.cpp.o.d"
  "CMakeFiles/vcl_cluster.dir/cluster/stability.cpp.o"
  "CMakeFiles/vcl_cluster.dir/cluster/stability.cpp.o.d"
  "libvcl_cluster.a"
  "libvcl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
