file(REMOVE_RECURSE
  "CMakeFiles/vcl_attack.dir/attack/adversary.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/adversary.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/dos.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/dos.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/false_data.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/false_data.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/flow_analysis.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/flow_analysis.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/mitm.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/mitm.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/replay.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/replay.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/suppression.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/suppression.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/sybil.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/sybil.cpp.o.d"
  "CMakeFiles/vcl_attack.dir/attack/tracker.cpp.o"
  "CMakeFiles/vcl_attack.dir/attack/tracker.cpp.o.d"
  "libvcl_attack.a"
  "libvcl_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
