
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/adversary.cpp" "src/CMakeFiles/vcl_attack.dir/attack/adversary.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/adversary.cpp.o.d"
  "/root/repo/src/attack/dos.cpp" "src/CMakeFiles/vcl_attack.dir/attack/dos.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/dos.cpp.o.d"
  "/root/repo/src/attack/false_data.cpp" "src/CMakeFiles/vcl_attack.dir/attack/false_data.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/false_data.cpp.o.d"
  "/root/repo/src/attack/flow_analysis.cpp" "src/CMakeFiles/vcl_attack.dir/attack/flow_analysis.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/flow_analysis.cpp.o.d"
  "/root/repo/src/attack/mitm.cpp" "src/CMakeFiles/vcl_attack.dir/attack/mitm.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/mitm.cpp.o.d"
  "/root/repo/src/attack/replay.cpp" "src/CMakeFiles/vcl_attack.dir/attack/replay.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/replay.cpp.o.d"
  "/root/repo/src/attack/suppression.cpp" "src/CMakeFiles/vcl_attack.dir/attack/suppression.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/suppression.cpp.o.d"
  "/root/repo/src/attack/sybil.cpp" "src/CMakeFiles/vcl_attack.dir/attack/sybil.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/sybil.cpp.o.d"
  "/root/repo/src/attack/tracker.cpp" "src/CMakeFiles/vcl_attack.dir/attack/tracker.cpp.o" "gcc" "src/CMakeFiles/vcl_attack.dir/attack/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
