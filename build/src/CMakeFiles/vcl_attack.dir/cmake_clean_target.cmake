file(REMOVE_RECURSE
  "libvcl_attack.a"
)
