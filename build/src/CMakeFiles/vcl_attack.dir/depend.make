# Empty dependencies file for vcl_attack.
# This may be replaced when dependencies are built.
