# Empty dependencies file for vcl_sim.
# This may be replaced when dependencies are built.
