file(REMOVE_RECURSE
  "libvcl_sim.a"
)
