file(REMOVE_RECURSE
  "CMakeFiles/vcl_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/vcl_sim.dir/sim/simulator.cpp.o.d"
  "libvcl_sim.a"
  "libvcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
