
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcloud/aggregate.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/aggregate.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/aggregate.cpp.o.d"
  "/root/repo/src/vcloud/broker.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/broker.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/broker.cpp.o.d"
  "/root/repo/src/vcloud/cloud.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/cloud.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/cloud.cpp.o.d"
  "/root/repo/src/vcloud/cloudlet.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/cloudlet.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/cloudlet.cpp.o.d"
  "/root/repo/src/vcloud/dwell.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/dwell.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/dwell.cpp.o.d"
  "/root/repo/src/vcloud/handover.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/handover.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/handover.cpp.o.d"
  "/root/repo/src/vcloud/incentive.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/incentive.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/incentive.cpp.o.d"
  "/root/repo/src/vcloud/replication.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/replication.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/replication.cpp.o.d"
  "/root/repo/src/vcloud/resource.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/resource.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/resource.cpp.o.d"
  "/root/repo/src/vcloud/scheduler.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/scheduler.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/scheduler.cpp.o.d"
  "/root/repo/src/vcloud/task.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/task.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/task.cpp.o.d"
  "/root/repo/src/vcloud/verifiable.cpp" "src/CMakeFiles/vcl_vcloud.dir/vcloud/verifiable.cpp.o" "gcc" "src/CMakeFiles/vcl_vcloud.dir/vcloud/verifiable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
