file(REMOVE_RECURSE
  "CMakeFiles/vcl_vcloud.dir/vcloud/aggregate.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/aggregate.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/broker.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/broker.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/cloud.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/cloud.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/cloudlet.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/cloudlet.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/dwell.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/dwell.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/handover.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/handover.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/incentive.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/incentive.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/replication.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/replication.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/resource.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/resource.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/scheduler.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/scheduler.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/task.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/task.cpp.o.d"
  "CMakeFiles/vcl_vcloud.dir/vcloud/verifiable.cpp.o"
  "CMakeFiles/vcl_vcloud.dir/vcloud/verifiable.cpp.o.d"
  "libvcl_vcloud.a"
  "libvcl_vcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_vcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
