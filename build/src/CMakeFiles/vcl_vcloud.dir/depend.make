# Empty dependencies file for vcl_vcloud.
# This may be replaced when dependencies are built.
