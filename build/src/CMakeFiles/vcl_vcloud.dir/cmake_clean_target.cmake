file(REMOVE_RECURSE
  "libvcl_vcloud.a"
)
