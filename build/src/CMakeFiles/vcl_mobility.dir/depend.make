# Empty dependencies file for vcl_mobility.
# This may be replaced when dependencies are built.
