file(REMOVE_RECURSE
  "CMakeFiles/vcl_mobility.dir/mobility/idm.cpp.o"
  "CMakeFiles/vcl_mobility.dir/mobility/idm.cpp.o.d"
  "CMakeFiles/vcl_mobility.dir/mobility/intersection.cpp.o"
  "CMakeFiles/vcl_mobility.dir/mobility/intersection.cpp.o.d"
  "CMakeFiles/vcl_mobility.dir/mobility/traffic.cpp.o"
  "CMakeFiles/vcl_mobility.dir/mobility/traffic.cpp.o.d"
  "CMakeFiles/vcl_mobility.dir/mobility/trip_generator.cpp.o"
  "CMakeFiles/vcl_mobility.dir/mobility/trip_generator.cpp.o.d"
  "libvcl_mobility.a"
  "libvcl_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
