
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/idm.cpp" "src/CMakeFiles/vcl_mobility.dir/mobility/idm.cpp.o" "gcc" "src/CMakeFiles/vcl_mobility.dir/mobility/idm.cpp.o.d"
  "/root/repo/src/mobility/intersection.cpp" "src/CMakeFiles/vcl_mobility.dir/mobility/intersection.cpp.o" "gcc" "src/CMakeFiles/vcl_mobility.dir/mobility/intersection.cpp.o.d"
  "/root/repo/src/mobility/traffic.cpp" "src/CMakeFiles/vcl_mobility.dir/mobility/traffic.cpp.o" "gcc" "src/CMakeFiles/vcl_mobility.dir/mobility/traffic.cpp.o.d"
  "/root/repo/src/mobility/trip_generator.cpp" "src/CMakeFiles/vcl_mobility.dir/mobility/trip_generator.cpp.o" "gcc" "src/CMakeFiles/vcl_mobility.dir/mobility/trip_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
