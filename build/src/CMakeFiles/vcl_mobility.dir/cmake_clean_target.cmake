file(REMOVE_RECURSE
  "libvcl_mobility.a"
)
