# Empty compiler generated dependencies file for vcl_auth.
# This may be replaced when dependencies are built.
