file(REMOVE_RECURSE
  "CMakeFiles/vcl_auth.dir/auth/authority.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/authority.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/crl.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/crl.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/group_auth.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/group_auth.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/hybrid_auth.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/hybrid_auth.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/privacy_metrics.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/privacy_metrics.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/pseudonym.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/pseudonym.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/scra.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/scra.cpp.o.d"
  "CMakeFiles/vcl_auth.dir/auth/two_factor.cpp.o"
  "CMakeFiles/vcl_auth.dir/auth/two_factor.cpp.o.d"
  "libvcl_auth.a"
  "libvcl_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
