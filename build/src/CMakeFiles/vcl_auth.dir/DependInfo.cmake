
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auth/authority.cpp" "src/CMakeFiles/vcl_auth.dir/auth/authority.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/authority.cpp.o.d"
  "/root/repo/src/auth/crl.cpp" "src/CMakeFiles/vcl_auth.dir/auth/crl.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/crl.cpp.o.d"
  "/root/repo/src/auth/group_auth.cpp" "src/CMakeFiles/vcl_auth.dir/auth/group_auth.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/group_auth.cpp.o.d"
  "/root/repo/src/auth/hybrid_auth.cpp" "src/CMakeFiles/vcl_auth.dir/auth/hybrid_auth.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/hybrid_auth.cpp.o.d"
  "/root/repo/src/auth/privacy_metrics.cpp" "src/CMakeFiles/vcl_auth.dir/auth/privacy_metrics.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/privacy_metrics.cpp.o.d"
  "/root/repo/src/auth/pseudonym.cpp" "src/CMakeFiles/vcl_auth.dir/auth/pseudonym.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/pseudonym.cpp.o.d"
  "/root/repo/src/auth/scra.cpp" "src/CMakeFiles/vcl_auth.dir/auth/scra.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/scra.cpp.o.d"
  "/root/repo/src/auth/two_factor.cpp" "src/CMakeFiles/vcl_auth.dir/auth/two_factor.cpp.o" "gcc" "src/CMakeFiles/vcl_auth.dir/auth/two_factor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
