file(REMOVE_RECURSE
  "libvcl_auth.a"
)
