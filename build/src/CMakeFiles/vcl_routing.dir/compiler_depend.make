# Empty compiler generated dependencies file for vcl_routing.
# This may be replaced when dependencies are built.
