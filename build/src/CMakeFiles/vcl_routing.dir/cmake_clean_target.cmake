file(REMOVE_RECURSE
  "libvcl_routing.a"
)
