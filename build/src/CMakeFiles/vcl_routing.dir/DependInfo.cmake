
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bus_ferry.cpp" "src/CMakeFiles/vcl_routing.dir/routing/bus_ferry.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/bus_ferry.cpp.o.d"
  "/root/repo/src/routing/cbltr.cpp" "src/CMakeFiles/vcl_routing.dir/routing/cbltr.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/cbltr.cpp.o.d"
  "/root/repo/src/routing/flooding.cpp" "src/CMakeFiles/vcl_routing.dir/routing/flooding.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/flooding.cpp.o.d"
  "/root/repo/src/routing/greedy_geo.cpp" "src/CMakeFiles/vcl_routing.dir/routing/greedy_geo.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/greedy_geo.cpp.o.d"
  "/root/repo/src/routing/metrics.cpp" "src/CMakeFiles/vcl_routing.dir/routing/metrics.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/metrics.cpp.o.d"
  "/root/repo/src/routing/mozo_routing.cpp" "src/CMakeFiles/vcl_routing.dir/routing/mozo_routing.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/mozo_routing.cpp.o.d"
  "/root/repo/src/routing/quality_greedy.cpp" "src/CMakeFiles/vcl_routing.dir/routing/quality_greedy.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/quality_greedy.cpp.o.d"
  "/root/repo/src/routing/router.cpp" "src/CMakeFiles/vcl_routing.dir/routing/router.cpp.o" "gcc" "src/CMakeFiles/vcl_routing.dir/routing/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
