file(REMOVE_RECURSE
  "CMakeFiles/vcl_routing.dir/routing/bus_ferry.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/bus_ferry.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/cbltr.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/cbltr.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/flooding.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/flooding.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/greedy_geo.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/greedy_geo.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/metrics.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/metrics.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/mozo_routing.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/mozo_routing.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/quality_greedy.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/quality_greedy.cpp.o.d"
  "CMakeFiles/vcl_routing.dir/routing/router.cpp.o"
  "CMakeFiles/vcl_routing.dir/routing/router.cpp.o.d"
  "libvcl_routing.a"
  "libvcl_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
