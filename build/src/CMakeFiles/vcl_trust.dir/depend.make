# Empty dependencies file for vcl_trust.
# This may be replaced when dependencies are built.
