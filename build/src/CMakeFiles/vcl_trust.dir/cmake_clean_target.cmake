file(REMOVE_RECURSE
  "libvcl_trust.a"
)
