
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/classifier.cpp" "src/CMakeFiles/vcl_trust.dir/trust/classifier.cpp.o" "gcc" "src/CMakeFiles/vcl_trust.dir/trust/classifier.cpp.o.d"
  "/root/repo/src/trust/dempster_shafer.cpp" "src/CMakeFiles/vcl_trust.dir/trust/dempster_shafer.cpp.o" "gcc" "src/CMakeFiles/vcl_trust.dir/trust/dempster_shafer.cpp.o.d"
  "/root/repo/src/trust/plausibility.cpp" "src/CMakeFiles/vcl_trust.dir/trust/plausibility.cpp.o" "gcc" "src/CMakeFiles/vcl_trust.dir/trust/plausibility.cpp.o.d"
  "/root/repo/src/trust/report.cpp" "src/CMakeFiles/vcl_trust.dir/trust/report.cpp.o" "gcc" "src/CMakeFiles/vcl_trust.dir/trust/report.cpp.o.d"
  "/root/repo/src/trust/reputation.cpp" "src/CMakeFiles/vcl_trust.dir/trust/reputation.cpp.o" "gcc" "src/CMakeFiles/vcl_trust.dir/trust/reputation.cpp.o.d"
  "/root/repo/src/trust/validators.cpp" "src/CMakeFiles/vcl_trust.dir/trust/validators.cpp.o" "gcc" "src/CMakeFiles/vcl_trust.dir/trust/validators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vcl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vcl_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
