file(REMOVE_RECURSE
  "CMakeFiles/vcl_trust.dir/trust/classifier.cpp.o"
  "CMakeFiles/vcl_trust.dir/trust/classifier.cpp.o.d"
  "CMakeFiles/vcl_trust.dir/trust/dempster_shafer.cpp.o"
  "CMakeFiles/vcl_trust.dir/trust/dempster_shafer.cpp.o.d"
  "CMakeFiles/vcl_trust.dir/trust/plausibility.cpp.o"
  "CMakeFiles/vcl_trust.dir/trust/plausibility.cpp.o.d"
  "CMakeFiles/vcl_trust.dir/trust/report.cpp.o"
  "CMakeFiles/vcl_trust.dir/trust/report.cpp.o.d"
  "CMakeFiles/vcl_trust.dir/trust/reputation.cpp.o"
  "CMakeFiles/vcl_trust.dir/trust/reputation.cpp.o.d"
  "CMakeFiles/vcl_trust.dir/trust/validators.cpp.o"
  "CMakeFiles/vcl_trust.dir/trust/validators.cpp.o.d"
  "libvcl_trust.a"
  "libvcl_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
