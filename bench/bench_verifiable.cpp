// E21 — Verifiable computation via redundant execution (PTVC, Huang et
// al. [10]) and SCRA precomputed real-time signing (Yavuz et al. [44]).
//
// Part 1: replication factor x cheater fraction → accepted / rejected /
// UNDETECTED-wrong jobs, plus the work overhead replication costs.
// Part 2: SCRA online signing latency vs plain signing, and how long a
// precomputed table lasts at safety-beacon rates.
#include <iostream>

#include "auth/scra.h"
#include "obs/bench_output.h"
#include "util/table.h"
#include "vcloud/verifiable.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct VerifRow {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t undetected = 0;
  double work_overhead = 0;
};

VerifRow run(std::size_t replicas, double cheater_fraction,
             std::uint64_t seed) {
  const auto road = geo::make_manhattan_grid(2, 2, 200.0);
  sim::Simulator sim;
  mobility::TrafficModel traffic(road, Rng(seed));
  net::Network net(sim, traffic, net::ChannelConfig{}, Rng(seed + 1));
  std::vector<VehicleId> workers;
  for (int i = 0; i < 10; ++i) {
    workers.push_back(traffic.spawn_parked(LinkId{0}, 12.0 * i));
  }
  net.refresh();
  vcloud::VehicularCloud cloud(
      CloudId{1}, net, vcloud::stationary_membership(traffic, {60, 0}, 500.0),
      vcloud::fixed_region({60, 0}, 500.0),
      std::make_unique<vcloud::RandomScheduler>(), vcloud::CloudConfig{},
      Rng(seed + 2));
  cloud.refresh();
  sim.schedule_every(1.0, [&] { cloud.refresh(); });

  attack::AdversaryRoster cheaters;
  Rng pick(seed + 3);
  pick.shuffle(workers);
  const auto n_cheat = static_cast<std::size_t>(
      cheater_fraction * static_cast<double>(workers.size()) + 0.5);
  for (std::size_t i = 0; i < n_cheat; ++i) cheaters.add(workers[i]);

  vcloud::ReplicatedSubmitter submitter(cloud, cheaters,
                                        {replicas, 1.0}, Rng(seed + 4));
  submitter.attach(sim, 1.0);
  for (int i = 0; i < 40; ++i) {
    vcloud::Task t;
    t.work = 2.0;
    submitter.submit(std::move(t));
  }
  sim.run_until(1200.0);

  VerifRow row;
  row.accepted = submitter.accepted_jobs();
  row.rejected = submitter.rejected_jobs();
  row.undetected = submitter.undetected_errors();
  row.work_overhead = static_cast<double>(replicas);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_verifiable", argc, argv);
  g_report = &reporter;

  std::cout << "E21: verifiable computing & real-time signing\n\n";

  Table table("PTVC-style redundant execution (40 jobs, 10 workers)",
              {"replicas", "cheater_frac", "accepted", "rejected",
               "UNDETECTED_wrong", "work_x"});
  for (const std::size_t replicas : {1UL, 2UL, 3UL}) {
    for (const double frac : {0.1, 0.3, 0.5}) {
      const VerifRow r = run(replicas, frac, 99);
      table.add_row({std::to_string(replicas), Table::num(frac, 1),
                     std::to_string(r.accepted), std::to_string(r.rejected),
                     std::to_string(r.undetected),
                     Table::num(r.work_overhead, 0)});
    }
  }
  emit_table(table);

  // ---- SCRA ---------------------------------------------------------------
  const crypto::CostModel costs;
  Table scra_table("SCRA: online signing vs plain signing (OBU-class costs)",
                   {"scheme", "online_ms_per_msg", "offline_ms_per_msg",
                    "table_for_60s@10Hz"});
  {
    // Plain: every message pays a full signature.
    crypto::OpCounts plain;
    plain.sign = 1;
    scra_table.add_row({"plain schnorr",
                        Table::num(costs.total(plain) / kMilliseconds, 2),
                        "0.00", "-"});
    // SCRA: online = 1 hash; offline = 1 sign amortized per message.
    crypto::OpCounts online;
    online.hash = 1;
    crypto::OpCounts offline;
    offline.sign = 1;
    scra_table.add_row({"scra (precomputed)",
                        Table::num(costs.total(online) / kMilliseconds, 3),
                        Table::num(costs.total(offline) / kMilliseconds, 2),
                        std::to_string(60 * 10) + " entries"});
  }
  emit_table(scra_table);

  // Functional spot check so the table is backed by a real implementation.
  {
    crypto::Drbg drbg(std::uint64_t{5});
    const auto& group = crypto::default_group();
    auth::ScraSigner signer(group, drbg.next_scalar(group.q()), 6);
    crypto::OpCounts ops;
    signer.precompute(600, ops);
    const crypto::Schnorr schnorr(group);
    std::size_t verified = 0;
    for (int i = 0; i < 600; ++i) {
      const crypto::Bytes msg{static_cast<std::uint8_t>(i & 0xff)};
      const auto sig = signer.sign(msg, ops);
      verified += schnorr.verify(signer.pub(), msg, *sig) ? 1 : 0;
    }
    std::cout << "SCRA functional check: " << verified
              << "/600 precomputed signatures verified by standard "
                 "Schnorr\n\n";
  }

  std::cout
      << "Shape vs the surveyed papers: one replica accepts every cheater\n"
         "result (unverified baseline); two replicas detect disagreement\n"
         "and reject; three replicas restore acceptance by outvoting lone\n"
         "cheaters — undetected errors only reappear when cheaters\n"
         "dominate a quorum. SCRA moves the 1.2 ms signature offline,\n"
         "leaving ~5 us of online work per safety message: a 60 s burst at\n"
         "10 Hz costs one 600-entry table computed during idle time.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
