// E5 (Fig. 1) — On-board equipment scaling into pooled v-cloud capability.
//
// Fig. 1 argues that higher automation levels carry richer equipment and
// raise both the opportunity (resources to pool) and the stakes
// (coordination/security requirements). Measured here: the aggregate
// compute/storage/sensing a dynamic v-cloud actually pools, as a function
// of vehicle density and of the fleet's automation mix.
//
// Runs through the experiment engine (exp::Campaign): --reps N replicates
// every cell with independent seeds (--jobs J in parallel) and reports
// mean ±95% CI; the default --reps 1 reproduces the historical single-seed
// output byte-for-byte.
#include <iostream>

#include "core/system.h"
#include "exp/campaign.h"
#include "exp/sweep.h"
#include "util/table.h"

using namespace vcl;

namespace {

struct MixSpec {
  const char* label;
  std::vector<double> weights;  // per automation level 0..5
};

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_fig1_resource_pool", argc, argv);

  std::cout << "E5 (Fig. 1): pooled v-cloud resources vs density and "
               "automation mix\n\n";
  campaign.describe(std::cout);

  const std::vector<MixSpec> mixes = {
      {"today (mostly L0-L2)", {0.4, 0.3, 0.2, 0.08, 0.02, 0.0}},
      {"transition (L2-L4)", {0.05, 0.15, 0.3, 0.3, 0.15, 0.05}},
      {"autonomous era (L4-L5)", {0.0, 0.0, 0.05, 0.15, 0.4, 0.4}},
  };

  exp::Sweep<core::SystemConfig> sweep;
  auto& mix_axis = sweep.axis("mix");
  for (const MixSpec& mix : mixes) {
    mix_axis.point(mix.label, [weights = mix.weights](core::SystemConfig& c) {
      c.scenario.automation_weights = weights;
    });
  }
  auto& density_axis = sweep.axis("vehicles");
  for (const int vehicles : {40, 80, 160}) {
    density_axis.point(std::to_string(vehicles),
                       [vehicles](core::SystemConfig& c) {
                         c.scenario.vehicles = vehicles;
                       });
  }

  std::vector<std::vector<exp::Cell>> rows;
  for (const auto& cell : sweep.cells()) {
    const auto summary =
        campaign.replicate(5, [&](const exp::RepContext& ctx) {
          core::SystemConfig cfg;
          cfg.scenario.grid_rows = 6;
          cfg.scenario.grid_cols = 6;
          cfg = cell.make(cfg);
          cfg.scenario.seed = ctx.seed;
          core::VehicularCloudSystem system(cfg);
          system.start();
          // Sample the pool every 10 s over 2 minutes.
          Accumulator members, compute, storage, sensors;
          for (int s = 0; s < 12; ++s) {
            system.run_for(10.0);
            const auto pool = system.cloud().pool();
            members.add(static_cast<double>(pool.members));
            compute.add(pool.compute);
            storage.add(pool.storage_mb / 1024.0);
            sensors.add(static_cast<double>(pool.sensor_count));
          }
          exp::RepReport rep;
          rep.value("members", members.mean());
          rep.value("compute", compute.mean());
          rep.value("storage", storage.mean());
          rep.value("sensors", sensors.mean());
          return rep;
        });
    rows.push_back({exp::Cell(cell.labels[0]), exp::Cell(cell.labels[1]),
                    exp::Cell(summary.at("members"), 1),
                    exp::Cell(summary.at("compute"), 1),
                    exp::Cell(summary.at("storage"), 1),
                    exp::Cell(summary.at("sensors"), 0)});
  }
  campaign.emit("pooled resources of the largest dynamic cloud (120 s mean)",
                {"mix", "vehicles", "members", "compute_u/s", "storage_GB",
                 "sensors"},
                rows);
  return campaign.finish();
}
