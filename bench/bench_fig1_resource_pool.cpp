// E5 (Fig. 1) — On-board equipment scaling into pooled v-cloud capability.
//
// Fig. 1 argues that higher automation levels carry richer equipment and
// raise both the opportunity (resources to pool) and the stakes
// (coordination/security requirements). Measured here: the aggregate
// compute/storage/sensing a dynamic v-cloud actually pools, as a function
// of vehicle density and of the fleet's automation mix.
#include <iostream>

#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct MixSpec {
  const char* label;
  std::vector<double> weights;  // per automation level 0..5
};

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig1_resource_pool", argc, argv);
  g_report = &reporter;

  std::cout << "E5 (Fig. 1): pooled v-cloud resources vs density and "
               "automation mix\n\n";

  const std::vector<MixSpec> mixes = {
      {"today (mostly L0-L2)", {0.4, 0.3, 0.2, 0.08, 0.02, 0.0}},
      {"transition (L2-L4)", {0.05, 0.15, 0.3, 0.3, 0.15, 0.05}},
      {"autonomous era (L4-L5)", {0.0, 0.0, 0.05, 0.15, 0.4, 0.4}},
  };

  Table table("pooled resources of the largest dynamic cloud (120 s mean)",
              {"mix", "vehicles", "members", "compute_u/s", "storage_GB",
               "sensors"});
  for (const MixSpec& mix : mixes) {
    for (const int vehicles : {40, 80, 160}) {
      core::SystemConfig cfg;
      cfg.scenario.vehicles = vehicles;
      cfg.scenario.grid_rows = 6;
      cfg.scenario.grid_cols = 6;
      cfg.scenario.seed = 5;
      cfg.scenario.automation_weights = mix.weights;
      core::VehicularCloudSystem system(cfg);
      system.start();
      // Sample the pool every 10 s over 2 minutes.
      Accumulator members, compute, storage, sensors;
      for (int s = 0; s < 12; ++s) {
        system.run_for(10.0);
        const auto pool = system.cloud().pool();
        members.add(static_cast<double>(pool.members));
        compute.add(pool.compute);
        storage.add(pool.storage_mb / 1024.0);
        sensors.add(static_cast<double>(pool.sensor_count));
      }
      table.add_row({mix.label, std::to_string(vehicles),
                     Table::num(members.mean(), 1),
                     Table::num(compute.mean(), 1),
                     Table::num(storage.mean(), 1),
                     Table::num(sensors.mean(), 0)});
    }
  }
  emit_table(table);
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
