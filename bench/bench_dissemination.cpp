// E20 — Data dissemination scheduling & resource incentives.
//
// Two economics of the shared medium, both from the survey:
//   * Wu et al. [42]: "be stable and fair" — RSU downlink scheduling under
//     Zipf demand: throughput-greedy vs FIFO vs deficit-fair.
//   * Kong et al. [17]: credit incentives — how free riders drain out and
//     lenders sustain participation in a live cloud.
#include <iostream>

#include "core/scenario.h"
#include "net/dissemination.h"
#include "obs/bench_output.h"
#include "util/table.h"
#include "vcloud/cloud.h"
#include "vcloud/incentive.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_dissemination", argc, argv);
  g_report = &reporter;

  std::cout << "E20: dissemination scheduling & incentives\n\n";

  // ---- Part 1: scheduling policies under Zipf demand ---------------------------
  Table sched_table("RSU downlink scheduling (300 slots, Zipf demand over "
                    "12 items, 4 requests/slot)",
                    {"policy", "served", "mean_wait_s", "p95_wait_s",
                     "jain_fairness"});
  for (const auto policy : {net::DisseminationPolicy::kFifo,
                            net::DisseminationPolicy::kMostRequested,
                            net::DisseminationPolicy::kDeficitFair}) {
    net::DisseminationScheduler sched(policy);
    Rng rng(42);
    double now = 0.0;
    std::uint64_t next_requester = 1;
    for (int slot = 0; slot < 300; ++slot, now += 1.0) {
      for (int r = 0; r < 4; ++r) {
        double total = 0;
        for (int i = 0; i < 12; ++i) total += 1.0 / (i + 1);
        double x = rng.uniform(0, total);
        std::uint64_t item = 1;
        for (int i = 0; i < 12; ++i) {
          x -= 1.0 / (i + 1);
          if (x <= 0) {
            item = static_cast<std::uint64_t>(i + 1);
            break;
          }
        }
        sched.request(VehicleId{next_requester++}, FileId{item}, now);
      }
      sched.serve_slot(now);
    }
    sched_table.add_row({to_string(policy),
                         std::to_string(sched.served_requests()),
                         Table::num(sched.wait_time().mean(), 2),
                         Table::num(sched.wait_time().percentile(95), 2),
                         Table::num(sched.jain_fairness(), 3)});
  }
  emit_table(sched_table);

  // ---- Part 2: incentive loop in a live cloud ----------------------------------
  core::ScenarioConfig cfg;
  cfg.environment = core::Environment::kParkingLot;
  cfg.vehicles = 30;
  cfg.vehicles_parked = true;
  cfg.seed = 12;
  core::Scenario scenario(cfg);
  scenario.start();
  scenario.network().refresh();
  const auto [lo, hi] = scenario.road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  vcloud::VehicularCloud cloud(
      CloudId{1}, scenario.network(),
      vcloud::stationary_membership(scenario.traffic(), center, 5000.0),
      vcloud::fixed_region(center, 5000.0),
      std::make_unique<vcloud::GreedyResourceScheduler>(),
      vcloud::CloudConfig{}, scenario.fork_rng(3));
  cloud.attach();
  cloud.refresh();

  vcloud::IncentiveLedger ledger;
  cloud.set_completion_hook([&](const vcloud::Task& t) {
    ledger.reward(t.worker.value(), t.work);
  });

  // Two requester populations: lenders are also cloud members (they earn);
  // free riders only submit (external credential ids, never work).
  std::vector<std::uint64_t> members;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    members.push_back(vid);
  }
  std::sort(members.begin(), members.end());
  const std::vector<std::uint64_t> free_riders = {90001, 90002, 90003};

  vcloud::WorkloadGenerator workload({8.0, 0.5, 0.1, 0.0},
                                     scenario.fork_rng(4));
  Rng pick(5);
  std::size_t member_submits = 0;
  std::size_t rider_submits = 0;
  scenario.simulator().schedule_every(2.0, [&] {
    // One member and one free rider attempt a submission each round.
    vcloud::Task mt = workload.next(scenario.simulator().now());
    const std::uint64_t member = pick.pick(members);
    if (ledger.charge(member, mt.work)) {
      cloud.submit(std::move(mt));
      ++member_submits;
    }
    vcloud::Task rt = workload.next(scenario.simulator().now());
    const std::uint64_t rider = pick.pick(free_riders);
    if (ledger.charge(rider, rt.work)) {
      cloud.submit(std::move(rt));
      ++rider_submits;
    }
  });
  scenario.run_for(600.0);

  Accumulator member_balance;
  for (const std::uint64_t m : members) member_balance.add(ledger.balance(m));
  Accumulator rider_balance;
  for (const std::uint64_t r : free_riders) rider_balance.add(ledger.balance(r));

  Table inc_table("incentive loop after 600 s (earn 0.8/work, price 1.0)",
                  {"population", "accepted_submissions", "mean_balance"});
  inc_table.add_row({"members (lend + request)", std::to_string(member_submits),
                     Table::num(member_balance.mean(), 1)});
  inc_table.add_row({"free riders (request only)", std::to_string(rider_submits),
                     Table::num(rider_balance.mean(), 1)});
  emit_table(inc_table);
  std::cout << "throttled submissions: " << ledger.throttled() << "\n\n";

  std::cout
      << "Shape vs the surveyed papers: the throughput-greedy policy buys\n"
         "nothing on served volume (broadcast already batches the popular\n"
         "items) while starving the tail — p95 wait 2.5x worse, Jain 0.43;\n"
         "deficit-fair restores near-perfect fairness at the best mean\n"
         "wait, Wu et al.'s 'stable and fair' claim in one table. The\n"
         "credit loop lets working members keep requesting indefinitely\n"
         "while pure consumers exhaust their balance and are throttled —\n"
         "participation becomes individually rational, per Kong et al.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
