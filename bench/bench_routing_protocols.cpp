// E6 — Routing protocol comparison (§IV.A.1's survey, measured).
//
// Flooding, greedy-geographic, quality-weighted greedy, MoZo (moving
// zones) and CBLTR route the same random unicast workload across density
// and environment sweeps; a disconnected-islands scenario adds the
// bus-trajectory ferry [36]. Reported: delivery ratio, mean end-to-end
// delay, transmissions per message (overhead), and mean hops.
#include <iostream>
#include <memory>

#include "core/scenario.h"
#include "routing/bus_ferry.h"
#include "routing/cbltr.h"
#include "routing/flooding.h"
#include "routing/greedy_geo.h"
#include "routing/mozo_routing.h"
#include "routing/quality_greedy.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct RunResult {
  double delivery = 0;
  double delay = 0;
  double overhead = 0;
  double hops = 0;
};

RunResult run_protocol(const std::string& protocol, core::Environment env,
                       int vehicles, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.environment = env;
  cfg.vehicles = vehicles;
  cfg.seed = seed;
  cfg.grid_rows = 5;
  cfg.grid_cols = 5;
  cfg.grid_spacing = 250.0;
  core::Scenario scenario(cfg);
  scenario.start();
  scenario.run_for(5.0);  // let traffic settle and tables fill

  std::unique_ptr<cluster::MovingZone> zones;
  std::unique_ptr<routing::Router> router;
  if (protocol == "flooding") {
    router = std::make_unique<routing::Flooding>(scenario.network());
  } else if (protocol == "greedy_geo") {
    router = std::make_unique<routing::GreedyGeo>(scenario.network());
  } else if (protocol == "quality_greedy") {
    router = std::make_unique<routing::QualityGreedy>(scenario.network());
  } else if (protocol == "mozo") {
    zones = std::make_unique<cluster::MovingZone>(scenario.network());
    zones->attach(1.0);
    zones->update();
    router = std::make_unique<routing::MozoRouting>(scenario.network(), *zones);
  } else {
    router = std::make_unique<routing::Cbltr>(scenario.network());
  }
  router->attach();
  scenario.network().refresh();

  // Random unicast pairs: 4 messages/s for 40 s.
  Rng pick(seed ^ 0xfeed);
  scenario.simulator().schedule_every(0.25, [&] {
    std::vector<VehicleId> ids;
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      ids.push_back(v.id);
    }
    if (ids.size() < 2) return;
    const VehicleId src = pick.pick(ids);
    const VehicleId dst = pick.pick(ids);
    if (src == dst) return;
    router->originate(src, dst);
  });
  scenario.run_for(40.0);
  scenario.run_for(10.0);  // drain in-flight messages

  RunResult r;
  r.delivery = router->metrics().delivery_ratio();
  r.delay = router->metrics().delay().mean();
  r.overhead = router->metrics().overhead();
  r.hops = router->metrics().hops().mean();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_routing_protocols", argc, argv);
  g_report = &reporter;

  std::cout << "E6: routing protocols — delivery / delay / overhead\n"
            << "160 random unicasts over 40 s per cell; city grid and "
               "highway\n\n";

  const std::vector<std::string> protocols = {
      "flooding", "greedy_geo", "quality_greedy", "mozo", "cbltr"};

  for (const auto env :
       {core::Environment::kCity, core::Environment::kHighway}) {
    const char* env_name =
        env == core::Environment::kCity ? "city grid" : "highway";
    Table table(std::string("E6 (") + env_name + ")",
                {"protocol", "vehicles", "delivery", "delay_ms", "overhead",
                 "hops"});
    for (const int vehicles : {40, 100}) {
      for (const std::string& protocol : protocols) {
        const RunResult r = run_protocol(protocol, env, vehicles, 1234);
        table.add_row({protocol, std::to_string(vehicles),
                       Table::num(r.delivery, 3),
                       Table::num(r.delay * 1000.0, 1),
                       Table::num(r.overhead, 1), Table::num(r.hops, 1)});
      }
    }
    emit_table(table);
  }

  // ---- Disconnected-islands scenario: bus-trajectory ferrying [36] -----------
  {
    Table table("E6 (sparse islands: 2 clusters 2 km apart + 1 bus line)",
                {"protocol", "delivery", "mean_delay_s"});
    auto run_island = [&](const std::string& protocol) {
      geo::RoadNetwork road = geo::make_manhattan_grid(2, 8, 300.0);
      sim::Simulator sim;
      mobility::TrafficModel traffic(road, Rng(71));
      net::Network net(sim, traffic, net::ChannelConfig{}, Rng(72));
      std::vector<VehicleId> west, east;
      for (double off : {0.0, 60.0, 120.0}) {
        west.push_back(traffic.spawn_parked(LinkId{0}, off));
      }
      LinkId east_link;
      for (const auto& l : road.links()) {
        const auto p = road.position_on_link(l.id, 0.0);
        if (p.x >= 1800 && p.y < 10 && road.link_direction(l.id).x > 0.9) {
          east_link = l.id;
        }
      }
      for (double off : {150.0, 210.0, 270.0}) {
        east.push_back(traffic.spawn_parked(east_link, off));
      }
      routing::BusRegistry registry;
      const auto loop =
          routing::build_loop_route(road, {NodeId{0}, NodeId{7}}, 40);
      const auto bus = traffic.spawn(
          loop, 14.0, mobility::AutomationLevel::kHighAutomation, 1.0);
      registry.register_bus(bus, loop);
      traffic.attach(sim, 0.1);
      net.start_beacons(0.5);

      std::unique_ptr<routing::Router> router;
      if (protocol == "bus_ferry") {
        router = std::make_unique<routing::BusFerryRouting>(net, registry);
      } else {
        router = std::make_unique<routing::GreedyGeo>(net);
      }
      router->attach();
      net.refresh();
      for (std::size_t i = 0; i < west.size(); ++i) {
        router->originate(west[i], east[i]);
        router->originate(east[i], west[i]);
      }
      sim.run_until(600.0);
      table.add_row({protocol,
                     Table::num(router->metrics().delivery_ratio(), 2),
                     Table::num(router->metrics().delay().mean(), 1)});
    };
    run_island("greedy_geo");
    run_island("bus_ferry");
    emit_table(table);
  }

  std::cout
      << "Shape vs the surveyed literature: flooding buys delivery with an\n"
         "order-of-magnitude overhead; greedy-geo is cheap but bleeds on\n"
         "lossy max-progress hops; quality-greedy (progress x link quality,\n"
         "motivated by ablation E16) recovers near-flooding delivery at the\n"
         "lowest unicast overhead; MoZo adds zone structure; CBLTR's\n"
         "lifetime-aware next hops help most at high relative speeds\n"
         "(highway). Sparse-scene nuance: flooding has no carry-and-forward\n"
         "recovery, so every store-carry protocol beats it on a thin\n"
         "highway. And when the network is truly partitioned, only the\n"
         "bus-trajectory ferry [36] crosses — at minutes of delay, the\n"
         "honest price of delay-tolerant delivery.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
