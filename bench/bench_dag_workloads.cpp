// E23 — DAG task-graph workloads under decomposition scheduling (DESIGN.md
// §11; arXiv 2210.07337's reliability-aware replication).
//
// A stationary parking-lot cloud serves a steady stream of generated task
// graphs (chain / fork-join / diamond / layered, cycling) while a FaultPlan
// crashes workers underneath the running attempts. The SAME scenario seed
// is used for every policy at a given fault intensity, so all policies face
// the identical fault schedule AND the identical graph stream; differences
// are attributable to the replication policy alone:
//
//   none        one attempt per node; a crashed host stalls the node until
//               the failure detector fires and the cloud requeues it —
//               detection latency lands on the graph's critical path;
//   blind-k     k = 2 attempts per node up front: instant failover, but
//               every node pays 2x load whether or not it needed it — at
//               this offered load the extra copies saturate the fleet and
//               queueing, not crashes, dominates the makespan;
//   reliability-aware
//               one attempt up front; the periodic dwell scan launches a
//               backup only for hosts predicted to leave before the node
//               finishes (a crashed host predicts zero dwell, so backups
//               launch before the detector even fires) — near-blind-k
//               recovery at near-none load.
//
// Expected shape: at equal replica budget k, reliability-aware beats
// blind-k on makespan under faults (it spends replicas only where the
// dwell prediction says they pay) and beats none because its backups skip
// the detection-latency stall.
//
// Runs through the experiment engine: an exp::Sweep spans the crash-rate x
// policy grid and exp::Campaign replicates each cell (--reps N --jobs J).
// Stat cells are bit-identical for any --jobs split.
#include <iostream>

#include "core/system.h"
#include "dag/generator.h"
#include "exp/campaign.h"
#include "exp/sweep.h"
#include "util/table.h"

using namespace vcl;

namespace {

constexpr SimTime kLoadWindow = 240.0;
constexpr SimTime kGraphPeriod = 3.0;

exp::RepReport run_cell(const core::SystemConfig& cfg,
                        const std::string& out_dir) {
  core::VehicularCloudSystem system(cfg);
  system.start();

  // The graph stream rides its own forked RNG, so it is identical in every
  // cell of a replication regardless of policy or fault schedule.
  dag::DagWorkloadGenerator gen(dag::DagWorkloadConfig{},
                                system.scenario().fork_rng(78));
  dag::DagScheduler& dsched = *system.dag();
  auto& sim = system.scenario().simulator();
  sim.schedule_every(kGraphPeriod, [&] {
    if (sim.now() < kLoadWindow) dsched.submit_graph(gen.next(), sim.now());
  });

  system.run_for(kLoadWindow);
  // Drain until every graph is terminal (bounded): makespans then cover
  // every submitted graph, so a saturated policy cannot hide its backlog
  // behind the graphs it happened to finish early.
  for (int i = 0; i < 48 && !dsched.all_done(); ++i) system.run_for(20.0);

  if (!out_dir.empty() && system.telemetry() != nullptr) {
    obs::write_telemetry(*system.telemetry(), out_dir);
  }

  const dag::DagStats& s = dsched.stats();
  exp::RepReport rep;
  double crashes = 0;
  if (system.injector() != nullptr) {
    crashes = static_cast<double>(system.injector()->stats().vehicle_crashes);
  }
  rep.value("crashes", crashes);
  rep.value("graphs", static_cast<double>(s.graphs_completed));
  rep.value("unfinished",
            static_cast<double>(s.graphs_submitted - s.graphs_completed -
                                s.graphs_failed));
  rep.value("makespan", s.makespan.mean());
  rep.value("attempts", static_cast<double>(s.nodes_submitted));
  rep.value("backups", static_cast<double>(s.backups));
  rep.value("blind", static_cast<double>(s.blind_replicas));
  rep.value("transfer_mb", s.transfer_mb);
  rep.tail("node_lat").merge(s.node_latency_tail);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_dag_workloads", argc, argv);

  std::cout << "E23 (DESIGN.md §11): DAG decomposition scheduling under "
               "faults\n24 parked workers, one generated graph every "
            << kGraphPeriod
            << " s for " << kLoadWindow
            << " s (shapes cycle\nchain/fork-join/diamond/layered), drained "
               "to completion; every policy\nat a given intensity faces the "
               "identical fault schedule and graph\nstream (same seed, "
               "dedicated RNG streams).\n\n";
  campaign.describe(std::cout);

  exp::Sweep<core::SystemConfig> sweep;
  auto& rate_axis = sweep.axis("crash_rate");
  for (const double rate : {0.0, 0.01, 0.02}) {
    rate_axis.point(Table::num(rate, 2), [rate](core::SystemConfig& c) {
      c.faults.horizon = kLoadWindow;
      c.faults.vehicle_crash_rate = rate;
    });
  }
  auto& policy_axis = sweep.axis("policy");
  for (const dag::DagPolicy policy :
       {dag::DagPolicy::kNone, dag::DagPolicy::kBlindK,
        dag::DagPolicy::kReliabilityAware}) {
    policy_axis.point(dag::to_string(policy),
                      [policy](core::SystemConfig& c) {
                        c.dag.policy = policy;
                      });
  }

  std::map<std::string, std::map<std::string, exp::Summary>> by_cell;
  std::vector<std::vector<exp::Cell>> rows;
  for (const auto& cell : sweep.cells()) {
    const auto summary =
        campaign.replicate(1234, [&cell](const exp::RepContext& ctx) {
          core::SystemConfig cfg;
          cfg.scenario.environment = core::Environment::kParkingLot;
          cfg.scenario.vehicles = 24;
          cfg.scenario.vehicles_parked = true;
          cfg.architecture = core::CloudArchitecture::kStationary;
          cfg.stationary_radius = 5000.0;
          // Full mitigation (the chaos-episode fixture): the policies
          // differ on top of a working recovery stack, not instead of one.
          vcloud::DependabilityConfig& dep = cfg.cloud.dependability;
          dep.detector.enabled = true;
          dep.detector.missed_beats_to_kill = 6;
          dep.checkpoint.enabled = true;
          dep.checkpoint.period = 5.0;
          dep.retry.enabled = true;
          dep.speculation.enabled = true;
          dep.broker_resync_delay = 0.5;
          cfg.dag.enabled = true;
          cfg.dag.replicas = 2;  // equal budget k for blind-k and rel-aware
          // Shared across every policy at this intensity: identical fault
          // plan and graph stream.
          cfg.scenario.seed = ctx.seed;
          if (!ctx.out_dir.empty()) {
            cfg.telemetry.tracing = true;
            cfg.telemetry.metrics = true;
          }
          return run_cell(cell.make(cfg), ctx.out_dir);
        });
    rows.push_back({exp::Cell(cell.labels[0]), exp::Cell(cell.labels[1]),
                    exp::Cell(summary.at("crashes"), 0),
                    exp::Cell(summary.at("graphs"), 0),
                    exp::Cell(summary.at("unfinished"), 0),
                    exp::Cell(summary.at("makespan"), 1),
                    exp::Cell::tail(summary.at("node_lat"), 1),
                    exp::Cell(summary.at("attempts"), 0),
                    exp::Cell(summary.at("backups"), 0),
                    exp::Cell(summary.at("blind"), 0),
                    exp::Cell(summary.at("transfer_mb"), 1)});
    by_cell[cell.label()] = summary;
  }
  campaign.emit("E23: graph makespan and replica spend by policy",
                {"crash_rate", "policy", "crashes", "graphs", "unfinished",
                 "makespan_s", "node_lat_s", "attempts", "backups",
                 "blind_copies", "transfer_mb"},
                rows);

  // Qualitative acceptance checks (printed, not asserted: this is a bench).
  const std::string high = Table::num(0.02, 2);
  const auto& none_hi = by_cell.at(high + "/none");
  const auto& blind_hi = by_cell.at(high + "/blind-k");
  const auto& rel_hi = by_cell.at(high + "/reliability-aware");
  const double none_mk = none_hi.at("makespan").mean();
  const double blind_mk = blind_hi.at("makespan").mean();
  const double rel_mk = rel_hi.at("makespan").mean();
  const double blind_attempts = blind_hi.at("attempts").mean();
  const double rel_attempts = rel_hi.at("attempts").mean();
  const bool beats_blind = rel_mk < blind_mk;
  const bool beats_none = rel_mk < none_mk;
  const bool spends_less = rel_attempts < blind_attempts;
  std::cout << "\n[" << (beats_blind ? "PASS" : "FAIL")
            << "] reliability-aware beats blind-k makespan at equal replica "
               "budget under faults ("
            << Table::num(rel_mk, 1) << " vs " << Table::num(blind_mk, 1)
            << " s)\n";
  std::cout << "[" << (beats_none ? "PASS" : "FAIL")
            << "] reliability-aware beats unreplicated makespan under faults "
               "("
            << Table::num(rel_mk, 1) << " vs " << Table::num(none_mk, 1)
            << " s)\n";
  std::cout << "[" << (spends_less ? "PASS" : "FAIL")
            << "] and it spends fewer attempts than blind-k doing it ("
            << Table::num(rel_attempts, 0) << " vs "
            << Table::num(blind_attempts, 0) << ")\n";
  std::cout << "\nShape vs arXiv 2210.07337: blind replication pays k x load "
               "for every\nnode — at realistic utilization the extra copies "
               "queue behind each\nother and the makespan is lost to "
               "contention, not crashes. Predicting\nhost departure (dwell) "
               "and replicating only the at-risk nodes keeps\nrecovery off "
               "the critical path at a fraction of the replica bill.\n";
  return campaign.finish();
}
