// E13 — Emergency-mode management (§V.A).
//
// Timeline experiment: an infrastructure-based cloud and a dynamic fallback
// share a city. At t=150 s the emergency controller declares a disaster
// (RSUs in radius fail, listeners fire); at t=300 s all-clear. Reported:
// per-30s-window task completions for both clouds, mode switch bookkeeping,
// and the dynamic cloud's takeover latency (first completion after the
// switch).
#include <iostream>

#include "core/emergency.h"
#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_emergency_mode", argc, argv);
  g_report = &reporter;

  std::cout << "E13: emergency mode — infrastructure cloud vs dynamic "
               "fallback\n\n";

  core::SystemConfig cfg;
  cfg.scenario.vehicles = 70;
  cfg.scenario.seed = 17;
  cfg.scenario.rsu_spacing = 500.0;
  cfg.architecture = core::CloudArchitecture::kInfrastructureBased;
  core::VehicularCloudSystem system(cfg);
  system.start();
  auto& scenario = system.scenario();
  auto& sim = scenario.simulator();

  auto membership = vcloud::largest_cluster_membership(system.clusters());
  vcloud::VehicularCloud dynamic_cloud(
      CloudId{2}, scenario.network(), membership,
      vcloud::members_centroid_region(scenario.traffic(), membership, 300.0),
      std::make_unique<vcloud::DwellAwareScheduler>(), vcloud::CloudConfig{},
      scenario.fork_rng(12));
  dynamic_cloud.attach();
  dynamic_cloud.refresh();

  core::EmergencyController controller(scenario.network());
  SimTime takeover_latency = -1;
  SimTime emergency_at = -1;
  std::size_t rsus_lost = 0;
  controller.add_listener(
      [&](core::OperatingMode mode, geo::Vec2, double) {
        if (mode == core::OperatingMode::kEmergency) {
          emergency_at = sim.now();
          rsus_lost = controller.rsus_failed();
        }
      });

  vcloud::WorkloadGenerator workload({6.0, 0.5, 0.1, 45.0},
                                     scenario.fork_rng(13));
  sim.schedule_every(1.5, [&] {
    system.cloud().submit(workload.next(sim.now()));
    dynamic_cloud.submit(workload.next(sim.now()));
  });

  const auto [lo, hi] = scenario.road().bounding_box();
  const geo::Vec2 center{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  sim.schedule_at(150.0, [&] { controller.declare_emergency(center, 3000.0); });
  sim.schedule_at(300.0, [&] { controller.all_clear(); });

  Table table("tasks completed per 30 s window",
              {"window", "mode", "infra_cloud", "dynamic_cloud"});
  std::size_t infra_prev = 0;
  std::size_t dyn_prev = 0;
  std::size_t dyn_completed_at_emergency = 0;
  for (int w = 0; w < 14; ++w) {
    system.run_for(30.0);
    const auto infra_now = system.cloud().stats().completed;
    const auto dyn_now = dynamic_cloud.stats().completed;
    if (emergency_at >= 0 && dyn_completed_at_emergency == 0) {
      dyn_completed_at_emergency = dyn_now;
    }
    if (takeover_latency < 0 && emergency_at >= 0 &&
        dyn_now > dyn_completed_at_emergency) {
      takeover_latency = sim.now() - emergency_at;
    }
    table.add_row({std::to_string(w * 30) + "-" + std::to_string(w * 30 + 30),
                   core::to_string(controller.mode()),
                   std::to_string(infra_now - infra_prev),
                   std::to_string(dyn_now - dyn_prev)});
    infra_prev = infra_now;
    dyn_prev = dyn_now;
  }
  emit_table(table);

  std::cout << "mode switches: " << controller.mode_switches()
            << ", RSUs failed during emergency: " << rsus_lost << "\n";
  std::cout << "dynamic cloud takeover latency after the switch: <= "
            << Table::num(takeover_latency, 0) << " s (first window bound)\n";
  std::cout
      << "\nShape vs §V.A: the authority flips the region to emergency\n"
         "mode, infrastructure throughput collapses to zero, the dynamic\n"
         "cloud keeps serving within the first window after the switch,\n"
         "and normal service resumes on all-clear.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
