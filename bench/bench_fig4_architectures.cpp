// E2 (Fig. 4) — The three v-cloud architectures under normal operation and
// disaster.
//
// Stationary, infrastructure-based and dynamic clouds run the same task
// stream in their natural habitat for 150 s, then every RSU fails for 150 s
// (earthquake), then recovers for 100 s. Reported per phase: completion
// rate, mean latency and membership — the quantitative form of §IV.A.2's
// availability argument.
//
// Runs through the experiment engine (exp::Campaign): --reps N replicates
// every architecture with independent seeds (--jobs J in parallel) and
// reports mean ±95% CI; the default --reps 1 reproduces the historical
// single-seed output byte-for-byte.
#include <iostream>

#include "core/system.h"
#include "exp/campaign.h"
#include "util/table.h"

using namespace vcl;

namespace {

exp::RepReport run_architecture(core::CloudArchitecture arch,
                                std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.architecture = arch;
  cfg.scenario.seed = seed;
  cfg.scenario.rsu_spacing = 600.0;
  if (arch == core::CloudArchitecture::kStationary) {
    cfg.scenario.environment = core::Environment::kParkingLot;
    cfg.scenario.vehicles_parked = true;
    cfg.stationary_radius = 5000.0;
  }
  cfg.scenario.vehicles = 60;

  core::VehicularCloudSystem system(cfg);
  system.start();

  vcloud::WorkloadGenerator workload({8.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(66));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(2.0, [&] {
    system.cloud().submit(workload.next(sim.now()));
  });

  struct PhaseStats {
    std::size_t completed = 0;
    double members = 0;
  };
  auto run_phase = [&](double seconds) {
    const std::size_t before = system.cloud().stats().completed;
    Accumulator members(false);
    const int steps = static_cast<int>(seconds / 10.0);
    for (int i = 0; i < steps; ++i) {
      system.run_for(10.0);
      members.add(static_cast<double>(system.cloud().member_count()));
    }
    PhaseStats ps;
    ps.completed = system.cloud().stats().completed - before;
    ps.members = members.mean();
    return ps;
  };

  const PhaseStats normal = run_phase(150.0);
  system.scenario().network().rsus().fail_all();
  const PhaseStats disaster = run_phase(150.0);
  system.scenario().network().rsus().restore_all();
  const PhaseStats recovery = run_phase(100.0);

  exp::RepReport rep;
  rep.value("normal", static_cast<double>(normal.completed));
  rep.value("disaster", static_cast<double>(disaster.completed));
  rep.value("recovery", static_cast<double>(recovery.completed));
  rep.value("members_normal", normal.members);
  rep.value("members_disaster", disaster.members);
  rep.value("mean_latency", system.cloud().stats().latency.mean());
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_fig4_architectures", argc, argv);

  std::cout << "E2 (Fig. 4): stationary vs infrastructure-based vs dynamic\n"
            << "phases: normal 150 s | all RSUs fail 150 s | recovery 100 "
               "s\n\n";
  campaign.describe(std::cout);

  std::vector<std::vector<exp::Cell>> rows;
  for (const auto arch : {core::CloudArchitecture::kStationary,
                          core::CloudArchitecture::kInfrastructureBased,
                          core::CloudArchitecture::kDynamic}) {
    const auto summary =
        campaign.replicate(44, [arch](const exp::RepContext& ctx) {
          return run_architecture(arch, ctx.seed);
        });
    rows.push_back({exp::Cell(core::to_string(arch)),
                    exp::Cell(summary.at("normal"), 0),
                    exp::Cell(summary.at("disaster"), 0),
                    exp::Cell(summary.at("recovery"), 0),
                    exp::Cell(summary.at("members_normal"), 1),
                    exp::Cell(summary.at("members_disaster"), 1),
                    exp::Cell(summary.at("mean_latency"), 1)});
  }
  campaign.emit("tasks completed per phase (same 1-task/2s stream)",
                {"architecture", "normal", "disaster", "recovery",
                 "members(normal)", "members(disaster)", "mean_latency_s"},
                rows);

  std::cout
      << "Shape vs paper: the infrastructure-based cloud loses its members\n"
         "(and throughput) the moment RSUs die; the stationary cloud is\n"
         "unaffected but only exists where parked fleets do; the dynamic\n"
         "cloud's membership and completions ride through the disaster —\n"
         "\"the most promising for handling emergency responses\" (§II.C).\n";
  return campaign.finish();
}
