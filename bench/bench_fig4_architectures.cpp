// E2 (Fig. 4) — The three v-cloud architectures under normal operation and
// disaster.
//
// Stationary, infrastructure-based and dynamic clouds run the same task
// stream in their natural habitat for 150 s, then every RSU fails for 150 s
// (earthquake), then recovers for 100 s. Reported per phase: completion
// rate, mean latency and membership — the quantitative form of §IV.A.2's
// availability argument.
#include <iostream>

#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct PhaseStats {
  std::size_t completed = 0;
  double members = 0;
};

struct ArchResult {
  std::string name;
  PhaseStats normal, disaster, recovery;
  double mean_latency = 0;
  std::size_t migrations = 0;
};

ArchResult run_architecture(core::CloudArchitecture arch) {
  core::SystemConfig cfg;
  cfg.architecture = arch;
  cfg.scenario.seed = 44;
  cfg.scenario.rsu_spacing = 600.0;
  if (arch == core::CloudArchitecture::kStationary) {
    cfg.scenario.environment = core::Environment::kParkingLot;
    cfg.scenario.vehicles_parked = true;
    cfg.stationary_radius = 5000.0;
  }
  cfg.scenario.vehicles = 60;

  core::VehicularCloudSystem system(cfg);
  system.start();

  vcloud::WorkloadGenerator workload({8.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(66));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(2.0, [&] {
    system.cloud().submit(workload.next(sim.now()));
  });

  auto run_phase = [&](double seconds) {
    const std::size_t before = system.cloud().stats().completed;
    Accumulator members(false);
    const int steps = static_cast<int>(seconds / 10.0);
    for (int i = 0; i < steps; ++i) {
      system.run_for(10.0);
      members.add(static_cast<double>(system.cloud().member_count()));
    }
    PhaseStats ps;
    ps.completed = system.cloud().stats().completed - before;
    ps.members = members.mean();
    return ps;
  };

  ArchResult result;
  result.name = core::to_string(arch);
  result.normal = run_phase(150.0);
  system.scenario().network().rsus().fail_all();
  result.disaster = run_phase(150.0);
  system.scenario().network().rsus().restore_all();
  result.recovery = run_phase(100.0);
  result.mean_latency = system.cloud().stats().latency.mean();
  result.migrations = system.cloud().stats().migrations;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig4_architectures", argc, argv);
  g_report = &reporter;

  std::cout << "E2 (Fig. 4): stationary vs infrastructure-based vs dynamic\n"
            << "phases: normal 150 s | all RSUs fail 150 s | recovery 100 "
               "s\n\n";

  Table table("tasks completed per phase (same 1-task/2s stream)",
              {"architecture", "normal", "disaster", "recovery",
               "members(normal)", "members(disaster)", "mean_latency_s"});
  for (const auto arch : {core::CloudArchitecture::kStationary,
                          core::CloudArchitecture::kInfrastructureBased,
                          core::CloudArchitecture::kDynamic}) {
    const ArchResult r = run_architecture(arch);
    table.add_row({r.name, std::to_string(r.normal.completed),
                   std::to_string(r.disaster.completed),
                   std::to_string(r.recovery.completed),
                   Table::num(r.normal.members, 1),
                   Table::num(r.disaster.members, 1),
                   Table::num(r.mean_latency, 1)});
  }
  emit_table(table);

  std::cout
      << "Shape vs paper: the infrastructure-based cloud loses its members\n"
         "(and throughput) the moment RSUs die; the stationary cloud is\n"
         "unaffected but only exists where parked fleets do; the dynamic\n"
         "cloud's membership and completions ride through the disaster —\n"
         "\"the most promising for handling emergency responses\" (§II.C).\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
