// E22 — Dependability under injected faults (paper §III).
//
// A stationary parking-lot cloud serves a steady deadline-bearing task
// stream while a FaultPlan injects vehicle crashes, broker crashes and
// radio blackout windows. The SAME scenario seed is used for every
// mitigation mode at a given fault intensity, so all modes face the
// *identical* fault schedule (plans are drawn from a dedicated forked RNG
// stream) and differences are attributable to the recovery machinery:
//
//   none         no detector/retry/checkpoint — a crashed worker is a
//                zombie forever; its task hangs until the deadline reaper
//                expires it (the paper's no-recovery collapse);
//   detect       heartbeat failure detector only: crashes are noticed after
//                k missed beats, tasks re-queue FROM ZERO;
//   detect+ckpt  + periodic checkpoints: a crash loses only the delta since
//                the last checkpoint;
//   full         + ack/retry with exponential backoff for dispatch/result
//                and speculative replicas for deadline tasks.
//
// Expected shape: completion(none) collapses as the crash rate grows;
// detect recovers most of it; checkpointing cuts wasted work vs
// requeue-from-zero; full buys the last few points of completion at the
// price of redundant replica work.
//
// Runs through the experiment engine: an exp::Sweep spans the crash-rate x
// mode grid and exp::Campaign replicates each cell (--reps N --jobs J).
// Replication keeps the identical-fault-schedule property: replication r
// uses the same derived seed in every cell, so at a given intensity all
// modes still face the same fault plans. The default --reps 1 reproduces
// the historical single-seed output byte-for-byte.
#include <iostream>

#include "core/system.h"
#include "exp/campaign.h"
#include "exp/sweep.h"
#include "util/table.h"

using namespace vcl;

namespace {

struct Mode {
  std::string name;
  vcloud::DependabilityConfig dep;
};

std::vector<Mode> modes() {
  Mode none;
  none.name = "none";

  Mode detect;
  detect.name = "detect";
  detect.dep.detector.enabled = true;
  // 50 parked transmitters add ~0.2 contention loss per beat; k=6 keeps the
  // baseline false-positive rate negligible while blackouts still trip it.
  detect.dep.detector.missed_beats_to_kill = 6;

  Mode ckpt = detect;
  ckpt.name = "detect+ckpt";
  ckpt.dep.checkpoint.enabled = true;
  ckpt.dep.checkpoint.period = 5.0;

  Mode full = ckpt;
  full.name = "full";
  full.dep.retry.enabled = true;
  full.dep.speculation.enabled = true;
  full.dep.broker_resync_delay = 0.5;

  return {none, detect, ckpt, full};
}

exp::RepReport run_cell(const core::SystemConfig& cfg,
                        const std::string& out_dir) {
  core::VehicularCloudSystem system(cfg);
  system.start();

  // Heavy enough that roughly half the fleet is busy at any time: a crash
  // usually lands on a mid-flight task, which is what the modes differ on.
  vcloud::WorkloadGenerator workload({30.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(77));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(0.5, [&] {
    if (sim.now() < 240.0) system.cloud().submit(workload.next(sim.now()));
  });
  // 240 s of load + 60 s of drain (deadlines settle everything in flight).
  system.run_for(300.0);

  if (!out_dir.empty() && system.telemetry() != nullptr) {
    obs::write_telemetry(*system.telemetry(), out_dir);
  }

  const vcloud::CloudStats& s = system.cloud().stats();
  exp::RepReport rep;
  double crashes = 0;
  if (system.injector() != nullptr) {
    crashes = static_cast<double>(system.injector()->stats().vehicle_crashes +
                                  system.injector()->stats().broker_crashes);
  }
  rep.value("crashes", crashes);
  rep.value("completed", static_cast<double>(s.completed));
  rep.value("expired", static_cast<double>(s.expired));
  rep.value("completion", s.completion_rate());
  rep.value("wasted", s.wasted_work);
  rep.value("redundant", s.redundant_work);
  rep.value("retries", static_cast<double>(s.retries));
  rep.value("kills", static_cast<double>(s.crash_kills));
  rep.value("fp_kills", static_cast<double>(s.false_positive_kills));
  rep.value("det_lat", s.detection_latency.mean());
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_dependability", argc, argv);

  std::cout << "E22 (paper §III): task dependability under injected faults\n"
            << "50 parked workers, task every 0.5 s (mean work 30, deadline "
               "60 s),\n300 s per cell; every mode at a given intensity faces "
               "the identical\nfault schedule (same seed, dedicated plan RNG "
               "stream).\n\n";
  campaign.describe(std::cout);

  exp::Sweep<core::SystemConfig> sweep;
  auto& rate_axis = sweep.axis("crash_rate");
  for (const double rate : {0.0, 0.02, 0.05}) {
    rate_axis.point(Table::num(rate, 2), [rate](core::SystemConfig& c) {
      c.faults.horizon = 240.0;
      c.faults.vehicle_crash_rate = rate;
      c.faults.broker_crash_rate = rate / 4.0;
      c.faults.blackout_rate = rate > 0.0 ? 0.01 : 0.0;
      c.faults.blackout_mean_duration = 5.0;
      c.faults.blackout_radius = 400.0;
    });
  }
  auto& mode_axis = sweep.axis("mode");
  for (const Mode& mode : modes()) {
    mode_axis.point(mode.name, [dep = mode.dep](core::SystemConfig& c) {
      c.cloud.dependability = dep;
    });
  }

  // Cell label ("rate/mode") -> metric summaries, for the epilogue checks.
  std::map<std::string, std::map<std::string, exp::Summary>> by_cell;
  std::vector<std::vector<exp::Cell>> rows;
  for (const auto& cell : sweep.cells()) {
    const auto summary =
        campaign.replicate(1234, [&cell](const exp::RepContext& ctx) {
          core::SystemConfig cfg;
          cfg.scenario.environment = core::Environment::kParkingLot;
          cfg.scenario.vehicles = 50;
          cfg.scenario.vehicles_parked = true;
          cfg.architecture = core::CloudArchitecture::kStationary;
          cfg.stationary_radius = 5000.0;
          // Shared across every mode at this intensity: identical fault plan.
          cfg.scenario.seed = ctx.seed;
          // --telemetry-dir: this replication exports its trace + metrics
          // into its own pre-created rep directory.
          if (!ctx.out_dir.empty()) {
            cfg.telemetry.tracing = true;
            cfg.telemetry.metrics = true;
          }
          return run_cell(cell.make(cfg), ctx.out_dir);
        });
    rows.push_back({exp::Cell(cell.labels[0]), exp::Cell(cell.labels[1]),
                    exp::Cell(summary.at("crashes"), 0),
                    exp::Cell(summary.at("completed"), 0),
                    exp::Cell(summary.at("expired"), 0),
                    exp::Cell(summary.at("completion"), 2),
                    exp::Cell(summary.at("wasted"), 1),
                    exp::Cell(summary.at("redundant"), 1),
                    exp::Cell(summary.at("retries"), 0),
                    exp::Cell(summary.at("kills"), 0),
                    exp::Cell(summary.at("fp_kills"), 0),
                    exp::Cell(summary.at("det_lat"), 2)});
    by_cell[cell.label()] = summary;
  }
  campaign.emit("E22: completion and overheads by mitigation mode",
                {"crash_rate", "mode", "crashes", "completed", "expired",
                 "completion", "wasted", "redundant", "retries", "kills",
                 "fp_kills", "det_lat_s"},
                rows);

  // Qualitative acceptance checks (printed, not asserted: this is a bench).
  // With replication on, the checks compare cross-replication means.
  const std::string high = Table::num(0.05, 2);
  const auto& none_hi = by_cell.at(high + "/none");
  const auto& detect_hi = by_cell.at(high + "/detect");
  const auto& ckpt_hi = by_cell.at(high + "/detect+ckpt");
  const auto& full_hi = by_cell.at(high + "/full");
  const double none_completion = none_hi.at("completion").mean();
  const double full_completion = full_hi.at("completion").mean();
  const double detect_wasted = detect_hi.at("wasted").mean();
  const double ckpt_wasted = ckpt_hi.at("wasted").mean();
  const bool recovery_wins = full_completion > none_completion;
  const bool ckpt_cheaper = ckpt_wasted < detect_wasted;
  std::cout << "\n[" << (recovery_wins ? "PASS" : "FAIL")
            << "] full recovery completes more than no recovery at crash "
               "rate "
            << 0.05 << " (" << Table::num(full_completion, 2) << " vs "
            << Table::num(none_completion, 2) << ")\n";
  std::cout << "[" << (ckpt_cheaper ? "PASS" : "FAIL")
            << "] checkpointed recovery wastes less work than "
               "requeue-from-zero ("
            << Table::num(ckpt_wasted, 1) << " vs "
            << Table::num(detect_wasted, 1) << ")\n";
  std::cout << "\nShape vs paper §III: with no failure detection a crashed\n"
               "worker silently pins its task until the deadline reaper\n"
               "fires — completion collapses with fault intensity. Heartbeat\n"
               "detection restores most completion at the cost of detection\n"
               "latency and occasional false-positive kills under radio\n"
               "blackouts; checkpoints shrink the wasted-work bill; retry +\n"
               "speculation trade redundant compute for the last points of\n"
               "completion.\n";
  return campaign.finish();
}
