// E22 — Dependability under injected faults (paper §III).
//
// A stationary parking-lot cloud serves a steady deadline-bearing task
// stream while a FaultPlan injects vehicle crashes, broker crashes and
// radio blackout windows. The SAME scenario seed is used for every
// mitigation mode at a given fault intensity, so all modes face the
// *identical* fault schedule (plans are drawn from a dedicated forked RNG
// stream) and differences are attributable to the recovery machinery:
//
//   none         no detector/retry/checkpoint — a crashed worker is a
//                zombie forever; its task hangs until the deadline reaper
//                expires it (the paper's no-recovery collapse);
//   detect       heartbeat failure detector only: crashes are noticed after
//                k missed beats, tasks re-queue FROM ZERO;
//   detect+ckpt  + periodic checkpoints: a crash loses only the delta since
//                the last checkpoint;
//   full         + ack/retry with exponential backoff for dispatch/result
//                and speculative replicas for deadline tasks.
//
// Expected shape: completion(none) collapses as the crash rate grows;
// detect recovers most of it; checkpointing cuts wasted work vs
// requeue-from-zero; full buys the last few points of completion at the
// price of redundant replica work.
#include <iostream>

#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct Mode {
  std::string name;
  vcloud::DependabilityConfig dep;
};

std::vector<Mode> modes() {
  Mode none;
  none.name = "none";

  Mode detect;
  detect.name = "detect";
  detect.dep.detector.enabled = true;
  // 50 parked transmitters add ~0.2 contention loss per beat; k=6 keeps the
  // baseline false-positive rate negligible while blackouts still trip it.
  detect.dep.detector.missed_beats_to_kill = 6;

  Mode ckpt = detect;
  ckpt.name = "detect+ckpt";
  ckpt.dep.checkpoint.enabled = true;
  ckpt.dep.checkpoint.period = 5.0;

  Mode full = ckpt;
  full.name = "full";
  full.dep.retry.enabled = true;
  full.dep.speculation.enabled = true;
  full.dep.broker_resync_delay = 0.5;

  return {none, detect, ckpt, full};
}

struct Row {
  std::string mode;
  double crash_rate = 0.0;
  std::size_t crashes = 0;
  vcloud::CloudStats stats;
};

Row run_mode(const Mode& mode, double crash_rate) {
  core::SystemConfig cfg;
  cfg.scenario.environment = core::Environment::kParkingLot;
  cfg.scenario.vehicles = 50;
  cfg.scenario.vehicles_parked = true;
  cfg.scenario.seed = 1234;  // shared: identical fault plan across modes
  cfg.architecture = core::CloudArchitecture::kStationary;
  cfg.stationary_radius = 5000.0;
  cfg.cloud.dependability = mode.dep;
  cfg.faults.horizon = 240.0;
  cfg.faults.vehicle_crash_rate = crash_rate;
  cfg.faults.broker_crash_rate = crash_rate / 4.0;
  cfg.faults.blackout_rate = crash_rate > 0.0 ? 0.01 : 0.0;
  cfg.faults.blackout_mean_duration = 5.0;
  cfg.faults.blackout_radius = 400.0;

  core::VehicularCloudSystem system(cfg);
  system.start();

  // Heavy enough that roughly half the fleet is busy at any time: a crash
  // usually lands on a mid-flight task, which is what the modes differ on.
  vcloud::WorkloadGenerator workload({30.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(77));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(0.5, [&] {
    if (sim.now() < 240.0) system.cloud().submit(workload.next(sim.now()));
  });
  // 240 s of load + 60 s of drain (deadlines settle everything in flight).
  system.run_for(300.0);

  Row row;
  row.mode = mode.name;
  row.crash_rate = crash_rate;
  row.stats = system.cloud().stats();
  if (system.injector() != nullptr) {
    row.crashes = system.injector()->stats().vehicle_crashes +
                  system.injector()->stats().broker_crashes;
  }
  return row;
}

const Row& find_row(const std::vector<Row>& rows, const std::string& mode,
                    double rate) {
  for (const Row& r : rows) {
    if (r.mode == mode && r.crash_rate == rate) return r;
  }
  return rows.front();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_dependability", argc, argv);
  g_report = &reporter;

  std::cout << "E22 (paper §III): task dependability under injected faults\n"
            << "50 parked workers, task every 0.5 s (mean work 30, deadline "
               "60 s),\n300 s per cell; every mode at a given intensity faces "
               "the identical\nfault schedule (same seed, dedicated plan RNG "
               "stream).\n\n";

  const std::vector<double> rates = {0.0, 0.02, 0.05};
  std::vector<Row> rows;
  for (const double rate : rates) {
    for (const Mode& mode : modes()) {
      rows.push_back(run_mode(mode, rate));
    }
  }

  Table table("E22: completion and overheads by mitigation mode",
              {"crash_rate", "mode", "crashes", "completed", "expired",
               "completion", "wasted", "redundant", "retries", "kills",
               "fp_kills", "det_lat_s"});
  for (const Row& r : rows) {
    const vcloud::CloudStats& s = r.stats;
    table.add_row({Table::num(r.crash_rate, 2), r.mode,
                   std::to_string(r.crashes), std::to_string(s.completed),
                   std::to_string(s.expired), Table::num(s.completion_rate(), 2),
                   Table::num(s.wasted_work, 1), Table::num(s.redundant_work, 1),
                   std::to_string(s.retries), std::to_string(s.crash_kills),
                   std::to_string(s.false_positive_kills),
                   Table::num(s.detection_latency.mean(), 2)});
  }
  emit_table(table);

  // Qualitative acceptance checks (printed, not asserted: this is a bench).
  const double high = rates.back();
  const Row& none_hi = find_row(rows, "none", high);
  const Row& detect_hi = find_row(rows, "detect", high);
  const Row& ckpt_hi = find_row(rows, "detect+ckpt", high);
  const Row& full_hi = find_row(rows, "full", high);
  const bool recovery_wins =
      full_hi.stats.completion_rate() > none_hi.stats.completion_rate();
  const bool ckpt_cheaper = ckpt_hi.stats.wasted_work <
                            detect_hi.stats.wasted_work;
  std::cout << "\n[" << (recovery_wins ? "PASS" : "FAIL")
            << "] full recovery completes more than no recovery at crash "
               "rate "
            << high << " (" << Table::num(full_hi.stats.completion_rate(), 2)
            << " vs " << Table::num(none_hi.stats.completion_rate(), 2)
            << ")\n";
  std::cout << "[" << (ckpt_cheaper ? "PASS" : "FAIL")
            << "] checkpointed recovery wastes less work than "
               "requeue-from-zero ("
            << Table::num(ckpt_hi.stats.wasted_work, 1) << " vs "
            << Table::num(detect_hi.stats.wasted_work, 1) << ")\n";
  std::cout << "\nShape vs paper §III: with no failure detection a crashed\n"
               "worker silently pins its task until the deadline reaper\n"
               "fires — completion collapses with fault intensity. Heartbeat\n"
               "detection restores most completion at the cost of detection\n"
               "latency and occasional false-positive kills under radio\n"
               "blackouts; checkpoints shrink the wasted-work bill; retry +\n"
               "speculation trade redundant compute for the last points of\n"
               "completion.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
