// E9 — File replication vs availability under churn (§III.A: "how many
// copies of a shared file should be distributed").
//
// Files are stored in a dynamic cloud over moving traffic; members come and
// go. Sweep the replica target and the maintenance policy, sample
// availability every 5 s for 4 minutes, and report availability alongside
// the copy overhead — the trade-off the paper poses.
//
// Runs through the experiment engine (exp::Campaign): --reps N --jobs J
// replicates every sweep cell over derived seeds and reports mean ± CI
// cells; --json emits the vcl-bench-v1 document. The default --reps 1
// reproduces the historical single-seed (2024) table byte-for-byte.
#include <iostream>

#include "cluster/moving_zone.h"
#include "core/scenario.h"
#include "crypto/drbg.h"
#include "exp/campaign.h"
#include "util/table.h"
#include "vcloud/cloud.h"
#include "vcloud/replication.h"

using namespace vcl;

namespace {

exp::RepReport run(std::size_t target, bool repair_enabled,
                   std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 60;
  cfg.seed = seed;
  core::Scenario scenario(cfg);
  scenario.start();
  scenario.run_for(5.0);

  cluster::MovingZone zones(scenario.network());
  zones.attach(1.0);
  zones.update();

  auto membership = vcloud::largest_cluster_membership(zones);
  vcloud::ReplicationConfig rc;
  rc.target_replicas = target;
  vcloud::ReplicationManager manager(membership, rc, scenario.fork_rng(9));

  // Store 40 files of 1 MB.
  crypto::Drbg payload_gen(seed);
  std::vector<FileId> files;
  for (int i = 0; i < 40; ++i) {
    files.push_back(manager.store(payload_gen.generate(1000)));
  }

  if (repair_enabled) {
    scenario.simulator().schedule_every(10.0, [&] { manager.refresh(); });
  }

  Ratio availability;
  Accumulator live(false);
  scenario.simulator().schedule_every(5.0, [&] {
    for (const FileId f : files) {
      availability.add(manager.available(f));
      live.add(static_cast<double>(manager.live_replicas(f)));
    }
  });
  scenario.run_for(240.0);

  exp::RepReport rep;
  rep.value("availability", availability.value());
  rep.value("live_replicas", live.mean());
  rep.value("repair_copies", static_cast<double>(manager.repair_copies()));
  rep.value("MB_copied", manager.bytes_copied_mb());
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_file_replication", argc, argv);

  std::cout << "E9: file availability vs replica target under cluster churn\n"
            << "40 files in the largest moving cluster, 240 s, sampled "
               "every 5 s\n\n";
  campaign.describe(std::cout);

  std::vector<std::vector<exp::Cell>> rows;
  for (const std::size_t target : {1UL, 2UL, 3UL, 5UL, 8UL}) {
    for (const bool repair : {false, true}) {
      const auto summary =
          campaign.replicate(2024, [target, repair](const exp::RepContext& ctx) {
            return run(target, repair, ctx.seed);
          });
      rows.push_back({exp::Cell(std::to_string(target)),
                      exp::Cell(repair ? "on" : "off"),
                      exp::Cell(summary.at("availability"), 3),
                      exp::Cell(summary.at("live_replicas"), 1),
                      exp::Cell(summary.at("repair_copies"), 0),
                      exp::Cell(summary.at("MB_copied"), 1)});
    }
  }
  campaign.emit("replication sweep",
                {"target_replicas", "repair", "availability", "live_replicas",
                 "repair_copies", "MB_copied"},
                rows);

  std::cout
      << "Shape vs §III.A: single copies die with their holder; each\n"
         "additional replica buys availability at linear storage/copy\n"
         "cost, and active repair keeps availability near 1.0 once the\n"
         "target covers typical per-interval churn (~3 here).\n";
  return campaign.finish();
}
