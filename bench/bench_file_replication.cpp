// E9 — File replication vs availability under churn (§III.A: "how many
// copies of a shared file should be distributed").
//
// Files are stored in a dynamic cloud over moving traffic; members come and
// go. Sweep the replica target and the maintenance policy, sample
// availability every 5 s for 4 minutes, and report availability alongside
// the copy overhead — the trade-off the paper poses.
#include <iostream>

#include "cluster/moving_zone.h"
#include "core/scenario.h"
#include "vcloud/cloud.h"
#include "crypto/drbg.h"
#include "vcloud/replication.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct ReplResult {
  double availability = 0;
  double live_replicas = 0;
  std::size_t repairs = 0;
  double mb_copied = 0;
};

ReplResult run(std::size_t target, bool repair_enabled, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 60;
  cfg.seed = seed;
  core::Scenario scenario(cfg);
  scenario.start();
  scenario.run_for(5.0);

  cluster::MovingZone zones(scenario.network());
  zones.attach(1.0);
  zones.update();

  auto membership = vcloud::largest_cluster_membership(zones);
  vcloud::ReplicationConfig rc;
  rc.target_replicas = target;
  vcloud::ReplicationManager manager(membership, rc, scenario.fork_rng(9));

  // Store 40 files of 1 MB.
  crypto::Drbg payload_gen(seed);
  std::vector<FileId> files;
  for (int i = 0; i < 40; ++i) {
    files.push_back(manager.store(payload_gen.generate(1000)));
  }

  if (repair_enabled) {
    scenario.simulator().schedule_every(10.0, [&] { manager.refresh(); });
  }

  Ratio availability;
  Accumulator live(false);
  scenario.simulator().schedule_every(5.0, [&] {
    for (const FileId f : files) {
      availability.add(manager.available(f));
      live.add(static_cast<double>(manager.live_replicas(f)));
    }
  });
  scenario.run_for(240.0);

  ReplResult r;
  r.availability = availability.value();
  r.live_replicas = live.mean();
  r.repairs = manager.repair_copies();
  r.mb_copied = manager.bytes_copied_mb();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_file_replication", argc, argv);
  g_report = &reporter;

  std::cout << "E9: file availability vs replica target under cluster churn\n"
            << "40 files in the largest moving cluster, 240 s, sampled "
               "every 5 s\n\n";

  Table table("replication sweep",
              {"target_replicas", "repair", "availability", "live_replicas",
               "repair_copies", "MB_copied"});
  for (const std::size_t target : {1UL, 2UL, 3UL, 5UL, 8UL}) {
    for (const bool repair : {false, true}) {
      const ReplResult r = run(target, repair, 2024);
      table.add_row({std::to_string(target), repair ? "on" : "off",
                     Table::num(r.availability, 3),
                     Table::num(r.live_replicas, 1),
                     std::to_string(r.repairs), Table::num(r.mb_copied, 1)});
    }
  }
  emit_table(table);

  std::cout
      << "Shape vs §III.A: single copies die with their holder; each\n"
         "additional replica buys availability at linear storage/copy\n"
         "cost, and active repair keeps availability near 1.0 once the\n"
         "target covers typical per-interval churn (~3 here).\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
