// E24 — adversarial chaos: §IV attack storms vs the revocation-aware
// admission defenses (DESIGN.md §13).
//
// A stationary parking-lot cloud in full mitigation mode serves a steady
// deadline-bearing task stream while a ChaosPlanner schedule drives the
// three §IV attack shapes at it: Sybil bursts inside radio blackouts,
// CRL-propagation races against members holding work, and replay floods of
// captured joins/acks past their freshness window. The SAME scenario seed
// is used for both defense settings at a given attack intensity, so the
// defended and wide-open cells face the identical attack schedule AND the
// identical workload; differences are attributable to the defense alone:
//
//   off   admission wide open (the vulnerable baseline): fabricated claims
//         become members, revocations evict nobody — a revoked identity
//         keeps its seat and its tasks forever on a parked fleet — and
//         every stale replay lands (ghost re-admissions, zombie
//         heartbeats that blind the failure detector);
//   on    membership refresh consults the RSU-side CRL view (Bloom fast
//         path), revoked members are evicted at first visibility with
//         their work re-queued, unverifiable claims are quarantined —
//         capacity degrades gracefully, membership stays clean — and the
//         freshness window kills the whole replay flood.
//
// Expected shape: the defended cells hold membership pollution at zero and
// reject every stale replay at any intensity, while completion stays at or
// near the undefended cells' — the defense costs quarantine capacity, not
// task throughput.
//
// Runs through the experiment engine: an exp::Sweep spans the attack
// intensity x defense grid and exp::Campaign replicates each cell
// (--reps N --jobs J). Stat cells are bit-identical for any --jobs split.
#include <iostream>

#include "core/system.h"
#include "exp/campaign.h"
#include "exp/sweep.h"
#include "fault/chaos.h"
#include "util/table.h"

using namespace vcl;

namespace {

constexpr SimTime kLoadWindow = 180.0;
constexpr SimTime kDrain = 60.0;
constexpr SimTime kSubmitPeriod = 0.5;

// The attack schedule is a pure function of (intensity, seed): storm rates
// scale together, and both defense cells at one intensity replay the same
// plan. The scaled rates ride in cfg.adversary (where validation sees
// them); this turns them into the planned schedule.
fault::FaultPlan make_attack_plan(const core::SystemConfig& cfg,
                                  std::uint64_t seed) {
  fault::ChaosConfig chaos;
  chaos.base.horizon = kLoadWindow;
  // A light benign background keeps the recovery stack honest: the defense
  // must coexist with ordinary crash handling, not replace it.
  chaos.base.vehicle_crash_rate = 0.01;
  // Sybil storms draw blackout centers from the base box; resolve it from
  // the road graph exactly like the system would at start().
  core::Scenario probe(cfg.scenario);
  const auto [lo, hi] = probe.road().bounding_box();
  chaos.base.blackout_lo = lo;
  chaos.base.blackout_hi = hi;
  chaos.base.blackout_radius = 400.0;
  chaos.storms.sybil_rate = cfg.adversary.sybil_rate;
  chaos.storms.sybil_count = cfg.adversary.sybil_count;
  chaos.storms.revoke_rate = cfg.adversary.revoke_rate;
  chaos.storms.replay_rate = cfg.adversary.replay_rate;
  chaos.storms.replay_window = cfg.adversary.freshness_window;
  // Every storm replay is minted stale: a working freshness gate rejects
  // the entire flood, an open door accepts it wholesale.
  chaos.storms.replay_age = cfg.adversary.freshness_window + 2.0;
  const fault::ChaosPlanner planner(chaos);
  return planner.plan(seed);
}

exp::RepReport run_cell(core::SystemConfig cfg, const std::string& out_dir) {
  cfg.fault_plan = make_attack_plan(cfg, cfg.scenario.seed);
  core::VehicularCloudSystem system(cfg);
  system.start();

  vcloud::WorkloadGenerator workload({30.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(77));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(kSubmitPeriod, [&] {
    if (sim.now() < kLoadWindow) {
      system.cloud().submit(workload.next(sim.now()));
    }
  });
  system.run_for(kLoadWindow + kDrain);

  if (!out_dir.empty() && system.telemetry() != nullptr) {
    obs::write_telemetry(*system.telemetry(), out_dir);
  }

  const vcloud::CloudStats& s = system.cloud().stats();
  const vcloud::AdmissionStats& a = system.admission()->stats();
  exp::RepReport rep;
  rep.value("completed", static_cast<double>(s.completed));
  rep.value("expired", static_cast<double>(s.expired));
  rep.value("completion", s.completion_rate());
  rep.value("sybil_claims", static_cast<double>(a.sybil_claims));
  rep.value("sybil_admitted", static_cast<double>(a.sybil_admitted));
  rep.value("quarantined", static_cast<double>(a.sybil_quarantined));
  rep.value("replays", static_cast<double>(a.replays_seen));
  rep.value("replays_ok", static_cast<double>(a.replays_accepted));
  rep.value("revoked", static_cast<double>(a.revocations));
  rep.value("evicted", static_cast<double>(a.revoked_evictions));
  // Parked fleets never depart: an unevicted revoked member keeps its seat
  // to the end of the run, so retention == revocations - evictions.
  rep.value("revoked_retained",
            static_cast<double>(a.revocations - a.revoked_evictions));
  rep.tail("task_lat").merge(s.latency_tail);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_adversary", argc, argv);

  std::cout << "E24 (DESIGN.md §13): §IV attack storms vs revocation-aware "
               "admission\n24 parked workers, one task every "
            << kSubmitPeriod << " s for " << kLoadWindow
            << " s, drained " << kDrain
            << " s; Sybil bursts\ninside blackouts, CRL-propagation races, "
               "stale replay floods. Both\ndefense cells at one intensity "
               "face the identical attack schedule and\nworkload (same "
               "seed, dedicated RNG streams).\n\n";
  campaign.describe(std::cout);

  exp::Sweep<core::SystemConfig> sweep;
  auto& attack_axis = sweep.axis("attack");
  for (const double i : {0.5, 1.0, 2.0}) {
    attack_axis.point(Table::num(i, 1), [i](core::SystemConfig& c) {
      c.adversary.sybil_rate = 0.02 * i;
      c.adversary.revoke_rate = 0.01 * i;
      c.adversary.replay_rate = 0.01 * i;
    });
  }
  auto& defense_axis = sweep.axis("defense");
  for (const bool defend : {false, true}) {
    defense_axis.point(defend ? "on" : "off",
                       [defend](core::SystemConfig& c) {
                         c.adversary.defend = defend;
                       });
  }

  std::map<std::string, std::map<std::string, exp::Summary>> by_cell;
  std::vector<std::vector<exp::Cell>> rows;
  for (const auto& cell : sweep.cells()) {
    const auto summary =
        campaign.replicate(1234, [&cell](const exp::RepContext& ctx) {
          core::SystemConfig cfg;
          cfg.scenario.environment = core::Environment::kParkingLot;
          cfg.scenario.vehicles = 24;
          cfg.scenario.vehicles_parked = true;
          cfg.architecture = core::CloudArchitecture::kStationary;
          cfg.stationary_radius = 5000.0;
          // Full mitigation (the chaos-episode fixture): the defense runs
          // on top of a working recovery stack, not instead of one.
          vcloud::DependabilityConfig& dep = cfg.cloud.dependability;
          dep.detector.enabled = true;
          dep.detector.missed_beats_to_kill = 6;
          dep.checkpoint.enabled = true;
          dep.checkpoint.period = 5.0;
          dep.retry.enabled = true;
          dep.speculation.enabled = true;
          dep.broker_resync_delay = 0.5;
          cfg.adversary.enabled = true;
          cfg.adversary.freshness_window = 4.0;
          // Shared by both defense cells at this intensity: identical
          // attack schedule and workload.
          cfg.scenario.seed = ctx.seed;
          if (!ctx.out_dir.empty()) {
            cfg.telemetry.tracing = true;
            cfg.telemetry.metrics = true;
          }
          return run_cell(cell.make(cfg), ctx.out_dir);
        });
    rows.push_back({exp::Cell(cell.labels[0]), exp::Cell(cell.labels[1]),
                    exp::Cell(summary.at("completed"), 0),
                    exp::Cell(summary.at("expired"), 0),
                    exp::Cell(summary.at("completion"), 3),
                    exp::Cell::tail(summary.at("task_lat"), 1),
                    exp::Cell(summary.at("sybil_claims"), 0),
                    exp::Cell(summary.at("sybil_admitted"), 0),
                    exp::Cell(summary.at("quarantined"), 0),
                    exp::Cell(summary.at("replays"), 0),
                    exp::Cell(summary.at("replays_ok"), 0),
                    exp::Cell(summary.at("revoked"), 0),
                    exp::Cell(summary.at("evicted"), 0),
                    exp::Cell(summary.at("revoked_retained"), 0)});
    by_cell[cell.label()] = summary;
  }
  campaign.emit("E24: completion and membership pollution by defense",
                {"attack", "defense", "completed", "expired", "completion",
                 "task_lat_s", "sybil_claims", "sybil_admitted",
                 "quarantined", "replays", "replays_ok", "revoked",
                 "evicted", "revoked_retained"},
                rows);

  // Qualitative acceptance checks (printed, not asserted: this is a bench).
  const std::string high = Table::num(2.0, 1);
  const auto& open_hi = by_cell.at(high + "/off");
  const auto& def_hi = by_cell.at(high + "/on");
  bool clean_all = true;
  for (const double i : {0.5, 1.0, 2.0}) {
    const auto& c = by_cell.at(Table::num(i, 1) + "/on");
    clean_all = clean_all && c.at("sybil_admitted").mean() == 0.0 &&
                c.at("replays_ok").mean() == 0.0 &&
                c.at("revoked_retained").mean() == 0.0;
  }
  const bool polluted_open = open_hi.at("sybil_admitted").mean() > 0.0 &&
                             open_hi.at("replays_ok").mean() > 0.0 &&
                             open_hi.at("revoked_retained").mean() > 0.0;
  const double open_completion = open_hi.at("completion").mean();
  const double def_completion = def_hi.at("completion").mean();
  std::cout << "\n[" << (clean_all ? "PASS" : "FAIL")
            << "] defended cells stay clean at every intensity: zero sybil "
               "admissions,\n       zero accepted replays, zero revoked "
               "members retained\n";
  std::cout << "[" << (polluted_open ? "PASS" : "FAIL")
            << "] the open door measurably pollutes at high intensity ("
            << Table::num(open_hi.at("sybil_admitted").mean(), 0)
            << " sybil members,\n       "
            << Table::num(open_hi.at("replays_ok").mean(), 0)
            << " replays landed, "
            << Table::num(open_hi.at("revoked_retained").mean(), 0)
            << " revoked members kept their seats)\n";
  std::cout << "[INFO] completion at high intensity: defended "
            << Table::num(def_completion, 3) << " vs open "
            << Table::num(open_completion, 3)
            << " — the defense spends quarantine\n       capacity and "
               "eviction requeues, not correctness\n";
  std::cout << "\nShape vs paper §IV: none of the three §IV attack classes "
               "needs to be\ntolerated — verification-or-quarantine, "
               "CRL-horizon eviction with work\nrequeue, and a strict "
               "freshness window each close their class outright,\nand the "
               "bill is capacity (quarantine pen, eviction churn), never\n"
               "membership integrity.\n";
  return campaign.finish();
}
