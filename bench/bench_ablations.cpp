// E16 — Ablations of the framework's own design choices (DESIGN.md §4).
//
//   A. Seed sensitivity: the E8 headline (handover vs drop) across seeds —
//      is the gap a seed artifact?
//   B. Broker hysteresis: election churn vs responsiveness.
//   C. Beacon period: staleness of neighbor tables vs routing delivery.
//   D. Neighbor-table TTL: evicting on one lost beacon vs holding entries.
#include <iostream>

#include "core/system.h"
#include "routing/greedy_geo.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct TaskRun {
  double completion = 0;
  double wasted = 0;
};

TaskRun run_tasks(bool handover, std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.scenario.vehicles = 60;
  cfg.scenario.seed = seed;
  cfg.cloud.handover.enabled = handover;
  core::VehicularCloudSystem system(cfg);
  system.start();
  vcloud::WorkloadGenerator workload({25.0, 2.0, 0.3, 120.0},
                                     system.scenario().fork_rng(5));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(2.5, [&] {
    system.cloud().submit(workload.next(sim.now()));
  });
  system.run_for(240.0);
  const auto& st = system.cloud().stats();
  return {st.submitted ? static_cast<double>(st.completed) / st.submitted : 0,
          st.wasted_work};
}

double run_delivery(SimTime beacon_period, SimTime neighbor_ttl,
                    std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 80;
  cfg.seed = seed;
  cfg.beacon_period = beacon_period;
  core::Scenario scenario(cfg);
  scenario.network().set_neighbor_ttl(neighbor_ttl);
  scenario.start();
  scenario.run_for(5.0);
  routing::GreedyGeo router(scenario.network());
  router.attach();
  scenario.network().refresh();
  Rng pick(seed ^ 0xf00d);
  scenario.simulator().schedule_every(0.5, [&] {
    std::vector<VehicleId> ids;
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      ids.push_back(v.id);
    }
    if (ids.size() < 2) return;
    const VehicleId src = pick.pick(ids);
    const VehicleId dst = pick.pick(ids);
    if (!(src == dst)) router.originate(src, dst);
  });
  scenario.run_for(40.0);
  return router.metrics().delivery_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_ablations", argc, argv);
  g_report = &reporter;

  std::cout << "E16: design-choice ablations\n\n";

  // A. Seed sensitivity of the E8 headline.
  {
    Table table("A: handover-vs-drop completion across 5 seeds",
                {"seed", "handover", "drop", "gap"});
    Accumulator gaps;
    for (const std::uint64_t seed : {11UL, 22UL, 33UL, 44UL, 55UL}) {
      const TaskRun on = run_tasks(true, seed);
      const TaskRun off = run_tasks(false, seed);
      gaps.add(on.completion - off.completion);
      table.add_row({std::to_string(seed), Table::num(on.completion, 3),
                     Table::num(off.completion, 3),
                     Table::num(on.completion - off.completion, 3)});
    }
    table.add_row({"mean±std", "", "",
                   Table::num(gaps.mean(), 3) + "±" +
                       Table::num(gaps.stddev(), 3)});
    emit_table(table);
  }

  // B. Broker hysteresis.
  {
    Table table("B: broker hysteresis vs election churn (120 s dynamic "
                "cloud)",
                {"hysteresis", "broker_changes", "completion"});
    for (const double h : {1.0, 1.25, 2.0, 4.0}) {
      core::SystemConfig cfg;
      cfg.scenario.vehicles = 60;
      cfg.scenario.seed = 7;
      core::VehicularCloudSystem system(cfg);
      // Note: BrokerElection lives inside the cloud; the config knob is the
      // BrokerConfig default. We rebuild the election by running a separate
      // cloud over the same membership with a custom broker config — the
      // broker is internal, so this ablation re-elects externally.
      system.start();
      vcloud::BrokerElection broker({120.0, h});
      std::size_t completions = 0;
      vcloud::WorkloadGenerator workload({10.0, 1.0, 0.2, 60.0},
                                         system.scenario().fork_rng(5));
      auto& sim = system.scenario().simulator();
      sim.schedule_every(2.0, [&] {
        system.cloud().submit(workload.next(sim.now()));
      });
      // External election over the cloud's live membership each second.
      sim.schedule_every(1.0, [&] {
        std::vector<vcloud::WorkerView> views;
        const auto region = system.cloud().region();
        for (const auto& [vid, v] :
             system.scenario().traffic().vehicles()) {
          vcloud::WorkerView w;
          w.id = v.id;
          w.profile = vcloud::profile_for(v.automation);
          w.dwell_seconds = vcloud::estimate_dwell(
              system.scenario().traffic(), v.id, region.center, region.radius,
              vcloud::DwellMode::kKinematic);
          views.push_back(w);
        }
        broker.elect(views);
      });
      system.run_for(120.0);
      completions = system.cloud().stats().completed;
      table.add_row({Table::num(h, 2), std::to_string(broker.changes()),
                     std::to_string(completions)});
    }
    emit_table(table);
  }

  // C. Beacon period.
  {
    Table table("C: beacon period vs routing delivery (greedy-geo)",
                {"beacon_period_s", "delivery"});
    for (const double period : {0.5, 1.0, 2.0, 4.0}) {
      table.add_row({Table::num(period, 1),
                     Table::num(run_delivery(period, 3.0, 9), 3)});
    }
    emit_table(table);
  }

  // D. Neighbor TTL.
  {
    Table table("D: neighbor-table TTL vs routing delivery (1 s beacons)",
                {"ttl_s", "delivery"});
    for (const double ttl : {1.0, 3.0, 6.0, 12.0}) {
      table.add_row(
          {Table::num(ttl, 1), Table::num(run_delivery(1.0, ttl, 9), 3)});
    }
    emit_table(table);
  }

  std::cout
      << "Reading: (A) the handover gap survives seed variation (~0.11 mean\n"
         "completion gap, std ~0.03); (B) hysteresis monotonically cuts\n"
         "broker churn at flat throughput — churn is pure cost here.\n"
         "(C/D) are a genuine trade-off the framework exposes: LONG\n"
         "neighbor memory (short period + long TTL) accumulates marginal,\n"
         "stale entries that tempt greedy forwarding into lossy max-\n"
         "progress hops, so *delivery* prefers fresh sparse tables — while\n"
         "cluster stability (E7's fixtures) prefers persistent tables that\n"
         "tolerate individual beacon loss. One neighbor table cannot serve\n"
         "both masters optimally; protocols should filter by link quality,\n"
         "not just recency.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
