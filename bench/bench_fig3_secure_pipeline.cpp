// E4 (Fig. 3) — End-to-end secure message pipeline latency.
//
// Fig. 3's verifier answers four questions per message (identity? access?
// action? trustworthiness?). This bench measures the modeled OBU latency of
// the full authenticate -> authorize -> trust-validate chain for each
// authentication protocol and policy complexity, and the budget-violation
// rate against the paper's "stringent time constraints".
//
// Runs through the experiment engine (exp::Campaign): one replication runs
// the whole protocol x policy grid against a freshly keyed DRBG; --reps N
// replicates it with independent key material and reports mean ±95% CI.
// The default --reps 1 reproduces the historical output byte-for-byte.
#include <array>
#include <iostream>

#include "core/pipeline.h"
#include "exp/campaign.h"
#include "util/table.h"

using namespace vcl;
using namespace vcl::core;

namespace {

access::Policy and_policy(int leaves) {
  std::string text = "a0";
  for (int i = 1; i < leaves; ++i) text += " & a" + std::to_string(i);
  return *access::Policy::parse(text);
}

trust::EventCluster consensus_cluster(int n) {
  trust::EventCluster c;
  for (int i = 0; i < n; ++i) {
    trust::Report r;
    r.positive = true;
    r.reporter_pos = {10, 0};
    c.reports.push_back(r);
  }
  return c;
}

// Flag metric cell: "yes"/"NO" while every replication agrees (which at
// --reps 1 is exactly the historical output), the agreeing fraction else.
exp::Cell yes_no(const exp::Summary& s) {
  if (s.mean() >= 1.0) return exp::Cell("yes");
  if (s.mean() <= 0.0) return exp::Cell("NO");
  exp::Cell cell(Table::num(s.mean(), 2));
  cell.stat = obs::CellStat{s.mean(), s.ci95(), s.n()};
  return cell;
}

constexpr std::array kProtocols = {AuthProtocolKind::kPseudonym,
                                   AuthProtocolKind::kGroup,
                                   AuthProtocolKind::kHybrid};
constexpr std::array kLeafCounts = {1, 4, 8};
constexpr std::array kBudgetsMs = {5.0, 10.0, 20.0, 50.0, 100.0};

// One replication: the full grid with one DRBG keying. Metric names are
// "<protocol>/<leaves>/<field>" and "budget/<ms>/<field>".
exp::RepReport run_grid(std::uint64_t seed) {
  exp::RepReport rep;

  auth::TrustedAuthority ta(1);
  ta.register_vehicle(VehicleId{1});
  auth::PseudonymAuth pseudo_signer(ta, VehicleId{1}, 8);
  auth::GroupManager manager(1, 2);
  manager.enroll(VehicleId{1});
  auth::GroupAuth group_signer(manager, VehicleId{1});
  auth::HybridAuth hybrid_signer(manager, VehicleId{1});
  access::AbeAuthority abe(3);
  crypto::Drbg drbg(seed);
  const crypto::Bytes owner_key = drbg.generate(32);
  const trust::MajorityVote validator;
  const trust::EventCluster cluster = consensus_cluster(6);

  for (const auto protocol : kProtocols) {
    for (const int leaves : kLeafCounts) {
      SecurePipeline pipeline({});
      const crypto::Bytes payload{1, 2, 3};
      crypto::OpCounts sign_ops;
      SecurePipeline::AuthInput auth_in;
      auth_in.protocol = protocol;
      auth_in.ta = &ta;
      auth_in.manager = &manager;
      auth_in.payload = payload;
      switch (protocol) {
        case AuthProtocolKind::kPseudonym:
          auth_in.tag = *pseudo_signer.sign(payload, 0.0, sign_ops);
          break;
        case AuthProtocolKind::kGroup:
          auth_in.tag = *group_signer.sign(payload, sign_ops);
          break;
        case AuthProtocolKind::kHybrid:
          auth_in.tag = *hybrid_signer.sign(payload, sign_ops);
          break;
      }

      const access::Policy policy = and_policy(leaves);
      access::AttributeSet attrs;
      for (int i = 0; i < leaves; ++i) attrs.add("a" + std::to_string(i));
      crypto::OpCounts seal_ops;
      access::StickyPackage pkg(abe, crypto::Bytes{7}, policy.clone(),
                                owner_key, 1, drbg, seal_ops);
      const access::AbeUserKey key = abe.keygen(attrs);
      SecurePipeline::AuthzInput authz{&pkg, &key, attrs, 42};
      SecurePipeline::TrustInput trust_in{&validator, &cluster};

      const PipelineResult result =
          pipeline.process(auth_in, authz, trust_in, 0.0);
      const std::string prefix =
          std::string(to_string(protocol)) + "/" + std::to_string(leaves);
      rep.value(prefix + "/latency_ms", result.latency / kMilliseconds);
      rep.value(prefix + "/accepted", result.accepted ? 1.0 : 0.0);
      rep.value(prefix + "/within", result.within_budget ? 1.0 : 0.0);
    }
  }

  // Budget-violation sweep: how tight can the deadline be?
  for (const double budget_ms : kBudgetsMs) {
    PipelineConfig cfg;
    cfg.budget = budget_ms * kMilliseconds;
    SecurePipeline pipeline(cfg);
    const access::Policy policy = and_policy(4);
    access::AttributeSet attrs{"a0", "a1", "a2", "a3"};
    const access::AbeUserKey key = abe.keygen(attrs);
    int violations = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const crypto::Bytes payload{static_cast<std::uint8_t>(i)};
      crypto::OpCounts ops;
      SecurePipeline::AuthInput auth_in;
      auth_in.protocol = AuthProtocolKind::kPseudonym;
      auth_in.ta = &ta;
      auth_in.payload = payload;
      auth_in.tag = *pseudo_signer.sign(payload, i * 0.1, ops);
      crypto::OpCounts seal_ops;
      access::StickyPackage pkg(abe, crypto::Bytes{1}, policy.clone(),
                                owner_key, 2, drbg, seal_ops);
      SecurePipeline::AuthzInput authz{&pkg, &key, attrs, 42};
      SecurePipeline::TrustInput trust_in{&validator, &cluster};
      const PipelineResult r = pipeline.process(auth_in, authz, trust_in, 0.0);
      violations += r.within_budget ? 0 : 1;
    }
    const std::string prefix = "budget/" + Table::num(budget_ms, 0);
    rep.value(prefix + "/violations", violations);
    rep.value(prefix + "/rate", static_cast<double>(violations) / n);
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_fig3_secure_pipeline", argc, argv);

  std::cout << "E4 (Fig. 3): secure pipeline latency "
               "(authenticate -> authorize -> trust)\n\n";
  campaign.describe(std::cout);

  // Historical base seed 4: the DRBG keying the owner key and packages.
  const auto summary = campaign.replicate(4, [](const exp::RepContext& ctx) {
    return run_grid(ctx.seed);
  });

  std::vector<std::vector<exp::Cell>> rows;
  for (const auto protocol : kProtocols) {
    for (const int leaves : kLeafCounts) {
      const std::string prefix =
          std::string(to_string(protocol)) + "/" + std::to_string(leaves);
      rows.push_back({exp::Cell(to_string(protocol)),
                      exp::Cell(std::to_string(leaves)),
                      exp::Cell(summary.at(prefix + "/latency_ms"), 2),
                      yes_no(summary.at(prefix + "/accepted")),
                      yes_no(summary.at(prefix + "/within"))});
    }
  }
  campaign.emit("pipeline latency by protocol and policy size",
                {"protocol", "policy_leaves", "latency_ms", "accepted",
                 "within_100ms"},
                rows);

  std::vector<std::vector<exp::Cell>> budget_rows;
  for (const double budget_ms : kBudgetsMs) {
    const std::string prefix = "budget/" + Table::num(budget_ms, 0);
    budget_rows.push_back({exp::Cell(Table::num(budget_ms, 0)),
                           exp::Cell(summary.at(prefix + "/violations"), 0),
                           exp::Cell(summary.at(prefix + "/rate"), 2)});
  }
  campaign.emit("budget violation rate vs deadline (pseudonym, 4-leaf "
                "policy, 200 messages)",
                {"budget_ms", "violations", "violation_rate"}, budget_rows);

  std::cout << "Shape: authentication dominates for small policies; ABE\n"
               "authorization dominates beyond ~4 leaves. Budgets below the\n"
               "sum of one verify chain are infeasible on OBU-class\n"
               "hardware — quantifying §III.C's warning.\n";
  return campaign.finish();
}
