// E4 (Fig. 3) — End-to-end secure message pipeline latency.
//
// Fig. 3's verifier answers four questions per message (identity? access?
// action? trustworthiness?). This bench measures the modeled OBU latency of
// the full authenticate -> authorize -> trust-validate chain for each
// authentication protocol and policy complexity, and the budget-violation
// rate against the paper's "stringent time constraints".
#include <iostream>

#include "core/pipeline.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace
using namespace vcl::core;

namespace {

access::Policy and_policy(int leaves) {
  std::string text = "a0";
  for (int i = 1; i < leaves; ++i) text += " & a" + std::to_string(i);
  return *access::Policy::parse(text);
}

trust::EventCluster consensus_cluster(int n) {
  trust::EventCluster c;
  for (int i = 0; i < n; ++i) {
    trust::Report r;
    r.positive = true;
    r.reporter_pos = {10, 0};
    c.reports.push_back(r);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig3_secure_pipeline", argc, argv);
  g_report = &reporter;

  std::cout << "E4 (Fig. 3): secure pipeline latency "
               "(authenticate -> authorize -> trust)\n\n";

  auth::TrustedAuthority ta(1);
  ta.register_vehicle(VehicleId{1});
  auth::PseudonymAuth pseudo_signer(ta, VehicleId{1}, 8);
  auth::GroupManager manager(1, 2);
  manager.enroll(VehicleId{1});
  auth::GroupAuth group_signer(manager, VehicleId{1});
  auth::HybridAuth hybrid_signer(manager, VehicleId{1});
  access::AbeAuthority abe(3);
  crypto::Drbg drbg(std::uint64_t{4});
  const crypto::Bytes owner_key = drbg.generate(32);
  const trust::MajorityVote validator;
  const trust::EventCluster cluster = consensus_cluster(6);

  Table table("pipeline latency by protocol and policy size",
              {"protocol", "policy_leaves", "latency_ms", "accepted",
               "within_100ms"});

  for (const auto protocol :
       {AuthProtocolKind::kPseudonym, AuthProtocolKind::kGroup,
        AuthProtocolKind::kHybrid}) {
    for (const int leaves : {1, 4, 8}) {
      SecurePipeline pipeline({});
      const crypto::Bytes payload{1, 2, 3};
      crypto::OpCounts sign_ops;
      SecurePipeline::AuthInput auth_in;
      auth_in.protocol = protocol;
      auth_in.ta = &ta;
      auth_in.manager = &manager;
      auth_in.payload = payload;
      switch (protocol) {
        case AuthProtocolKind::kPseudonym:
          auth_in.tag = *pseudo_signer.sign(payload, 0.0, sign_ops);
          break;
        case AuthProtocolKind::kGroup:
          auth_in.tag = *group_signer.sign(payload, sign_ops);
          break;
        case AuthProtocolKind::kHybrid:
          auth_in.tag = *hybrid_signer.sign(payload, sign_ops);
          break;
      }

      const access::Policy policy = and_policy(leaves);
      access::AttributeSet attrs;
      for (int i = 0; i < leaves; ++i) attrs.add("a" + std::to_string(i));
      crypto::OpCounts seal_ops;
      access::StickyPackage pkg(abe, crypto::Bytes{7}, policy.clone(),
                                owner_key, 1, drbg, seal_ops);
      const access::AbeUserKey key = abe.keygen(attrs);
      SecurePipeline::AuthzInput authz{&pkg, &key, attrs, 42};
      SecurePipeline::TrustInput trust_in{&validator, &cluster};

      const PipelineResult result =
          pipeline.process(auth_in, authz, trust_in, 0.0);
      table.add_row({to_string(protocol), std::to_string(leaves),
                     Table::num(result.latency / kMilliseconds, 2),
                     result.accepted ? "yes" : "NO",
                     result.within_budget ? "yes" : "NO"});
    }
  }
  emit_table(table);

  // Budget-violation sweep: how tight can the deadline be?
  Table budget_table("budget violation rate vs deadline (pseudonym, 4-leaf "
                     "policy, 200 messages)",
                     {"budget_ms", "violations", "violation_rate"});
  for (const double budget_ms : {5.0, 10.0, 20.0, 50.0, 100.0}) {
    PipelineConfig cfg;
    cfg.budget = budget_ms * kMilliseconds;
    SecurePipeline pipeline(cfg);
    const access::Policy policy = and_policy(4);
    access::AttributeSet attrs{"a0", "a1", "a2", "a3"};
    const access::AbeUserKey key = abe.keygen(attrs);
    int violations = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const crypto::Bytes payload{static_cast<std::uint8_t>(i)};
      crypto::OpCounts ops;
      SecurePipeline::AuthInput auth_in;
      auth_in.protocol = AuthProtocolKind::kPseudonym;
      auth_in.ta = &ta;
      auth_in.payload = payload;
      auth_in.tag = *pseudo_signer.sign(payload, i * 0.1, ops);
      crypto::OpCounts seal_ops;
      access::StickyPackage pkg(abe, crypto::Bytes{1}, policy.clone(),
                                owner_key, 2, drbg, seal_ops);
      SecurePipeline::AuthzInput authz{&pkg, &key, attrs, 42};
      SecurePipeline::TrustInput trust_in{&validator, &cluster};
      const PipelineResult r = pipeline.process(auth_in, authz, trust_in, 0.0);
      violations += r.within_budget ? 0 : 1;
    }
    budget_table.add_row({Table::num(budget_ms, 0), std::to_string(violations),
                          Table::num(static_cast<double>(violations) / n, 2)});
  }
  emit_table(budget_table);

  std::cout << "Shape: authentication dominates for small policies; ABE\n"
               "authorization dominates beyond ~4 leaves. Budgets below the\n"
               "sum of one verify chain are infeasible on OBU-class\n"
               "hardware — quantifying §III.C's warning.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
