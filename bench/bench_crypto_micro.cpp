// E14 — Crypto substrate microbenchmarks (google-benchmark).
//
// Measures the toy-group primitives' real wall-clock costs. These are NOT
// the latencies used by the in-sim experiments (the CostModel charges
// production OBU-class figures, see crypto/cost_model.h); this bench exists
// to document the gap and to catch performance regressions in the substrate
// itself.
//
// Unlike the sim benches this one runs under google-benchmark, but it still
// speaks the shared `--json <path>` vcl-bench-v1 contract: a custom main
// captures every run off the console reporter and feeds one table
// (benchmark / real_ns / cpu_ns) through obs::BenchReporter, so
// scripts/collect_bench.sh validates it like any other bench.
//
// Each benchmark is repeated `--reps N` times (default 5; 1 disables) via
// google-benchmark's own repetition machinery, and the real_ns/cpu_ns cells
// carry cross-repetition {mean, ci95, n} annotations — the same CellStat
// form the experiment engine emits — so scripts/bench_diff.py can apply its
// CI-overlap rule to these machine-dependent wall-clock numbers instead of
// the bench being excluded with --skip-bench.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "access/abe.h"
#include "crypto/elgamal.h"
#include "crypto/merkle.h"
#include "crypto/schnorr.h"
#include "crypto/shamir.h"
#include "obs/bench_output.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace vcl;
using namespace vcl::crypto;

void BM_Sha256_64B(benchmark::State& state) {
  Drbg drbg(std::uint64_t{1});
  const Bytes data = drbg.generate(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  Drbg drbg(std::uint64_t{2});
  const Bytes data = drbg.generate(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_4KiB);

void BM_HmacSha256(benchmark::State& state) {
  Drbg drbg(std::uint64_t{3});
  const Bytes key = drbg.generate(32);
  const Bytes msg = drbg.generate(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_SchnorrSign(benchmark::State& state) {
  Drbg drbg(std::uint64_t{4});
  const Schnorr schnorr(default_group());
  const auto kp = schnorr.keygen(drbg);
  const Bytes msg = drbg.generate(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr.sign(kp.secret, msg, drbg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Drbg drbg(std::uint64_t{5});
  const Schnorr schnorr(default_group());
  const auto kp = schnorr.keygen(drbg);
  const Bytes msg = drbg.generate(128);
  const auto sig = schnorr.sign(kp.secret, msg, drbg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr.verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ElGamalSeal_1KiB(benchmark::State& state) {
  Drbg drbg(std::uint64_t{6});
  const auto& g = default_group();
  const ElGamal eg(g);
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  const Bytes plain = drbg.generate(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg.seal(pub, plain, drbg));
  }
}
BENCHMARK(BM_ElGamalSeal_1KiB);

void BM_ElGamalOpen_1KiB(benchmark::State& state) {
  Drbg drbg(std::uint64_t{7});
  const auto& g = default_group();
  const ElGamal eg(g);
  const std::uint64_t secret = drbg.next_scalar(g.q());
  const std::uint64_t pub = g.pow_g(secret);
  const auto ct = eg.seal(pub, drbg.generate(1024), drbg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg.open(secret, ct));
  }
}
BENCHMARK(BM_ElGamalOpen_1KiB);

void BM_ShamirSplit(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Drbg drbg(std::uint64_t{8});
  const Shamir shamir(default_group().q());
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir.split(12345, k, 2 * k, drbg));
  }
}
BENCHMARK(BM_ShamirSplit)->Arg(2)->Arg(5)->Arg(10);

void BM_ShamirReconstruct(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Drbg drbg(std::uint64_t{9});
  const Shamir shamir(default_group().q());
  auto shares = shamir.split(12345, k, k, drbg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir.reconstruct(shares));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(2)->Arg(5)->Arg(10);

access::Policy wide_policy(int leaves) {
  std::string text = "a0";
  for (int i = 1; i < leaves; ++i) text += " & a" + std::to_string(i);
  return *access::Policy::parse(text);
}

void BM_AbeEncrypt(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  access::AbeAuthority authority(1);
  Drbg drbg(std::uint64_t{10});
  OpCounts ops;
  const auto policy = wide_policy(leaves);
  const std::uint64_t m = default_group().pow_g(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.encrypt(m, policy, drbg, ops));
  }
}
BENCHMARK(BM_AbeEncrypt)->Arg(1)->Arg(4)->Arg(16);

void BM_AbeDecrypt(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  access::AbeAuthority authority(1);
  Drbg drbg(std::uint64_t{11});
  OpCounts ops;
  const auto policy = wide_policy(leaves);
  access::AttributeSet attrs;
  for (int i = 0; i < leaves; ++i) attrs.add("a" + std::to_string(i));
  const auto key = authority.keygen(attrs);
  const std::uint64_t m = default_group().pow_g(7);
  const auto ct = authority.encrypt(m, policy, drbg, ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(access::AbeAuthority::decrypt(ct, key, attrs, ops));
  }
}
BENCHMARK(BM_AbeDecrypt)->Arg(1)->Arg(4)->Arg(16);

void BM_MerkleBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Drbg drbg(std::uint64_t{12});
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < n; ++i) payloads.push_back(drbg.generate(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::from_payloads(payloads));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(256);

void BM_MerkleProveVerify(benchmark::State& state) {
  Drbg drbg(std::uint64_t{13});
  std::vector<Bytes> payloads;
  for (int i = 0; i < 256; ++i) payloads.push_back(drbg.generate(64));
  const MerkleTree tree = MerkleTree::from_payloads(payloads);
  const Digest leaf = Sha256::hash(payloads[100]);
  for (auto _ : state) {
    const auto proof = tree.prove(100);
    benchmark::DoNotOptimize(MerkleTree::verify(tree.root(), leaf, proof));
  }
}
BENCHMARK(BM_MerkleProveVerify);

void BM_GroupDerivation(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrGroup::derive(seed++));
  }
}
BENCHMARK(BM_GroupDerivation);

// Captures each finished run while still printing the usual console table.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;

  void ReportRuns(const std::vector<Run>& reports) override {
    runs.insert(runs.end(), reports.begin(), reports.end());
    ConsoleReporter::ReportRuns(reports);
  }
};

// One benchmark's repetition scatter, keyed by display name in first-seen
// order. Accumulators retain no samples: only mean/ci95 are reported.
struct RepStats {
  std::string name;
  vcl::Accumulator real_ns{/*keep_samples=*/false};
  vcl::Accumulator cpu_ns{/*keep_samples=*/false};
};

}  // namespace

int main(int argc, char** argv) {
  vcl::obs::BenchReporter reporter("bench_crypto_micro", argc, argv);

  // Repetitions: scan our own `--reps N` flag, then hand google-benchmark a
  // patched argv with --benchmark_repetitions so its machinery does the
  // repeating. --reps 1 keeps the old single-run behaviour (plain cells).
  int reps = 5;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--reps") reps = std::atoi(argv[i + 1]);
  }
  if (reps < 1) reps = 1;
  std::vector<char*> patched(argv, argv + argc);
  std::string reps_flag = "--benchmark_repetitions=" + std::to_string(reps);
  patched.push_back(reps_flag.data());
  int patched_argc = static_cast<int>(patched.size());
  // benchmark::Initialize consumes only --benchmark_* flags; ours (--json,
  // --reps) pass through, so ReportUnrecognizedArguments is skipped.
  benchmark::Initialize(&patched_argc, patched.data());

  CapturingReporter console;
  benchmark::RunSpecifiedBenchmarks(&console);

  // Fold per-repetition runs (RT_Iteration) into one row per benchmark;
  // google-benchmark's own aggregate rows (_mean/_stddev...) are dropped in
  // favour of the house CellStat form.
  std::vector<RepStats> folded;
  for (const auto& run : console.runs) {
    if (run.error_occurred) continue;
    if (run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) {
      continue;
    }
    const std::string name = run.benchmark_name();
    RepStats* slot = nullptr;
    for (auto& s : folded) {
      if (s.name == name) slot = &s;
    }
    if (slot == nullptr) {
      folded.emplace_back();
      slot = &folded.back();
      slot->name = name;
    }
    slot->real_ns.add(run.GetAdjustedRealTime());
    slot->cpu_ns.add(run.GetAdjustedCPUTime());
  }

  // Iteration counts are deliberately NOT a column: google-benchmark tunes
  // them per run, so they would read as spurious diffs downstream.
  vcl::Table table("E14: crypto substrate micro timings (this machine)",
                   {"benchmark", "real_ns", "cpu_ns"});
  vcl::obs::TableStats stats;
  for (const auto& s : folded) {
    table.add_row({s.name, vcl::Table::num(s.real_ns.mean(), 1),
                   vcl::Table::num(s.cpu_ns.mean(), 1)});
    std::vector<std::optional<vcl::obs::CellStat>> row(3);
    if (s.real_ns.count() > 1) {
      row[1] = vcl::obs::CellStat{s.real_ns.mean(),
                                  vcl::ci95_half_width(s.real_ns),
                                  s.real_ns.count()};
      row[2] = vcl::obs::CellStat{s.cpu_ns.mean(),
                                  vcl::ci95_half_width(s.cpu_ns),
                                  s.cpu_ns.count()};
    }
    stats.push_back(std::move(row));
  }
  reporter.add(table, std::move(stats));
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
