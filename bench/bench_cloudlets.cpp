// E19 — Hierarchical roadside cloudlets (Yu et al. [45] in the survey).
//
// Vehicles prefer the transient cloudlet at their current RSU and fall back
// to the central cloud over the WAN when uncovered. Sweep RSU density:
// coverage determines the local/central offload mix and the latency each
// request sees; roaming handoffs grow with mobility — the maintenance cost
// "customizing new transient clouds while moving" that the survey flags.
#include <iostream>

#include "core/scenario.h"
#include "obs/bench_output.h"
#include "util/table.h"
#include "vcloud/cloudlet.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_cloudlets", argc, argv);
  g_report = &reporter;

  std::cout << "E19: roadside cloudlets vs central cloud\n"
            << "80 vehicles, 240 s, one task per vehicle every ~6 s\n\n";

  Table table("cloudlet grid sweep",
              {"rsu_spacing_m", "rsus", "local_tasks", "central_tasks",
               "local_latency_s", "central_latency_s", "handoffs", "re-attaches"});
  for (const double spacing : {400.0, 700.0, 1100.0}) {
    core::ScenarioConfig cfg;
    cfg.vehicles = 80;
    cfg.seed = 23;
    cfg.rsu_spacing = spacing;
    cfg.rsu_range = 320.0;
    core::Scenario scenario(cfg);
    scenario.start();

    vcloud::CloudletGrid grid(scenario.network(), vcloud::CloudletConfig{},
                              scenario.fork_rng(9));
    grid.attach();

    vcloud::WorkloadGenerator workload({6.0, 0.5, 0.1, 0.0},
                                       scenario.fork_rng(10));
    std::size_t local = 0;
    Rng pick(11);
    scenario.simulator().schedule_every(0.5, [&] {
      std::vector<VehicleId> ids;
      for (const auto& [vid, v] : scenario.traffic().vehicles()) {
        ids.push_back(v.id);
      }
      if (ids.empty()) return;
      const auto result = grid.submit(
          pick.pick(ids), workload.next(scenario.simulator().now()));
      local += result.to_central ? 0 : 1;
    });
    scenario.run_for(240.0);

    Accumulator local_latency;
    for (const auto& c : grid.cloudlets()) {
      if (c->stats().latency.count() > 0) {
        local_latency.add(c->stats().latency.mean());
      }
    }
    table.add_row({Table::num(spacing, 0),
                   std::to_string(scenario.network().rsus().count()),
                   std::to_string(local),
                   std::to_string(grid.central().submitted),
                   Table::num(local_latency.mean(), 2),
                   Table::num(grid.central().latency.mean(), 2),
                   std::to_string(grid.handoffs()),
                   std::to_string(grid.attaches())});
  }
  emit_table(table);

  std::cout
      << "Shape vs Yu et al. [45]: dense RSUs keep tasks local and fast;\n"
         "as coverage thins the central share grows and every request pays\n"
         "the WAN round trip; roaming handoffs track how often moving\n"
         "vehicles must re-select their cloudlet — overlapping coverage\n"
         "(400 m) turns coverage-gap re-attaches into seamless handoffs.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
