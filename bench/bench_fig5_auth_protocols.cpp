// E3 (Fig. 5) — Pseudonym vs group vs hybrid authentication.
//
// Reproduces Fig. 5's qualitative comparison quantitatively:
//   * message authentication overhead: modeled OBU latency (CostModel) and
//     wire bytes per message;
//   * pseudonym pain: CRL check cost growth with the revocation history
//     (and the Bloom filter's mitigation);
//   * privacy: identifier linkability, anonymity-set size and tracking-
//     adversary success over a simulated drive;
//   * infrastructure reliance: authority contacts per 1000 messages.
//
// Paper claims to match: pseudonym = high per-message overhead, privacy not
// fully preserved; group = cheap-ish messages but coordinator knows
// identities and it leans on a manager; hybrid = middle ground without CRL.
//
// Runs through the experiment engine (exp::Campaign): --reps N replicates
// each protocol's simulated drive with independent seeds (--jobs J in
// parallel) and reports mean ±95% CI; the default --reps 1 reproduces the
// historical single-seed output byte-for-byte.
#include <chrono>
#include <iostream>

#include "attack/tracker.h"
#include "auth/group_auth.h"
#include "auth/hybrid_auth.h"
#include "auth/privacy_metrics.h"
#include "core/scenario.h"
#include "exp/campaign.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Simulated drive: `n_vehicles` vehicles emit a signed beacon every second
// for `duration` seconds; an eavesdropper logs what it sees on the wire.
template <typename SignFn, typename IdFn>
exp::RepReport run_protocol(core::Scenario& scenario, SignFn sign,
                            IdFn visible_id,
                            std::function<double()> ta_contacts) {
  crypto::OpCounts sign_ops;
  crypto::OpCounts verify_ops;
  std::vector<auth::AirObservation> observations;
  std::size_t wire_bytes = 0;

  auto& traffic = scenario.traffic();
  std::vector<VehicleId> ids;
  for (const auto& [vid, v] : traffic.vehicles()) ids.push_back(v.id);
  std::sort(ids.begin(), ids.end());

  const double duration = 60.0;
  std::size_t emitted = 0;
  for (double t = 0; t < duration; t += 1.0) {
    scenario.run_for(1.0);
    for (const VehicleId v : ids) {
      const mobility::VehicleState* s = traffic.find(v);
      if (s == nullptr) continue;
      const std::size_t wire = sign(v, t, sign_ops, verify_ops);
      if (wire == 0) continue;
      wire_bytes = wire;
      ++emitted;
      observations.push_back(
          auth::AirObservation{t, s->pos, visible_id(v, t), v});
    }
  }

  const crypto::CostModel costs;
  exp::RepReport rep;
  rep.value("sign_ms", costs.total(sign_ops) / std::max<double>(1, emitted) /
                           kMilliseconds);
  rep.value("verify_ms", costs.total(verify_ops) /
                             std::max<double>(1, emitted) / kMilliseconds);
  rep.value("wire_bytes", static_cast<double>(wire_bytes));
  rep.value("linkability", auth::id_linkability(observations));
  rep.value("anonymity", auth::mean_anonymity_set(observations, ids.size()));
  const attack::TrackingAdversary adversary;
  rep.value("tracking_recall", adversary.analyze(observations).link_recall);
  rep.value("ta_contacts_per_1k",
            ta_contacts() / (static_cast<double>(emitted) / 1000.0));
  return rep;
}

exp::RepReport run_pseudonym(const core::ScenarioConfig& sc) {
  core::Scenario scenario(sc);
  scenario.start();
  auth::TrustedAuthority ta(1);
  std::unordered_map<std::uint64_t, std::unique_ptr<auth::PseudonymAuth>>
      signers;
  double ta_contacts = 0;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    ta.register_vehicle(v.id);
    // Pool of 8 certificates, 10 s rotation.
    signers[vid] = std::make_unique<auth::PseudonymAuth>(ta, v.id, 8, 10.0);
    ta_contacts += 1;  // pool issuance is one TA round-trip
  }
  return run_protocol(
      scenario,
      [&](VehicleId v, double t, crypto::OpCounts& so,
          crypto::OpCounts& vo) -> std::size_t {
        auto it = signers.find(v.value());
        if (it == signers.end()) return 0;
        const crypto::Bytes payload{1, 2, 3, 4};
        const auto tag = it->second->sign(payload, t, so);
        if (!tag) return 0;
        const auto outcome = auth::PseudonymAuth::verify(ta, payload, *tag);
        vo += outcome.ops;
        return tag->wire_bytes;
      },
      [&](VehicleId v, double) -> std::uint64_t {
        auto it = signers.find(v.value());
        return it == signers.end() ? 0 : it->second->current_pseudo_id();
      },
      [ta_contacts] { return ta_contacts; });
}

exp::RepReport run_group(const core::ScenarioConfig& sc) {
  core::Scenario scenario(sc);
  scenario.start();
  auth::GroupManager manager(1, 2);
  std::unordered_map<std::uint64_t, std::unique_ptr<auth::GroupAuth>> signers;
  double ta_contacts = 0;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    manager.enroll(v.id);
    ta_contacts += 1;  // one enrollment with the manager
    signers[vid] = std::make_unique<auth::GroupAuth>(manager, v.id);
  }
  return run_protocol(
      scenario,
      [&](VehicleId v, double, crypto::OpCounts& so,
          crypto::OpCounts& vo) -> std::size_t {
        auto it = signers.find(v.value());
        const crypto::Bytes payload{1, 2, 3, 4};
        const auto tag = it->second->sign(payload, so);
        if (!tag) return 0;
        const auto outcome = auth::GroupAuth::verify(manager, payload, *tag);
        vo += outcome.ops;
        return tag->wire_bytes;
      },
      // Group tags expose no per-sender identifier.
      [](VehicleId, double) -> std::uint64_t { return 0; },
      [ta_contacts] { return ta_contacts; });
}

exp::RepReport run_hybrid(const core::ScenarioConfig& sc) {
  core::Scenario scenario(sc);
  scenario.start();
  auth::GroupManager manager(2, 3);
  std::unordered_map<std::uint64_t, std::unique_ptr<auth::HybridAuth>>
      signers;
  double ta_contacts = 0;
  for (const auto& [vid, v] : scenario.traffic().vehicles()) {
    manager.enroll(v.id);
    ta_contacts += 1;
    signers[vid] = std::make_unique<auth::HybridAuth>(manager, v.id);
  }
  // Rotate hybrid pseudonyms every 10 s (a manager certification each).
  double rotations = 0;
  scenario.simulator().schedule_every(10.0, [&] {
    crypto::OpCounts ops;
    for (auto& [vid, s] : signers) {
      if (s->rotate(ops)) rotations += 1;
    }
  });
  return run_protocol(
      scenario,
      [&](VehicleId v, double, crypto::OpCounts& so,
          crypto::OpCounts& vo) -> std::size_t {
        auto it = signers.find(v.value());
        const crypto::Bytes payload{1, 2, 3, 4};
        const auto tag = it->second->sign(payload, so);
        if (!tag) return 0;
        const auto outcome = auth::HybridAuth::verify(manager, payload, *tag);
        vo += outcome.ops;
        return tag->wire_bytes;
      },
      [&](VehicleId v, double) -> std::uint64_t {
        return signers[v.value()]->current_pub();
      },
      // Evaluated after the drive: counts per-epoch re-certifications.
      [&] { return ta_contacts + rotations; });
}

// One replication of the CRL-growth measurement (timing is wall-clock, so
// replication gives it a genuine scatter estimate).
exp::RepReport run_crl() {
  exp::RepReport rep;
  for (const std::size_t revoked : {0UL, 1000UL, 10000UL, 100000UL}) {
    auth::Crl crl(std::max<std::size_t>(revoked, 16));
    for (std::size_t i = 0; i < revoked; ++i) crl.revoke(i * 2 + 1);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    const std::size_t lookups = 100000;
    for (std::size_t i = 0; i < lookups; ++i) {
      hits += crl.is_revoked(i * 2) ? 1 : 0;  // all misses
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(lookups);
    const std::string prefix = "crl/" + std::to_string(revoked);
    rep.value(prefix + "/bloom_checks",
              static_cast<double>(crl.bloom_checks()));
    rep.value(prefix + "/exact_probes",
              static_cast<double>(crl.exact_probes()));
    rep.value(prefix + "/lookup_us", us);
    (void)hits;
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_fig5_auth_protocols", argc, argv);

  std::cout << "E3 (Fig. 5): authentication protocol comparison\n"
            << "60 s drive, 40 vehicles, 1 Hz signed beacons; OBU-class "
               "costs via CostModel\n\n";
  campaign.describe(std::cout);

  core::ScenarioConfig sc;
  sc.vehicles = 40;
  sc.seed = 11;

  std::vector<std::vector<exp::Cell>> rows;
  auto run = [&](const std::string& name, auto protocol_fn) {
    const auto summary =
        campaign.replicate(sc.seed, [&sc, protocol_fn](
                                        const exp::RepContext& ctx) {
          core::ScenarioConfig cfg = sc;
          cfg.seed = ctx.seed;
          return protocol_fn(cfg);
        });
    rows.push_back({exp::Cell(name), exp::Cell(summary.at("sign_ms"), 2),
                    exp::Cell(summary.at("verify_ms"), 2),
                    exp::Cell(summary.at("wire_bytes"), 0),
                    exp::Cell(summary.at("linkability"), 3),
                    exp::Cell(summary.at("anonymity"), 1),
                    exp::Cell(summary.at("tracking_recall"), 3),
                    exp::Cell(summary.at("ta_contacts_per_1k"), 2)});
  };
  run("pseudonym", [](const core::ScenarioConfig& c) {
    return run_pseudonym(c);
  });
  run("group", [](const core::ScenarioConfig& c) { return run_group(c); });
  run("hybrid", [](const core::ScenarioConfig& c) { return run_hybrid(c); });

  campaign.emit("E3 / Fig. 5: protocol comparison (measured)",
                {"protocol", "sign_ms", "verify_ms", "wire_B", "linkability",
                 "anonymity_set", "tracking_recall", "ta_contacts/1k_msg"},
                rows);

  // ---- CRL growth (the pseudonym-specific cost) ---------------------------
  const auto crl_summary =
      campaign.replicate(0, [](const exp::RepContext&) { return run_crl(); });
  std::vector<std::vector<exp::Cell>> crl_rows;
  for (const std::size_t revoked : {0UL, 1000UL, 10000UL, 100000UL}) {
    const std::string prefix = "crl/" + std::to_string(revoked);
    crl_rows.push_back(
        {exp::Cell(std::to_string(revoked)),
         exp::Cell(crl_summary.at(prefix + "/bloom_checks"), 0),
         exp::Cell(crl_summary.at(prefix + "/exact_probes"), 0),
         exp::Cell(crl_summary.at(prefix + "/lookup_us"), 3)});
  }
  campaign.emit("CRL lookup cost vs revocation history (pseudonym only)",
                {"revoked_certs", "bloom_checks", "exact_probes",
                 "lookup_us(measured)"},
                crl_rows);

  std::cout
      << "Shape vs paper: pseudonym pays two signature verifications per\n"
         "message and a CRL lookup that grows with revocation history, and\n"
         "its pseudonyms are linkable between rotations (linkability > 0).\n"
         "Group tags are sender-anonymous (anonymity = group size) but the\n"
         "manager can open them; hybrid avoids the CRL entirely.\n";
  return campaign.finish();
}
