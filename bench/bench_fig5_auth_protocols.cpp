// E3 (Fig. 5) — Pseudonym vs group vs hybrid authentication.
//
// Reproduces Fig. 5's qualitative comparison quantitatively:
//   * message authentication overhead: modeled OBU latency (CostModel) and
//     wire bytes per message;
//   * pseudonym pain: CRL check cost growth with the revocation history
//     (and the Bloom filter's mitigation);
//   * privacy: identifier linkability, anonymity-set size and tracking-
//     adversary success over a simulated drive;
//   * infrastructure reliance: authority contacts per 1000 messages.
//
// Paper claims to match: pseudonym = high per-message overhead, privacy not
// fully preserved; group = cheap-ish messages but coordinator knows
// identities and it leans on a manager; hybrid = middle ground without CRL.
#include <chrono>
#include <iostream>

#include "attack/tracker.h"
#include "auth/group_auth.h"
#include "auth/hybrid_auth.h"
#include "auth/privacy_metrics.h"
#include "core/scenario.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct ProtocolRow {
  std::string name;
  double sign_ms = 0;
  double verify_ms = 0;
  std::size_t wire_bytes = 0;
  double linkability = 0;
  double anonymity = 0;
  double tracking_recall = 0;
  double ta_contacts_per_1k = 0;
};

// Simulated drive: `n_vehicles` vehicles emit a signed beacon every second
// for `duration` seconds; an eavesdropper logs what it sees on the wire.
template <typename SignFn, typename IdFn>
ProtocolRow run_protocol(const std::string& name, core::Scenario& scenario,
                         SignFn sign, IdFn visible_id,
                         std::function<double()> ta_contacts,
                         std::size_t messages) {
  ProtocolRow row;
  row.name = name;
  crypto::OpCounts sign_ops;
  crypto::OpCounts verify_ops;
  std::vector<auth::AirObservation> observations;

  auto& traffic = scenario.traffic();
  std::vector<VehicleId> ids;
  for (const auto& [vid, v] : traffic.vehicles()) ids.push_back(v.id);
  std::sort(ids.begin(), ids.end());

  const double duration = 60.0;
  std::size_t emitted = 0;
  for (double t = 0; t < duration; t += 1.0) {
    scenario.run_for(1.0);
    for (const VehicleId v : ids) {
      const mobility::VehicleState* s = traffic.find(v);
      if (s == nullptr) continue;
      const std::size_t wire = sign(v, t, sign_ops, verify_ops);
      if (wire == 0) continue;
      row.wire_bytes = wire;
      ++emitted;
      observations.push_back(
          auth::AirObservation{t, s->pos, visible_id(v, t), v});
    }
  }
  (void)messages;

  const crypto::CostModel costs;
  row.sign_ms =
      costs.total(sign_ops) / std::max<double>(1, emitted) / kMilliseconds;
  row.verify_ms =
      costs.total(verify_ops) / std::max<double>(1, emitted) / kMilliseconds;
  row.linkability = auth::id_linkability(observations);
  row.anonymity = auth::mean_anonymity_set(observations, ids.size());
  const attack::TrackingAdversary adversary;
  row.tracking_recall = adversary.analyze(observations).link_recall;
  row.ta_contacts_per_1k =
      ta_contacts() / (static_cast<double>(emitted) / 1000.0);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig5_auth_protocols", argc, argv);
  g_report = &reporter;

  std::cout << "E3 (Fig. 5): authentication protocol comparison\n"
            << "60 s drive, 40 vehicles, 1 Hz signed beacons; OBU-class "
               "costs via CostModel\n\n";

  const std::size_t kMessages = 40 * 60;

  // ---- pseudonym ------------------------------------------------------------
  core::ScenarioConfig sc;
  sc.vehicles = 40;
  sc.seed = 11;
  std::vector<ProtocolRow> rows;
  {
    core::Scenario scenario(sc);
    scenario.start();
    auth::TrustedAuthority ta(1);
    std::unordered_map<std::uint64_t, std::unique_ptr<auth::PseudonymAuth>>
        signers;
    double ta_contacts = 0;
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      ta.register_vehicle(v.id);
      // Pool of 8 certificates, 10 s rotation.
      signers[vid] = std::make_unique<auth::PseudonymAuth>(ta, v.id, 8, 10.0);
      ta_contacts += 1;  // pool issuance is one TA round-trip
    }
    rows.push_back(run_protocol(
        "pseudonym", scenario,
        [&](VehicleId v, double t, crypto::OpCounts& so,
            crypto::OpCounts& vo) -> std::size_t {
          auto it = signers.find(v.value());
          if (it == signers.end()) return 0;
          const crypto::Bytes payload{1, 2, 3, 4};
          const auto tag = it->second->sign(payload, t, so);
          if (!tag) return 0;
          const auto outcome = auth::PseudonymAuth::verify(ta, payload, *tag);
          vo += outcome.ops;
          return tag->wire_bytes;
        },
        [&](VehicleId v, double) -> std::uint64_t {
          auto it = signers.find(v.value());
          return it == signers.end() ? 0 : it->second->current_pseudo_id();
        },
        [ta_contacts] { return ta_contacts; }, kMessages));
  }

  // ---- group ------------------------------------------------------------------
  {
    core::Scenario scenario(sc);
    scenario.start();
    auth::GroupManager manager(1, 2);
    std::unordered_map<std::uint64_t, std::unique_ptr<auth::GroupAuth>> signers;
    double ta_contacts = 0;
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      manager.enroll(v.id);
      ta_contacts += 1;  // one enrollment with the manager
      signers[vid] = std::make_unique<auth::GroupAuth>(manager, v.id);
    }
    rows.push_back(run_protocol(
        "group", scenario,
        [&](VehicleId v, double, crypto::OpCounts& so,
            crypto::OpCounts& vo) -> std::size_t {
          auto it = signers.find(v.value());
          const crypto::Bytes payload{1, 2, 3, 4};
          const auto tag = it->second->sign(payload, so);
          if (!tag) return 0;
          const auto outcome = auth::GroupAuth::verify(manager, payload, *tag);
          vo += outcome.ops;
          return tag->wire_bytes;
        },
        // Group tags expose no per-sender identifier.
        [](VehicleId, double) -> std::uint64_t { return 0; },
        [ta_contacts] { return ta_contacts; }, kMessages));
  }

  // ---- hybrid ------------------------------------------------------------------
  {
    core::Scenario scenario(sc);
    scenario.start();
    auth::GroupManager manager(2, 3);
    std::unordered_map<std::uint64_t, std::unique_ptr<auth::HybridAuth>>
        signers;
    double ta_contacts = 0;
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      manager.enroll(v.id);
      ta_contacts += 1;
      signers[vid] = std::make_unique<auth::HybridAuth>(manager, v.id);
    }
    // Rotate hybrid pseudonyms every 10 s (a manager certification each).
    double rotations = 0;
    scenario.simulator().schedule_every(10.0, [&] {
      crypto::OpCounts ops;
      for (auto& [vid, s] : signers) {
        if (s->rotate(ops)) rotations += 1;
      }
    });
    rows.push_back(run_protocol(
        "hybrid", scenario,
        [&](VehicleId v, double, crypto::OpCounts& so,
            crypto::OpCounts& vo) -> std::size_t {
          auto it = signers.find(v.value());
          const crypto::Bytes payload{1, 2, 3, 4};
          const auto tag = it->second->sign(payload, so);
          if (!tag) return 0;
          const auto outcome = auth::HybridAuth::verify(manager, payload, *tag);
          vo += outcome.ops;
          return tag->wire_bytes;
        },
        [&](VehicleId v, double) -> std::uint64_t {
          return signers[v.value()]->current_pub();
        },
        // Evaluated after the drive: counts per-epoch re-certifications.
        [&] { return ta_contacts + rotations; }, kMessages));
  }

  Table table("E3 / Fig. 5: protocol comparison (measured)",
              {"protocol", "sign_ms", "verify_ms", "wire_B", "linkability",
               "anonymity_set", "tracking_recall", "ta_contacts/1k_msg"});
  for (const ProtocolRow& r : rows) {
    table.add_row({r.name, Table::num(r.sign_ms, 2), Table::num(r.verify_ms, 2),
                   std::to_string(r.wire_bytes), Table::num(r.linkability, 3),
                   Table::num(r.anonymity, 1),
                   Table::num(r.tracking_recall, 3),
                   Table::num(r.ta_contacts_per_1k, 2)});
  }
  emit_table(table);

  // ---- CRL growth (the pseudonym-specific cost) --------------------------------
  Table crl_table("CRL lookup cost vs revocation history (pseudonym only)",
                  {"revoked_certs", "bloom_checks", "exact_probes",
                   "lookup_us(measured)"});
  for (const std::size_t revoked : {0UL, 1000UL, 10000UL, 100000UL}) {
    auth::Crl crl(std::max<std::size_t>(revoked, 16));
    for (std::size_t i = 0; i < revoked; ++i) crl.revoke(i * 2 + 1);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    const std::size_t lookups = 100000;
    for (std::size_t i = 0; i < lookups; ++i) {
      hits += crl.is_revoked(i * 2) ? 1 : 0;  // all misses
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(lookups);
    crl_table.add_row({std::to_string(revoked),
                       std::to_string(crl.bloom_checks()),
                       std::to_string(crl.exact_probes()),
                       Table::num(us, 3)});
    (void)hits;
  }
  emit_table(crl_table);

  std::cout
      << "Shape vs paper: pseudonym pays two signature verifications per\n"
         "message and a CRL lookup that grows with revocation history, and\n"
         "its pseudonyms are linkable between rotations (linkability > 0).\n"
         "Group tags are sender-anonymous (anonymity = group size) but the\n"
         "manager can open them; hybrid avoids the CRL entirely.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
