// E8 — Task allocation: dwell-time estimation and the handover/drop
// trade-off (§III.A, the paper's explicit open problem).
//
// Part 1: scheduler x dwell-estimator ablation. Random and greedy ignore
// mobility; dwell-aware uses naive / kinematic / oracle dwell estimates.
// Part 2: handover on/off — what migrating encrypted checkpoints saves
// versus dropping and recomputing.
#include <iostream>

#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct RunStats {
  double completion = 0;
  double latency = 0;
  double wasted = 0;
  std::size_t migrations = 0;
  std::size_t reallocations = 0;
};

RunStats run(core::SchedulerKind scheduler, vcloud::DwellMode dwell,
             bool handover, std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.scenario.vehicles = 60;
  cfg.scenario.seed = seed;
  cfg.architecture = core::CloudArchitecture::kDynamic;
  cfg.scheduler = scheduler;
  cfg.cloud.dwell_mode = dwell;
  cfg.cloud.handover.enabled = handover;
  core::VehicularCloudSystem system(cfg);
  system.start();

  vcloud::WorkloadGenerator workload({25.0, 2.0, 0.3, 120.0},
                                     system.scenario().fork_rng(5));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(2.5, [&] {
    system.cloud().submit(workload.next(sim.now()));
  });
  system.run_for(240.0);

  const auto& st = system.cloud().stats();
  RunStats out;
  out.completion = st.submitted ? static_cast<double>(st.completed) /
                                      static_cast<double>(st.submitted)
                                : 0;
  out.latency = st.latency.mean();
  out.wasted = st.wasted_work;
  out.migrations = st.migrations;
  out.reallocations = st.reallocations;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_task_allocation", argc, argv);
  g_report = &reporter;

  std::cout << "E8: task allocation in a dynamic v-cloud (240 s, 60 "
               "vehicles, long tasks)\n\n";

  Table sched_table("scheduler x dwell-estimator (handover ON)",
                    {"scheduler", "dwell_mode", "completion", "latency_s",
                     "migrations"});
  struct Cell {
    core::SchedulerKind k;
    vcloud::DwellMode d;
    const char* label;
  };
  const std::vector<Cell> cells = {
      {core::SchedulerKind::kRandom, vcloud::DwellMode::kKinematic, "random"},
      {core::SchedulerKind::kGreedy, vcloud::DwellMode::kKinematic, "greedy"},
      {core::SchedulerKind::kDwellAware, vcloud::DwellMode::kNaive,
       "dwell_aware"},
      {core::SchedulerKind::kDwellAware, vcloud::DwellMode::kKinematic,
       "dwell_aware"},
      {core::SchedulerKind::kDwellAware, vcloud::DwellMode::kOracle,
       "dwell_aware"},
  };
  for (const Cell& cell : cells) {
    const RunStats s = run(cell.k, cell.d, true, 99);
    sched_table.add_row({cell.label, vcloud::to_string(cell.d),
                         Table::num(s.completion, 3),
                         Table::num(s.latency, 1),
                         std::to_string(s.migrations)});
  }
  emit_table(sched_table);

  Table handover_table("handover vs drop (dwell-aware/kinematic)",
                       {"policy", "completion", "latency_s", "wasted_work",
                        "migrations", "reallocations"});
  for (const bool handover : {true, false}) {
    const RunStats s = run(core::SchedulerKind::kDwellAware,
                           vcloud::DwellMode::kKinematic, handover, 99);
    handover_table.add_row({handover ? "handover (encrypted checkpoint)"
                                     : "drop & recompute",
                            Table::num(s.completion, 3),
                            Table::num(s.latency, 1), Table::num(s.wasted, 1),
                            std::to_string(s.migrations),
                            std::to_string(s.reallocations)});
  }
  emit_table(handover_table);

  std::cout
      << "Shape vs §III.A: mobility-blind scheduling hands long tasks to\n"
         "short-stay vehicles (more interruptions); kinematic dwell\n"
         "estimates close most of the gap to the oracle. Handover preserves\n"
         "progress — wasted work collapses versus drop-and-recompute, at\n"
         "the price of checkpoint transfer latency.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
