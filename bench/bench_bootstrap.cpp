// E15 — Secure v-cloud initialization (§V.A).
//
// How fast does a cold fleet join, and through what trust path? Sweep RSU
// deployment density: with dense infrastructure everyone registers
// directly; as RSUs thin out, joining cascades peer-to-peer (already-joined
// neighbors relay registrations) and latency grows; with zero
// infrastructure nobody can join at all — quantifying the bootstrapping
// dependence the paper notes even for "infrastructure-light" designs.
#include <iostream>

#include "core/bootstrap.h"
#include "core/scenario.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_bootstrap", argc, argv);
  g_report = &reporter;

  std::cout << "E15: fleet bootstrap — join latency vs RSU density\n"
            << "80 vehicles, 120 s, 8-certificate pools\n\n";

  Table table("bootstrap sweep",
              {"rsu_spacing_m", "rsus", "joined", "via_rsu", "via_relay",
               "mean_join_s", "p95_join_s"});
  for (const double spacing : {400.0, 800.0, 1200.0, 0.0}) {
    core::ScenarioConfig cfg;
    cfg.vehicles = 80;
    cfg.seed = 13;
    cfg.rsu_spacing = spacing;
    cfg.rsu_range = 300.0;  // modest RSU radios: coverage really thins out
    core::Scenario scenario(cfg);
    scenario.start();
    auth::TrustedAuthority ta(1);
    core::BootstrapProtocol bootstrap(scenario.network(), ta);
    bootstrap.attach(1.0);
    scenario.run_for(120.0);
    table.add_row({spacing == 0.0 ? "none" : Table::num(spacing, 0),
                   std::to_string(scenario.network().rsus().count()),
                   std::to_string(bootstrap.joined_count()),
                   std::to_string(bootstrap.via_rsu_count()),
                   std::to_string(bootstrap.via_relay_count()),
                   Table::num(bootstrap.join_latency().mean(), 2),
                   Table::num(bootstrap.join_latency().percentile(95), 2)});
  }
  emit_table(table);

  std::cout
      << "Shape vs §V.A: initialization is the one phase that cannot be\n"
         "fully infrastructure-free — relays extend sparse coverage (the\n"
         "via_relay column) at higher join latency, but a fleet with no\n"
         "trust anchor at all never joins.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
