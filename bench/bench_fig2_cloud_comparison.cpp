// E1 (Fig. 2) — Conventional vs mobile vs vehicular clouds, measured.
//
// Fig. 2 is a qualitative chart (power supply / computing capability /
// mobility / infrastructure reliance / time constraints). We instantiate
// one representative of each class inside the same simulator and measure
// the quantitative analog of each row:
//   * computing capability  -> mean pooled compute per node
//   * mobility              -> member churn (joins+leaves per member-minute)
//   * infrastructure reliance -> task-completion collapse during an RSU
//     outage (100% = fully dependent)
//   * time constraints      -> p95 task latency a member can rely on
//
// Representatives:
//   conventional: parked high-end nodes, fixed membership (a datacenter's
//     closest in-framework analog);
//   mobile: phone-class nodes (low automation profile) anchored to an RSU
//     "base station" — membership via infrastructure;
//   vehicular: moving vehicles, dynamic self-organized architecture.
//
// Runs through the experiment engine (exp::Campaign): --reps N replicates
// every cloud with independent seeds (--jobs J in parallel) and reports
// mean ±95% CI; the default --reps 1 reproduces the historical single-seed
// output byte-for-byte, and aggregates are bit-identical for any --jobs.
#include <iostream>

#include "core/system.h"
#include "exp/campaign.h"
#include "util/table.h"

using namespace vcl;

namespace {

exp::RepReport run_cloud(core::SystemConfig cfg, bool outage_phase,
                         const std::string& out_dir) {
  core::VehicularCloudSystem system(cfg);
  system.start();

  vcloud::WorkloadGenerator workload({8.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(77));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(3.0, [&] {
    system.cloud().submit(workload.next(sim.now()));
  });

  // Phase 1: 120 s normal.
  std::size_t members_samples = 0;
  double members_sum = 0;
  double compute_sum = 0;
  for (int i = 0; i < 24; ++i) {
    system.run_for(5.0);
    const auto pool = system.cloud().pool();
    members_sum += static_cast<double>(pool.members);
    compute_sum += pool.members ? pool.compute / pool.members : 0.0;
    ++members_samples;
  }
  const std::size_t completed_normal = system.cloud().stats().completed;

  // Phase 2: 120 s with all RSUs down (tests infrastructure reliance).
  if (outage_phase) system.scenario().network().rsus().fail_all();
  system.run_for(120.0);
  const std::size_t completed_outage =
      system.cloud().stats().completed - completed_normal;
  if (outage_phase) system.scenario().network().rsus().restore_all();

  exp::RepReport rep;
  rep.value("compute_per_node",
            compute_sum / static_cast<double>(members_samples));
  const double rate_normal = static_cast<double>(completed_normal) / 120.0;
  const double rate_outage = static_cast<double>(completed_outage) / 120.0;
  rep.value("outage_collapse",
            rate_normal > 0 ? std::max(0.0, 1.0 - rate_outage / rate_normal)
                            : 0.0);
  rep.value("p95_latency", system.cloud().stats().latency_tail.percentile(95));
  const auto& st = system.cloud().stats();
  // Pooled tail distribution: per-task e2e latencies stream through the
  // cloud's fixed-memory sketch; replications merge bucket counts, so the
  // p50/p99/p999 cells are bit-identical for any --jobs.
  rep.tail("latency_tail").merge(st.latency_tail);
  rep.value("completion", st.submitted
                              ? static_cast<double>(st.completed) /
                                    static_cast<double>(st.submitted)
                              : 0.0);
  // Churn proxy: reallocations+migrations per completed task plus broker
  // changes normalized by runtime.
  rep.value("churn_per_member_min",
            (static_cast<double>(st.migrations + st.reallocations) +
             static_cast<double>(system.cloud().broker_changes())) /
                (members_sum / static_cast<double>(members_samples)) / 4.0);
  if (!out_dir.empty() && system.telemetry() != nullptr) {
    obs::write_telemetry(*system.telemetry(), out_dir);
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Campaign campaign("bench_fig2_cloud_comparison", argc, argv);

  std::cout << "E1 (Fig. 2): conventional vs mobile vs vehicular clouds\n"
            << "240 s each (RSU outage in the second half), same task "
               "stream\n\n";
  campaign.describe(std::cout);

  std::vector<std::vector<exp::Cell>> rows;
  auto run = [&](const std::string& name, const core::SystemConfig& base) {
    const auto summary = campaign.replicate(
        base.scenario.seed, [&base](const exp::RepContext& ctx) {
          core::SystemConfig cfg = base;
          cfg.scenario.seed = ctx.seed;
          // --telemetry-dir: export this replication's trace + metrics.
          if (!ctx.out_dir.empty()) {
            cfg.telemetry.tracing = true;
            cfg.telemetry.metrics = true;
          }
          return run_cloud(cfg, true, ctx.out_dir);
        });
    rows.push_back({exp::Cell(name),
                    exp::Cell(summary.at("compute_per_node"), 2),
                    exp::Cell(summary.at("churn_per_member_min"), 2),
                    exp::Cell(summary.at("outage_collapse"), 2),
                    exp::Cell(summary.at("p95_latency"), 1),
                    exp::Cell::tail(summary.at("latency_tail"), 1),
                    exp::Cell(summary.at("completion"), 2)});
  };

  // Conventional cloud: parked, high-automation (server-class) nodes.
  {
    core::SystemConfig cfg;
    cfg.scenario.environment = core::Environment::kParkingLot;
    cfg.scenario.vehicles = 40;
    cfg.scenario.vehicles_parked = true;
    cfg.scenario.seed = 31;
    cfg.architecture = core::CloudArchitecture::kStationary;
    cfg.stationary_radius = 5000.0;
    run("conventional (fixed nodes)", cfg);
  }

  // Mobile cloud: phone-class nodes behind a base station (RSU).
  {
    core::SystemConfig cfg;
    cfg.scenario.vehicles = 40;
    cfg.scenario.seed = 32;
    cfg.scenario.rsu_spacing = 700.0;
    cfg.scenario.rsu_range = 700.0;
    // Phone-class capability: everything at the lowest equipment level.
    cfg.scenario.automation_weights = {1.0, 0, 0, 0, 0, 0};
    cfg.architecture = core::CloudArchitecture::kInfrastructureBased;
    run("mobile (infra-anchored)", cfg);
  }

  // Vehicular cloud: moving vehicles, dynamic architecture.
  {
    core::SystemConfig cfg;
    cfg.scenario.vehicles = 40;
    cfg.scenario.seed = 33;
    cfg.architecture = core::CloudArchitecture::kDynamic;
    run("vehicular (dynamic V2V)", cfg);
  }

  campaign.emit("E1 / Fig. 2: measured analogs of the qualitative rows",
                {"cloud", "compute/node", "reconfig/member/min",
                 "outage_collapse", "p95_latency_s", "lat_p50/p99/p999_s",
                 "completion"},
                rows);

  std::cout
      << "Shape vs paper Fig. 2: conventional = most stable and most\n"
         "capable per node, zero infrastructure sensitivity in-site; mobile\n"
         "= least capable and collapses when the base station dies\n"
         "(infrastructure reliance HIGH); vehicular = capable nodes, high\n"
         "reconfiguration rate (mobility HIGH) but keeps completing tasks\n"
         "with the infrastructure gone (reliance LOW).\n";
  return campaign.finish();
}
