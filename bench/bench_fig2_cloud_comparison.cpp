// E1 (Fig. 2) — Conventional vs mobile vs vehicular clouds, measured.
//
// Fig. 2 is a qualitative chart (power supply / computing capability /
// mobility / infrastructure reliance / time constraints). We instantiate
// one representative of each class inside the same simulator and measure
// the quantitative analog of each row:
//   * computing capability  -> mean pooled compute per node
//   * mobility              -> member churn (joins+leaves per member-minute)
//   * infrastructure reliance -> task-completion collapse during an RSU
//     outage (100% = fully dependent)
//   * time constraints      -> p95 task latency a member can rely on
//
// Representatives:
//   conventional: parked high-end nodes, fixed membership (a datacenter's
//     closest in-framework analog);
//   mobile: phone-class nodes (low automation profile) anchored to an RSU
//     "base station" — membership via infrastructure;
//   vehicular: moving vehicles, dynamic self-organized architecture.
#include <iostream>

#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct Row {
  std::string name;
  double compute_per_node = 0;
  double churn_per_member_min = 0;
  double outage_collapse = 0;  // 1 - (completion rate during outage / before)
  double p95_latency = 0;
  double completion = 0;
};

Row run_cloud(const std::string& name, core::SystemConfig cfg,
              bool outage_phase) {
  core::VehicularCloudSystem system(cfg);
  system.start();

  vcloud::WorkloadGenerator workload({8.0, 1.0, 0.2, 60.0},
                                     system.scenario().fork_rng(77));
  auto& sim = system.scenario().simulator();
  sim.schedule_every(3.0, [&] {
    system.cloud().submit(workload.next(sim.now()));
  });

  // Phase 1: 120 s normal.
  std::size_t members_samples = 0;
  double members_sum = 0;
  double compute_sum = 0;
  for (int i = 0; i < 24; ++i) {
    system.run_for(5.0);
    const auto pool = system.cloud().pool();
    members_sum += static_cast<double>(pool.members);
    compute_sum += pool.members ? pool.compute / pool.members : 0.0;
    ++members_samples;
  }
  const std::size_t completed_normal = system.cloud().stats().completed;

  // Phase 2: 120 s with all RSUs down (tests infrastructure reliance).
  if (outage_phase) system.scenario().network().rsus().fail_all();
  system.run_for(120.0);
  const std::size_t completed_outage =
      system.cloud().stats().completed - completed_normal;
  if (outage_phase) system.scenario().network().rsus().restore_all();

  Row row;
  row.name = name;
  row.compute_per_node = compute_sum / static_cast<double>(members_samples);
  const double rate_normal = static_cast<double>(completed_normal) / 120.0;
  const double rate_outage = static_cast<double>(completed_outage) / 120.0;
  row.outage_collapse =
      rate_normal > 0 ? std::max(0.0, 1.0 - rate_outage / rate_normal) : 0.0;
  row.p95_latency = system.cloud().stats().latency.percentile(95);
  const auto& st = system.cloud().stats();
  row.completion = st.submitted
                       ? static_cast<double>(st.completed) /
                             static_cast<double>(st.submitted)
                       : 0.0;
  // Churn proxy: reallocations+migrations per completed task plus broker
  // changes normalized by runtime.
  row.churn_per_member_min =
      (static_cast<double>(st.migrations + st.reallocations) +
       static_cast<double>(system.cloud().broker_changes())) /
      (members_sum / static_cast<double>(members_samples)) / 4.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_fig2_cloud_comparison", argc, argv);
  g_report = &reporter;

  std::cout << "E1 (Fig. 2): conventional vs mobile vs vehicular clouds\n"
            << "240 s each (RSU outage in the second half), same task "
               "stream\n\n";

  std::vector<Row> rows;

  // Conventional cloud: parked, high-automation (server-class) nodes.
  {
    core::SystemConfig cfg;
    cfg.scenario.environment = core::Environment::kParkingLot;
    cfg.scenario.vehicles = 40;
    cfg.scenario.vehicles_parked = true;
    cfg.scenario.seed = 31;
    cfg.architecture = core::CloudArchitecture::kStationary;
    cfg.stationary_radius = 5000.0;
    rows.push_back(run_cloud("conventional (fixed nodes)", cfg, true));
  }

  // Mobile cloud: phone-class nodes behind a base station (RSU).
  {
    core::SystemConfig cfg;
    cfg.scenario.vehicles = 40;
    cfg.scenario.seed = 32;
    cfg.scenario.rsu_spacing = 700.0;
    cfg.scenario.rsu_range = 700.0;
    // Phone-class capability: everything at the lowest equipment level.
    cfg.scenario.automation_weights = {1.0, 0, 0, 0, 0, 0};
    cfg.architecture = core::CloudArchitecture::kInfrastructureBased;
    rows.push_back(run_cloud("mobile (infra-anchored)", cfg, true));
  }

  // Vehicular cloud: moving vehicles, dynamic architecture.
  {
    core::SystemConfig cfg;
    cfg.scenario.vehicles = 40;
    cfg.scenario.seed = 33;
    cfg.architecture = core::CloudArchitecture::kDynamic;
    rows.push_back(run_cloud("vehicular (dynamic V2V)", cfg, true));
  }

  Table table("E1 / Fig. 2: measured analogs of the qualitative rows",
              {"cloud", "compute/node", "reconfig/member/min",
               "outage_collapse", "p95_latency_s", "completion"});
  for (const Row& r : rows) {
    table.add_row({r.name, Table::num(r.compute_per_node, 2),
                   Table::num(r.churn_per_member_min, 2),
                   Table::num(r.outage_collapse, 2),
                   Table::num(r.p95_latency, 1), Table::num(r.completion, 2)});
  }
  emit_table(table);

  std::cout
      << "Shape vs paper Fig. 2: conventional = most stable and most\n"
         "capable per node, zero infrastructure sensitivity in-site; mobile\n"
         "= least capable and collapses when the base station dies\n"
         "(infrastructure reliance HIGH); vehicular = capable nodes, high\n"
         "reconfiguration rate (mobility HIGH) but keeps completing tasks\n"
         "with the infrastructure gone (reliance LOW).\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
