// E11 — Network-layer attacks and defenses (§III threat list).
//
// Three attack families against the same city scenario:
//   * suppression: malicious relays drop forwarded messages — delivery vs
//     attacker fraction;
//   * DoS flooding: junk traffic erodes reception — delivery and cloud task
//     completion before/during the flood;
//   * replay: captured authenticated messages re-injected — acceptance with
//     and without the freshness defense.
#include <iostream>

#include "attack/dos.h"
#include "attack/replay.h"
#include "attack/suppression.h"
#include "core/scenario.h"
#include "routing/greedy_geo.h"
#include "core/system.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

double run_suppression(double attacker_fraction, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.vehicles = 80;
  cfg.seed = seed;
  core::Scenario scenario(cfg);
  scenario.start();
  scenario.run_for(5.0);

  attack::AdversaryRoster roster;
  Rng rng(seed ^ 0xabc);
  roster.recruit(scenario.traffic(), attacker_fraction, rng);
  attack::SuppressedGreedyRouter router(scenario.network(), roster,
                                        attack::SuppressionConfig{1.0, 0.0},
                                        rng.fork(1));
  router.attach();
  scenario.network().refresh();

  Rng pick(seed ^ 0xdef);
  scenario.simulator().schedule_every(0.5, [&] {
    std::vector<VehicleId> ids;
    for (const auto& [vid, v] : scenario.traffic().vehicles()) {
      ids.push_back(v.id);
    }
    if (ids.size() < 2) return;
    const VehicleId src = pick.pick(ids);
    const VehicleId dst = pick.pick(ids);
    if (!(src == dst)) router.originate(src, dst);
  });
  scenario.run_for(40.0);
  return router.metrics().delivery_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_attack_resilience", argc, argv);
  g_report = &reporter;

  std::cout << "E11: attack resilience\n\n";

  // ---- suppression sweep -----------------------------------------------------
  Table sup_table("suppression: delivery vs malicious-relay fraction "
                  "(greedy-geo, 80 vehicles)",
                  {"attacker_fraction", "delivery_ratio"});
  for (const double frac : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    sup_table.add_row(
        {Table::num(frac, 1), Table::num(run_suppression(frac, 321), 3)});
  }
  emit_table(sup_table);

  // ---- DoS -------------------------------------------------------------------
  // Junk flooding erodes channel reception; measured as multi-hop delivery
  // of a steady unicast workload before / during / after the flood.
  {
    core::ScenarioConfig cfg;
    cfg.vehicles = 80;
    cfg.seed = 5;
    core::Scenario scenario(cfg);
    scenario.start();
    scenario.run_for(5.0);

    routing::GreedyGeo router(scenario.network());
    router.attach();
    scenario.network().refresh();
    Rng pick(6);
    scenario.simulator().schedule_every(0.5, [&] {
      std::vector<VehicleId> ids;
      for (const auto& [vid, v] : scenario.traffic().vehicles()) {
        ids.push_back(v.id);
      }
      if (ids.size() < 2) return;
      const VehicleId src = pick.pick(ids);
      const VehicleId dst = pick.pick(ids);
      if (!(src == dst)) router.originate(src, dst);
    });

    attack::AdversaryRoster roster;
    Rng rng(9);
    roster.recruit(scenario.traffic(), 0.15, rng);
    attack::DosFlooder flooder(scenario.network(), roster,
                               attack::DosConfig{1500.0, 1024});

    struct PhaseResult {
      double delivery;
      double hop_success;  // per-transmission channel success
      double delay;
    };
    auto phase = [&](double seconds) {
      const auto o0 = router.metrics().originated();
      const auto d0 = router.metrics().delivered();
      const auto s0 = scenario.network().stats().unicast_sent;
      const auto u0 = scenario.network().stats().unicast_delivered;
      scenario.run_for(seconds);
      const auto o1 = router.metrics().originated();
      const auto d1 = router.metrics().delivered();
      const auto s1 = scenario.network().stats().unicast_sent;
      const auto u1 = scenario.network().stats().unicast_delivered;
      PhaseResult r{};
      r.delivery = o1 > o0 ? static_cast<double>(d1 - d0) /
                                 static_cast<double>(o1 - o0)
                           : 0.0;
      r.hop_success = s1 > s0 ? static_cast<double>(u1 - u0) /
                                    static_cast<double>(s1 - s0)
                              : 0.0;
      r.delay = router.metrics().delay().mean();
      return r;
    };

    Table dos_table("DoS flood (15% of vehicles, 1500 junk msg/s each)",
                    {"phase", "delivery_ratio", "hop_success",
                     "cum_mean_delay_s"});
    auto add = [&](const char* label, const PhaseResult& r) {
      dos_table.add_row({label, Table::num(r.delivery, 3),
                         Table::num(r.hop_success, 3),
                         Table::num(r.delay, 2)});
    };
    add("before (60s)", phase(60.0));
    flooder.start();
    add("during flood (60s)", phase(60.0));
    flooder.stop();
    add("after (60s)", phase(60.0));
    emit_table(dos_table);
    std::cout << "junk messages transmitted: " << flooder.junk_sent()
              << "\n\n";
  }

  // ---- replay ------------------------------------------------------------------
  {
    auth::TrustedAuthority ta(1);
    ta.register_vehicle(VehicleId{1});
    auth::PseudonymAuth signer(ta, VehicleId{1}, 8);
    attack::ReplayAttacker attacker;
    attack::FreshnessChecker checker(2.0);
    crypto::OpCounts ops;

    std::size_t accepted_no_defense = 0;
    std::size_t accepted_with_defense = 0;
    const int n = 100;
    // Legitimate phase: capture everything on the air.
    for (int i = 0; i < n; ++i) {
      const auto payload = attack::make_fresh_payload(
          {1, 2, 3}, i * 0.1, static_cast<std::uint64_t>(i));
      const auto tag = signer.sign(payload, i * 0.1, ops);
      attacker.capture(payload, *tag, i * 0.1);
      (void)checker.accept(payload, i * 0.1);  // receivers consume nonces
    }
    // Replay phase, 60 s later.
    for (const auto& captured : attacker.log()) {
      const bool sig_ok =
          auth::PseudonymAuth::verify(ta, captured.payload, captured.tag).ok;
      if (sig_ok) ++accepted_no_defense;
      if (sig_ok && checker.accept(captured.payload, 60.0 + captured.captured_at)) {
        ++accepted_with_defense;
      }
    }
    Table replay_table("replay of 100 captured authenticated messages",
                       {"defense", "replays_accepted"});
    replay_table.add_row({"signature check only",
                          std::to_string(accepted_no_defense)});
    replay_table.add_row({"+ freshness (timestamp+nonce)",
                          std::to_string(accepted_with_defense)});
    emit_table(replay_table);
  }

  std::cout
      << "Shape vs §III: suppression quietly halves delivery well below a\n"
         "majority of relays; DoS collapses per-hop reception and dents\n"
         "end-to-end delivery while active (the >1 'after' ratio is the\n"
         "carried backlog draining once the channel clears); replay defeats\n"
         "pure signature checking and is fully stopped by binding\n"
         "timestamp+nonce into the signed payload.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
