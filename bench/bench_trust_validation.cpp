// E10 — Trustworthiness validation accuracy under attack (§III.D / §V.D).
//
// Ground truth: a stream of real events plus attacker-fabricated ones.
// Honest vehicles near real events report them; attackers deny real events
// and assert fake ones, optionally amplified by Sybil credentials. Sweep
// the attacker fraction and score each validator's decision accuracy, plus
// the sender-reputation baseline with and without pseudonym rotation (the
// paper's argument for content-centric trust).
#include <iostream>
#include <memory>

#include "attack/false_data.h"
#include "attack/sybil.h"
#include "trust/classifier.h"
#include "trust/dempster_shafer.h"
#include "trust/validators.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace
using namespace vcl::trust;

namespace {

struct Scene {
  std::vector<Report> air;
  // event key (by centroid cell) -> is real
  std::vector<GroundTruthEvent> events;
};

Scene build_scene(double attacker_fraction, std::size_t sybil_factor,
                  Rng& rng) {
  Scene scene;
  const int n_honest = 40;
  const auto n_attackers =
      static_cast<int>(attacker_fraction * n_honest / (1 - attacker_fraction +
                                                        1e-9));

  // 6 real events spread over the map.
  for (int e = 0; e < 6; ++e) {
    GroundTruthEvent ev;
    ev.id = EventId{static_cast<std::uint64_t>(e + 1)};
    ev.type = EventType::kIce;
    ev.location = {e * 900.0, 0};
    ev.real = true;
    scene.events.push_back(ev);
  }
  // Honest witnesses: 6-10 per real event.
  std::uint64_t credential = 100;
  for (const auto& ev : scene.events) {
    const int witnesses = static_cast<int>(rng.uniform_int(6, 10));
    for (int w = 0; w < witnesses; ++w) {
      Report r;
      r.type = ev.type;
      r.location =
          ev.location + geo::Vec2{rng.uniform(-20, 20), rng.uniform(-20, 20)};
      r.time = rng.uniform(0, 10);
      r.positive = true;
      r.reporter_credential = credential++;
      r.reporter_pos = ev.location + geo::Vec2{rng.uniform(-60, 60), 0};
      r.truth_event = ev.id;
      scene.air.push_back(r);
    }
  }

  // Attackers: each denies one real event and fabricates one fake event,
  // with sybil_factor credentials each.
  std::vector<VehicleId> attacker_vehicles;
  for (int a = 0; a < n_attackers; ++a) {
    attacker_vehicles.push_back(VehicleId{static_cast<std::uint64_t>(a + 900)});
  }
  if (!attacker_vehicles.empty()) {
    const auto creds =
        attack::SybilFactory::credentials(attacker_vehicles, sybil_factor);
    attack::FalseDataAttacker attacker(creds, rng.fork(3));
    const std::size_t per_attacker = sybil_factor;
    const std::size_t n_real = scene.events.size();  // fakes appended below
    for (int a = 0; a < n_attackers; ++a) {
      // Copy: scene.events grows below, which would invalidate a reference.
      const GroundTruthEvent target =
          scene.events[static_cast<std::size_t>(a) % n_real];
      for (auto& r : attacker.deny(target, rng.uniform(0, 10), per_attacker)) {
        r.reporter_pos = target.location + geo::Vec2{400, 0};  // far claim
        scene.air.push_back(r);
      }
      // Fabricated event (unique location per attacker).
      GroundTruthEvent fake;
      fake.id = EventId{};
      fake.type = EventType::kAccident;
      fake.location = {a * 900.0 + 400.0, 3000.0};
      fake.real = false;
      scene.events.push_back(fake);
      for (auto& r : attacker.fabricate(fake.type, fake.location,
                                        rng.uniform(0, 10), per_attacker)) {
        scene.air.push_back(r);
      }
      // Honest vehicles passing the claimed location see nothing and say
      // so — the counter-evidence that makes content validation possible.
      const int passersby = static_cast<int>(rng.uniform_int(4, 8));
      for (int w = 0; w < passersby; ++w) {
        Report r;
        r.type = fake.type;
        r.location = fake.location +
                     geo::Vec2{rng.uniform(-20, 20), rng.uniform(-20, 20)};
        r.time = rng.uniform(0, 10);
        r.positive = false;  // "no accident here"
        r.reporter_credential = credential++;
        r.reporter_pos =
            fake.location + geo::Vec2{rng.uniform(-60, 60), 0};
        r.truth_event = EventId{};
        r.truthful = true;
        scene.air.push_back(r);
      }
    }
  }
  return scene;
}

// Scores a validator over the classified scene: a decision is correct when
// (accepted == event is real). Clusters are matched to ground truth via the
// member reports' truth_event (empty = fabricated).
double accuracy(const Validator& validator, const Scene& scene) {
  MessageClassifier classifier({250.0, 30.0});
  const auto clusters = classifier.classify(scene.air);
  std::size_t correct = 0;
  for (const EventCluster& c : clusters) {
    bool real = false;
    for (const Report& r : c.reports) {
      if (r.truth_event.valid()) {
        real = true;
        break;
      }
    }
    const TrustDecision d = validator.evaluate(c);
    correct += (d.accepted == real) ? 1 : 0;
  }
  return clusters.empty()
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(clusters.size());
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_trust_validation", argc, argv);
  g_report = &reporter;

  std::cout << "E10: validator accuracy vs attacker fraction\n"
            << "6 real events, 40 honest witnesses; attackers deny real "
               "events and fabricate fakes\n\n";

  const MajorityVote majority;
  const DistanceWeightedVote weighted;
  const BayesianInference bayes(0.8);
  const DempsterShafer ds;

  for (const std::size_t sybil : {1UL, 4UL, 10UL}) {
    Table table("Sybil x" + std::to_string(sybil) + " (" +
                    std::to_string(sybil) + " credentials/attacker)",
                {"attacker_frac", "majority", "dist_weighted", "bayesian",
                 "dempster_shafer"});
    for (const double frac : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      Rng rng(42 + static_cast<std::uint64_t>(frac * 100) + sybil);
      const Scene scene = build_scene(frac, sybil, rng);
      table.add_row({Table::num(frac, 1),
                     Table::num(accuracy(majority, scene), 2),
                     Table::num(accuracy(weighted, scene), 2),
                     Table::num(accuracy(bayes, scene), 2),
                     Table::num(accuracy(ds, scene), 2)});
    }
    emit_table(table);
  }

  // Reputation baseline vs pseudonym rotation (the paper's §III.D point).
  std::cout << "reputation baseline: accuracy after 20 rounds of feedback,\n"
               "with stable credentials vs per-round pseudonym rotation\n\n";
  Table rep_table("sender-reputation vs credential rotation",
                  {"credentials", "accuracy_round_20"});
  for (const bool rotate : {false, true}) {
    ReputationStore store;
    Rng rng(7);
    double last_accuracy = 0;
    for (int round = 0; round < 20; ++round) {
      Scene scene = build_scene(0.3, 4, rng);
      if (rotate) {
        // Every credential is fresh each round (rotation between rounds).
        for (auto& r : scene.air) {
          r.reporter_credential += static_cast<std::uint64_t>(round) * 100000;
        }
      }
      const ReputationWeightedVote validator(store);
      last_accuracy = accuracy(validator, scene);
      // Feedback: outcomes become known afterwards; reputation updates.
      for (const Report& r : scene.air) {
        store.record(r.reporter_credential, r.truthful);
      }
    }
    rep_table.add_row({rotate ? "rotating (fresh each round)" : "stable",
                       Table::num(last_accuracy, 2)});
  }
  emit_table(rep_table);

  std::cout
      << "Shape vs §III.D: majority voting degrades linearly with attacker\n"
         "share and collapses under Sybil; distance weighting resists the\n"
         "far-away denial pattern; reputation only helps when credentials\n"
         "persist — rotation resets it to a majority vote, which is the\n"
         "paper's argument for validating content, not senders.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
