// E12 — Authorization latency under stringent time constraints (§III.C).
//
// Measures, as modeled OBU latency (CostModel) and as measured wall-clock
// of the toy substrate:
//   * ABE encrypt/keygen/decrypt vs policy size;
//   * sticky-package end-to-end access overhead (ABE + envelope + audit);
//   * context-switch attribute churn (role changes when hopping clusters);
//   * emergency-grant latency vs the paper's "milliseconds" requirement.
#include <chrono>
#include <iostream>

#include "access/role_manager.h"
#include "access/sticky_package.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace
using namespace vcl::access;

namespace {

double wall_us(const std::function<void()>& fn, int iters = 50) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

Policy and_policy(int leaves) {
  std::string text = "a0";
  for (int i = 1; i < leaves; ++i) text += " & a" + std::to_string(i);
  return *Policy::parse(text);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_access_control", argc, argv);
  g_report = &reporter;

  std::cout << "E12: access control latency (paper §III.C)\n\n";
  AbeAuthority authority(99);
  crypto::Drbg drbg(std::uint64_t{1});
  const crypto::CostModel costs;

  Table abe_table("ABE cost vs policy size",
                  {"leaves", "enc_obu_ms", "dec_obu_ms", "enc_us(toy)",
                   "dec_us(toy)"});
  for (const int leaves : {1, 2, 4, 8, 16, 32}) {
    const Policy policy = and_policy(leaves);
    AttributeSet attrs;
    for (int i = 0; i < leaves; ++i) attrs.add("a" + std::to_string(i));
    const AbeUserKey key = authority.keygen(attrs);
    const std::uint64_t m = crypto::default_group().pow_g(7);

    crypto::OpCounts enc_ops;
    const auto ct = authority.encrypt(m, policy, drbg, enc_ops);
    crypto::OpCounts dec_ops;
    (void)AbeAuthority::decrypt(ct, key, attrs, dec_ops);

    const double enc_us = wall_us([&] {
      crypto::OpCounts ops;
      (void)authority.encrypt(m, policy, drbg, ops);
    });
    const double dec_us = wall_us([&] {
      crypto::OpCounts ops;
      (void)AbeAuthority::decrypt(ct, key, attrs, ops);
    });

    abe_table.add_row({std::to_string(leaves),
                       Table::num(costs.total(enc_ops) / kMilliseconds, 2),
                       Table::num(costs.total(dec_ops) / kMilliseconds, 2),
                       Table::num(enc_us, 1), Table::num(dec_us, 1)});
  }
  emit_table(abe_table);

  // ---- sticky package end-to-end ------------------------------------------------
  Table pkg_table("sticky package access (policy '(role:head & zone:z) | "
                  "2of(a,b,c)')",
                  {"operation", "obu_ms", "notes"});
  {
    const auto policy = Policy::parse("(role:head & zone:z) | 2of(a, b, c)");
    const crypto::Bytes owner_key = drbg.generate(32);
    crypto::OpCounts seal_ops;
    StickyPackage pkg(authority, drbg.generate(1024), policy->clone(),
                      owner_key, 1, drbg, seal_ops);
    pkg_table.add_row({"seal (owner, once)",
                       Table::num(costs.total(seal_ops) / kMilliseconds, 2),
                       "ABE header + DEM + envelope MAC"});

    const AttributeSet attrs{"role:head", "zone:z"};
    const AbeUserKey key = authority.keygen(attrs);
    crypto::OpCounts access_ops;
    (void)pkg.access(key, attrs, 42, 0.0, access_ops);
    pkg_table.add_row({"authorized access",
                       Table::num(costs.total(access_ops) / kMilliseconds, 2),
                       "decrypt + audit append"});

    const AttributeSet bad{"role:member"};
    const AbeUserKey bad_key = authority.keygen(bad);
    crypto::OpCounts deny_ops;
    (void)pkg.access(bad_key, bad, 43, 1.0, deny_ops);
    pkg_table.add_row({"denied access",
                       Table::num(costs.total(deny_ops) / kMilliseconds, 2),
                       "fails at first unsatisfied gate; still audited"});
  }
  emit_table(pkg_table);

  // ---- context switches -----------------------------------------------------------
  RoleManager roles;
  Table ctx_table("context-switch attribute churn (role changes, §III.C)",
                  {"transition", "attrs_changed", "rekey_obu_ms"});
  struct Transition {
    const char* label;
    VehicleContext before;
    VehicleContext after;
  };
  std::vector<Transition> transitions;
  {
    Transition t1{"member -> cluster head", {}, {}};
    t1.after.is_cluster_head = true;
    transitions.push_back(t1);
    Transition t2{"zone a -> zone b", {}, {}};
    t2.before.zone = "a";
    t2.after.zone = "b";
    transitions.push_back(t2);
    Transition t3{"normal -> emergency", {}, {}};
    t3.after.emergency = true;
    transitions.push_back(t3);
    Transition t4{"highway -> parked buffer node", {}, {}};
    t4.before.speed = 33.0;
    t4.after.speed = 0.0;
    transitions.push_back(t4);
  }
  for (const Transition& t : transitions) {
    const std::size_t delta = roles.switch_delta(t.before, t.after);
    // Each changed attribute requires one fresh ABE key component.
    crypto::OpCounts ops;
    ops.abe_decrypt_leaves = delta;  // keygen ~ one exponentiation per attr
    ctx_table.add_row({t.label, std::to_string(delta),
                       Table::num(costs.total(ops) / kMilliseconds, 2)});
  }
  emit_table(ctx_table);

  // ---- emergency grant latency ------------------------------------------------------
  // Paper: "additional permissions ... should be granted to another vehicle
  // in milliseconds." Model: grant = role-manager projection (free) + one
  // attribute key issuance + decrypt of a single-leaf emergency policy.
  {
    crypto::OpCounts ops;
    const auto policy = Policy::parse("can:read-safety-data");
    const std::uint64_t m = crypto::default_group().pow_g(3);
    const auto ct = authority.encrypt(m, *policy, drbg, ops);
    VehicleContext ctx;
    ctx.emergency = true;
    const AttributeSet attrs = roles.attributes_for(ctx);
    const AbeUserKey key = authority.keygen(attrs);
    crypto::OpCounts grant_ops;
    (void)AbeAuthority::decrypt(ct, key, attrs, grant_ops);
    const double ms = costs.total(grant_ops) / kMilliseconds;
    std::cout << "emergency grant latency (modeled OBU): " << Table::num(ms, 2)
              << " ms  -> " << (ms < 10.0 ? "meets" : "MISSES")
              << " the paper's milliseconds budget\n";
  }
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
