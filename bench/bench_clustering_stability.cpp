// E7 — Cluster stability across election protocols (§IV.A.1).
//
// Speed-based (MOBIC-style), passive multi-hop (PMC), fuzzy-logic and
// moving-zone clustering run over identical traffic; the tracker reports
// cluster-head lifetime, member re-affiliation rate and cluster shape.
#include <iostream>
#include <memory>

#include "cluster/fuzzy_clustering.h"
#include "cluster/moving_zone.h"
#include "cluster/passive_clustering.h"
#include "cluster/speed_clustering.h"
#include "cluster/stability.h"
#include "core/scenario.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

std::unique_ptr<cluster::ClusterManager> make_manager(const std::string& name,
                                                      net::Network& net) {
  if (name == "speed") return std::make_unique<cluster::SpeedClustering>(net);
  if (name == "pmc") return std::make_unique<cluster::PassiveClustering>(net);
  if (name == "fuzzy") return std::make_unique<cluster::FuzzyClustering>(net);
  return std::make_unique<cluster::MovingZone>(net);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_clustering_stability", argc, argv);
  g_report = &reporter;

  std::cout << "E7: clustering stability (120 s of traffic, 1 Hz rounds)\n\n";

  struct Regime {
    const char* label;
    core::Environment env;
    int vehicles;
  };
  const std::vector<Regime> regimes = {
      {"city 60 veh", core::Environment::kCity, 60},
      {"city 120 veh", core::Environment::kCity, 120},
      {"highway 60 veh", core::Environment::kHighway, 60},
  };

  for (const Regime& regime : regimes) {
    Table table(std::string("E7 (") + regime.label + ")",
                {"protocol", "ch_lifetime_s", "reaffiliation", "clusters",
                 "mean_size"});
    for (const std::string protocol : {"speed", "pmc", "fuzzy", "mozo"}) {
      core::ScenarioConfig cfg;
      cfg.environment = regime.env;
      cfg.vehicles = regime.vehicles;
      cfg.seed = 77;
      core::Scenario scenario(cfg);
      scenario.start();
      scenario.run_for(5.0);

      auto manager = make_manager(protocol, scenario.network());
      cluster::StabilityTracker tracker(*manager);
      for (int round = 0; round < 120; ++round) {
        scenario.run_for(1.0);
        manager->update();
        tracker.observe(scenario.simulator().now());
      }
      table.add_row({protocol, Table::num(tracker.head_lifetime().mean(), 1),
                     Table::num(tracker.reaffiliation_rate(), 3),
                     Table::num(tracker.cluster_count().mean(), 1),
                     Table::num(tracker.cluster_size().mean(), 1)});
    }
    emit_table(table);
  }

  std::cout
      << "Shape vs the surveyed papers: plain speed-based election churns\n"
         "heads fastest; PMC's passive neighbor-following and the fuzzy\n"
         "blend lengthen head tenure; moving zones trade more, smaller\n"
         "clusters for the longest-lived captains on the highway where\n"
         "velocity grouping is cleanest.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
