// E17 — Management vs privacy (§V.A).
//
// The paper: "the authority should be able to recover the snapshot of the
// topology in an area so as to identify the attackers ... the more
// management data recorded, the more possible that the user privacy will be
// violated."
//
// Part 1 measures both sides of that sentence: snapshot retention sweep →
// forensic recall (can the authority place the attacker at the incident,
// after the fact?) vs location records held (privacy exposure).
// Part 2: traffic-flow analysis — how reliably transmission volume alone
// unmasks coordinators, and what uniform-padding defenses cost.
#include <iostream>

#include <set>

#include "attack/flow_analysis.h"
#include "cluster/moving_zone.h"
#include "core/scenario.h"
#include "core/snapshot.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_management_privacy", argc, argv);
  g_report = &reporter;

  std::cout << "E17: management forensics vs privacy exposure\n\n";

  // ---- Part 1: snapshot retention -------------------------------------------
  // An incident occurs at t=60 near the map center; the investigation opens
  // at t_investigate. Forensic recall = was the "attacker" (a designated
  // vehicle known to ground truth) captured near the scene in the window?
  Table snap_table("snapshot retention vs forensic recall & exposure "
                   "(5 s snapshots, investigation at t=180)",
                   {"retention_snapshots", "window_s", "attacker_found",
                    "location_records_held"});
  for (const std::size_t retention : {6UL, 12UL, 24UL, 48UL}) {
    core::ScenarioConfig cfg;
    cfg.vehicles = 60;
    cfg.seed = 31;
    core::Scenario scenario(cfg);
    scenario.start();
    core::TopologyArchive archive(scenario.network(), {5.0, retention});
    archive.attach();

    // Ground truth: at t=60 note which vehicle is nearest the center (the
    // "attacker at the incident").
    const auto [lo, hi] = scenario.road().bounding_box();
    const geo::Vec2 scene{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
    VehicleId attacker;
    scenario.simulator().schedule_at(60.0, [&] {
      double best = 1e300;
      for (const auto& [vid, v] : scenario.traffic().vehicles()) {
        const double d = geo::distance(v.pos, scene);
        if (d < best) {
          best = d;
          attacker = v.id;
        }
      }
    });
    scenario.run_for(180.0);

    // Investigation: query the archive around the scene, t in [55, 65].
    const auto hits = archive.query(scene, 400.0, 55.0, 65.0);
    bool found = false;
    for (const auto& e : hits) {
      if (e.vehicle == attacker) found = true;
    }
    snap_table.add_row({std::to_string(retention),
                        Table::num(static_cast<double>(retention) * 5.0, 0),
                        found ? "yes" : "NO",
                        std::to_string(archive.records_held())});
  }
  emit_table(snap_table);

  // ---- Part 2: flow analysis & padding --------------------------------------
  // Cluster heads coordinate (bigger, more frequent transmissions). The
  // adversary ranks talkers; padding adds uniform dummy traffic at the
  // given fraction of the coordinator volume.
  Table flow_table("flow-analysis role identification vs padding",
                   {"padding_level", "coordinator_recall",
                    "dummy_bytes_per_member"});
  core::ScenarioConfig cfg;
  cfg.vehicles = 60;
  cfg.seed = 32;
  core::Scenario scenario(cfg);
  scenario.start();
  cluster::MovingZone zones(scenario.network());
  zones.attach(1.0);
  scenario.run_for(10.0);
  zones.update();

  // Coordinators = heads that actually coordinate someone (>= 2 members);
  // singleton "heads" have nobody to talk to and traffic like members.
  std::set<std::uint64_t> coordinating;
  for (const auto& [head, members] : zones.clusters()) {
    if (members.size() >= 2) coordinating.insert(head.value());
  }
  for (const double padding : {0.0, 0.25, 0.5, 1.0}) {
    attack::FlowAnalyzer analyzer;
    std::vector<VehicleId> heads;
    Rng rng(7);
    // 60 s of observed traffic: heads send ~2 KB/s of coordination, members
    // ~0.2 KB/s of reports, everyone pads with dummy bytes.
    for (int second = 0; second < 60; ++second) {
      for (const auto& [vid, v] : scenario.traffic().vehicles()) {
        const bool is_head = coordinating.count(vid) != 0;
        const double base = is_head ? 2048.0 : 204.8;
        const double padded =
            base + padding * (2048.0 - base);
        analyzer.observe(v.id,
                         static_cast<std::size_t>(
                             padded * rng.uniform(0.8, 1.2)));
      }
    }
    for (const auto& [head, members] : zones.clusters()) {
      if (members.size() >= 2) heads.push_back(head);
    }
    const double recall = analyzer.role_identification_recall(heads);
    const double dummy_kb = padding * (2048.0 - 204.8) * 60.0 / 1024.0;
    flow_table.add_row({Table::num(padding, 2), Table::num(recall, 2),
                        Table::num(dummy_kb, 0) + " KB/min"});
  }
  emit_table(flow_table);

  std::cout
      << "Shape vs §V.A: forensics needs the snapshot window to still cover\n"
         "the incident when the investigation opens — and every extra\n"
         "snapshot retained is another tranche of location records at\n"
         "risk. Flow analysis unmasks coordinators from volume alone;\n"
         "full padding hides them at ~100 KB/min of dummy traffic per\n"
         "member — §III's traffic-analysis threat and its classic, costly\n"
         "defense.\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
