// E18 — Intersection management: virtual traffic lights vs fixed-cycle
// signals vs uncontrolled.
//
// The paper's §III.A example of dynamic role assignment — "a vehicle may
// serve at a certain time as one of a group-decision-makers when crossing
// an intersection" — is exactly the VTL leader role. Same city, same
// demand; reported: fleet mean speed, stopped-time fraction (delay proxy),
// and VTL leader turnover, across demand levels. The disaster column is
// the punchline: fixed signals are infrastructure, VTL is not.
#include <iostream>

#include "core/scenario.h"
#include "core/vtl.h"
#include "mobility/intersection.h"
#include "obs/bench_output.h"
#include "util/table.h"

using namespace vcl;

namespace {

// Prints the table and, when --json was given, collects it for the
// vcl-bench-v1 document written at exit (see obs/bench_output.h).
obs::BenchReporter* g_report = nullptr;

void emit_table(const Table& t) {
  t.print(std::cout);
  if (g_report != nullptr) g_report->add(t);
}

}  // namespace

namespace {

struct RunResult {
  double mean_speed = 0;
  double stopped_fraction = 0;
  std::size_t leader_changes = 0;
};

RunResult run(const std::string& controller, int vehicles,
              std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = seed;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  core::Scenario scenario(cfg);
  scenario.start();

  std::unique_ptr<mobility::FixedCycleController> fixed;
  std::unique_ptr<core::VtlController> vtl;
  if (controller == "fixed") {
    fixed = std::make_unique<mobility::FixedCycleController>(
        scenario.road(), scenario.simulator(), 15.0);
    scenario.traffic().set_right_of_way(
        [&f = *fixed](LinkId l, VehicleId v) { return f.can_enter(l, v); });
  } else if (controller == "vtl") {
    vtl = std::make_unique<core::VtlController>(scenario.network());
    vtl->attach();
    scenario.traffic().set_right_of_way(
        [&v = *vtl](LinkId l, VehicleId id) { return v.can_enter(l, id); });
  }
  // "none": uncontrolled (the collision risk is not modeled; this is the
  // efficiency upper bound, not a safe configuration).

  core::StopMeter meter(scenario.traffic());
  meter.attach(scenario.simulator());
  scenario.run_for(240.0);

  RunResult r;
  r.mean_speed = meter.mean_speed();
  r.stopped_fraction = meter.stopped_fraction();
  r.leader_changes = vtl ? vtl->leader_changes() : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("bench_intersections", argc, argv);
  g_report = &reporter;

  std::cout << "E18: intersection management — VTL (V2V) vs fixed signals\n"
            << "4x4 city grid, 240 s\n\n";

  Table table("intersection control comparison",
              {"controller", "vehicles", "mean_speed_mps", "stopped_frac",
               "vtl_leader_changes"});
  for (const int vehicles : {40, 80, 140}) {
    for (const std::string controller : {"none", "fixed", "vtl"}) {
      const RunResult r = run(controller, vehicles, 77);
      table.add_row({controller, std::to_string(vehicles),
                     Table::num(r.mean_speed, 2),
                     Table::num(r.stopped_fraction, 3),
                     controller == "vtl" ? std::to_string(r.leader_changes)
                                         : "-"});
    }
  }
  emit_table(table);

  std::cout
      << "Shape vs the VTL literature the paper builds on: demand-driven\n"
         "V2V control wastes less green time than a blind fixed cycle, so\n"
         "VTL sits between 'uncontrolled' (unsafe upper bound) and fixed\n"
         "signals on every demand level — with zero infrastructure, which\n"
         "is the paper's recurring argument. Leader turnover is the price:\n"
         "every crossing leader hands the decision role to a successor\n"
         "(§III.A's dynamic role assignment, measured).\n";
  if (!reporter.write()) {
    std::cerr << "error: could not write " << reporter.path() << "\n";
    return 1;
  }
  return 0;
}
